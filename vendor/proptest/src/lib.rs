//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use, with the same
//! paths and macro grammar: `proptest!` (fn form with optional
//! `#![proptest_config(..)]`, and closure form), `prop_assert!`/
//! `prop_assert_eq!`, `prop_oneof!`, `Just`, `any::<bool>()`,
//! `Strategy::{prop_map,new_tree}`, `strategy::ValueTree`,
//! `test_runner::TestRunner::deterministic`, `collection::vec`,
//! `option::of`, `bool::ANY`, integer/float range strategies, and a
//! mini-regex generator for `&str` patterns (`\PC`, char classes, `*`,
//! `{m,n}`).
//!
//! Differences from real proptest: inputs are drawn from a fixed-seed
//! deterministic RNG (still varied per case), there is no shrinking, and
//! failure reports print the case number instead of a minimised input.
//! Regression files (`*.proptest-regressions`) are ignored.

/// Deterministic xorshift64* RNG; fixed seed so test runs are reproducible.
pub struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Self {
        Rng {
            state: seed | 1, // xorshift state must be non-zero
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n` (n > 0). Modulo bias is irrelevant at test scale.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod test_runner {
    use super::Rng;
    use std::fmt;

    /// Drives input generation. Only the deterministic constructor is
    /// provided; every `proptest!` expansion uses it.
    pub struct TestRunner {
        rng: Rng,
    }

    impl TestRunner {
        pub fn deterministic() -> Self {
            TestRunner {
                rng: Rng::new(0x9E37_79B9_7F4A_7C15),
            }
        }

        pub fn rng_mut(&mut self) -> &mut Rng {
            &mut self.rng
        }
    }

    /// A failed test case (no shrinking: carries the message only).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRunner;
    use super::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value`. Object-safe through `generate`;
    /// the combinators require `Sized`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut Rng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }

        /// Real proptest returns a shrinkable tree; here the "tree" is just
        /// the generated value.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<JustValueTree<Self::Value>, String>
        where
            Self: Sized,
        {
            Ok(JustValueTree {
                value: self.generate(runner.rng_mut()),
            })
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            (**self).generate(rng)
        }
    }

    /// The current value of a generated (non-shrinking) case.
    pub trait ValueTree {
        type Value;
        fn current(&self) -> Self::Value;
    }

    /// Degenerate value tree: holds exactly the generated value.
    pub struct JustValueTree<T> {
        value: T,
    }

    impl<T: Clone> ValueTree for JustValueTree<T> {
        type Value = T;
        fn current(&self) -> T {
            self.value.clone()
        }
    }

    /// `Just(v)`: always yields a clone of `v`.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            let k = rng.below(self.arms.len() as u64) as usize;
            self.arms[k].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }
    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut Rng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($S:ident . $idx:tt),+);)*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    }

    /// Mini-regex string strategy for `&'static str` patterns. Supports the
    /// forms the workspace uses: `\PC` (any printable char), literal chars,
    /// escaped chars, `[...]` classes with ranges and escapes, and the
    /// quantifiers `*`, `+`, `?`, `{n}`, `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut Rng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (atom, lo, hi) in &atoms {
                let n = *lo + rng.below((*hi - *lo + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(atom.sample(rng));
                }
            }
            out
        }
    }

    enum Atom {
        /// `\PC`: any printable (non-control) char; mostly ASCII with a few
        /// multi-byte chars to exercise UTF-8 paths.
        Printable,
        Lit(char),
        Class(Vec<(char, char)>),
    }

    impl Atom {
        fn sample(&self, rng: &mut Rng) -> char {
            const EXOTIC: [char; 6] = ['é', 'λ', '中', '¬', '€', 'Ω'];
            match self {
                Atom::Printable => {
                    if rng.below(16) == 0 {
                        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                    } else {
                        (b' ' + rng.below(95) as u8) as char
                    }
                }
                Atom::Lit(c) => *c,
                Atom::Class(ranges) => {
                    let total: u64 = ranges.iter().map(|(a, b)| *b as u64 - *a as u64 + 1).sum();
                    let mut k = rng.below(total);
                    for (a, b) in ranges {
                        let len = *b as u64 - *a as u64 + 1;
                        if k < len {
                            return char::from_u32(*a as u32 + k as u32).unwrap();
                        }
                        k -= len;
                    }
                    unreachable!()
                }
            }
        }
    }

    /// Parse into (atom, min_reps, max_reps) triples.
    fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => {
                    i += 1;
                    match chars.get(i) {
                        Some('P') => {
                            // `\PC`: consume the category letter too.
                            i += 1;
                            Atom::Printable
                        }
                        Some('n') => Atom::Lit('\n'),
                        Some('t') => Atom::Lit('\t'),
                        Some('r') => Atom::Lit('\r'),
                        Some(&c) => Atom::Lit(c),
                        None => break,
                    }
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' {
                            i += 1;
                            match chars[i] {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                c => c,
                            }
                        } else {
                            chars[i]
                        };
                        // `a-z` range (a lone trailing `-` is a literal).
                        if chars.get(i + 1) == Some(&'-')
                            && chars.get(i + 2).is_some_and(|&e| e != ']')
                        {
                            let hi = chars[i + 2];
                            ranges.push((c, hi));
                            i += 3;
                        } else {
                            ranges.push((c, c));
                            i += 1;
                        }
                    }
                    Atom::Class(ranges)
                }
                c => Atom::Lit(c),
            };
            i += 1;
            // Quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0, 32)
                }
                Some('+') => {
                    i += 1;
                    (1, 32)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('{') => {
                    let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                        None => {
                            let n: usize = body.trim().parse().unwrap();
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            out.push((atom, lo, hi));
        }
        out
    }

    /// `any::<T>()` support; only the types the workspace asks for.
    pub trait Arbitrary {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    #[derive(Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut Rng) -> bool {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1);
            let n = self.size.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub(crate) fn vec_strategy<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Option<S::Value> {
            // Bias toward Some, as real proptest does (3:1).
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    pub(crate) fn option_strategy<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod collection {
    use super::strategy::{vec_strategy, Strategy, VecStrategy};
    use std::ops::Range;

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        vec_strategy(element, size)
    }
}

pub mod option {
    use super::strategy::{option_strategy, OptionStrategy, Strategy};

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        option_strategy(inner)
    }
}

pub mod bool {
    use super::strategy::AnyBool;

    pub const ANY: AnyBool = AnyBool;
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// `any::<T>()` — only types with an [`crate::strategy::Arbitrary`]
    /// impl (currently `bool`).
    pub fn any<T: crate::strategy::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Fn form (with optional `#![proptest_config(..)]`) and closure form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    (|($($pat:pat in $strat:expr),+ $(,)?)| $body:block) => {{
        let config = <$crate::test_runner::Config as ::core::default::Default>::default();
        let mut runner = $crate::test_runner::TestRunner::deterministic();
        for case in 0..config.cases {
            $(let $pat = $crate::strategy::Strategy::generate(&($strat), runner.rng_mut());)+
            let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (move || {
                    { $body };
                    ::core::result::Result::Ok(())
                })();
            if let ::core::result::Result::Err(e) = result {
                panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
            }
        }
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::deterministic();
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), runner.rng_mut());)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body };
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest '{}' case {}/{} failed: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in -50i64..50, b in 1usize..9, x in 0.0f64..1.0) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!((1..9).contains(&b));
            prop_assert!((0.0..1.0).contains(&x), "x = {x}");
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0u32..10, 0..5),
                               o in crate::option::of(1i64..4),
                               f in crate::bool::ANY) {
            prop_assert!(v.len() < 5);
            if let Some(x) = o { prop_assert!((1..4).contains(&x)); }
            prop_assert!(f || !f);
        }
    }

    #[test]
    fn closure_form_and_regex() {
        proptest!(|(s in "[a-c]{2,4}")| {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        });
        proptest!(|(s in "\\PC*")| {
            prop_assert!(s.chars().all(|c| !c.is_control()));
        });
    }

    #[test]
    fn oneof_map_and_value_tree() {
        use crate::strategy::ValueTree;
        let strat = prop_oneof![
            Just("x".to_string()),
            (1u32..5).prop_map(|n| format!("n{n}")),
        ];
        let mut runner = TestRunner::deterministic();
        for _ in 0..8 {
            let v = Strategy::new_tree(&strat, &mut runner).unwrap().current();
            assert!(v == "x" || v.starts_with('n'));
        }
    }
}
