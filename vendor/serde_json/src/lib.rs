//! Offline stand-in for `serde_json`: renders the [`serde::Json`] tree built
//! by the serde stub. Output matches real serde_json for the shapes the
//! workspace serialises: compact `{"k":v}` with no spaces, pretty with
//! 2-space indent, floats via shortest-roundtrip `{:?}` (keeps the `.0`),
//! non-finite floats as `null`.

use serde::{Json, Serialize};
use std::fmt;

/// Serialisation error. The stub's tree rendering is total, so this is never
/// actually produced; it exists so call sites can keep `Result` plumbing.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json(), 0, &mut out);
    Ok(out)
}

fn write_compact(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::I64(n) => out.push_str(&n.to_string()),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::F64(x) => write_f64(*x, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (k, (key, val)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Json, depth: usize, out: &mut String) {
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push('\n');
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push(']');
        }
        Json::Obj(fields) if !fields.is_empty() => {
            out.push('{');
            for (k, (key, val)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push('\n');
                indent(depth + 1, out);
                write_escaped(key, out);
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` is shortest-roundtrip and keeps a trailing `.0`, matching
        // serde_json's ryu output for the values this workspace emits.
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_matches_serde_json_shape() {
        let v = Json::Obj(vec![
            ("threads".into(), Json::U64(2)),
            ("seconds".into(), Json::F64(1.5)),
            ("label".into(), Json::Str("EP/Zig".into())),
            ("pts".into(), Json::Arr(vec![Json::I64(-1), Json::Null])),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"threads":2,"seconds":1.5,"label":"EP/Zig","pts":[-1,null]}"#
        );
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = Json::Obj(vec![("a".into(), Json::Arr(vec![Json::U64(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }
}
