//! Offline stand-in for `serde`'s serialisation half.
//!
//! Instead of serde's visitor-based `Serializer` machinery, `Serialize` here
//! converts a value into an owned [`Json`] tree which the companion
//! `serde_json` stub renders. This is enough for the workspace's usage:
//! `#[derive(Serialize)]` on named-field structs and unit enums, serialised
//! with `serde_json::to_string{,_pretty}`. Output is byte-compatible with
//! real serde_json for those shapes (compact `{"k":v}` / pretty 2-space).

pub use serde_derive::Serialize;

/// Owned JSON tree produced by [`Serialize::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite integers stored separately from floats so integer fields render
    /// without a decimal point, as serde_json does.
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (serde_json preserves struct field order).
    Obj(Vec<(String, Json)>),
}

/// Convert a value into a [`Json`] tree.
pub trait Serialize {
    fn to_json(&self) -> Json;
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::I64(*self as i64) }
        }
    )*};
}
macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}
impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::F64(*self as f64)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3usize.to_json(), Json::U64(3));
        assert_eq!((-3i64).to_json(), Json::I64(-3));
        assert_eq!("x".to_json(), Json::Str("x".into()));
        assert_eq!(None::<u8>.to_json(), Json::Null);
        assert_eq!(
            vec![1u8, 2].to_json(),
            Json::Arr(vec![Json::U64(1), Json::U64(2)])
        );
    }
}
