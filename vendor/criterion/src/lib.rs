//! Offline stand-in for `criterion`. Provides the API subset the workspace's
//! bench targets use — `Criterion`, `benchmark_group` with chained
//! `sample_size`/`measurement_time`, `bench_function`/`bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros — backed by a plain wall-clock sampling loop
//! that prints median/mean per benchmark instead of criterion's full
//! statistical report.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, created by `criterion_main!`.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            // Far below real criterion's 5 s: keeps a full `cargo bench`
            // tractable on the small CI hosts this repo targets.
            default_measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            measurement: Duration::from_millis(300),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_bench(self.default_sample_size, self.default_measurement, &mut f);
        report(&id.into().label, &stats);
    }
}

/// A named group of related benchmarks; settings chain like criterion's.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        // Cap so a full suite of 2–5 s groups stays minutes, not hours,
        // on the 1–2 core hosts this repo is built on.
        self.measurement = d.min(Duration::from_millis(500));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_bench(self.sample_size, self.measurement, &mut f);
        report(&format!("{}/{}", self.name, id.into().label), &stats);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Benchmark identifier: `new("parallel", 4)` -> `parallel/4`,
/// `from_parameter(4)` -> `4`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    sample_size: usize,
    measurement: Duration,
    /// ns-per-iteration samples recorded by `iter`.
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + single-iteration estimate to size the batches.
        black_box(f());
        let t0 = Instant::now();
        black_box(f());
        let est = t0.elapsed().as_secs_f64().max(1e-9);

        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / est).floor() as u64).clamp(1, 10_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

struct Stats {
    median_ns: f64,
    mean_ns: f64,
    n: usize,
}

fn run_bench<F: FnMut(&mut Bencher)>(
    sample_size: usize,
    measurement: Duration,
    f: &mut F,
) -> Stats {
    let mut b = Bencher {
        sample_size,
        measurement,
        samples: Vec::new(),
    };
    f(&mut b);
    let mut s = b.samples;
    if s.is_empty() {
        return Stats {
            median_ns: f64::NAN,
            mean_ns: f64::NAN,
            n: 0,
        };
    }
    s.sort_by(|a, b| a.total_cmp(b));
    Stats {
        median_ns: s[s.len() / 2],
        mean_ns: s.iter().sum::<f64>() / s.len() as f64,
        n: s.len(),
    }
}

fn report(label: &str, stats: &Stats) {
    println!(
        "{label:<40} median {:>12.1} ns   mean {:>12.1} ns   ({} samples)",
        stats.median_ns, stats.mean_ns, stats.n
    );
}

/// `criterion_group!(benches, f1, f2, ...)` — simple form only.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(benches, ...)` — emits `main`, ignoring harness CLI args.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .bench_function("id", |b| b.iter(|| black_box(1 + 1)))
            .bench_with_input(BenchmarkId::new("with", 2), &2, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
        g.finish();
    }
}
