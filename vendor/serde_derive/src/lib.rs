//! Offline stand-in for `serde_derive`. Parses the item token stream by hand
//! (no `syn`/`quote` available offline) and emits a `serde::Serialize` impl.
//!
//! Supported item shapes — exactly what the workspace derives on:
//! * structs with named fields  -> `Json::Obj` in declaration order
//! * enums with unit variants   -> `Json::Str(variant_name)`
//!
//! Anything else (tuple structs, data-carrying variants, generics) produces
//! a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(code) => code
            .parse()
            .expect("serde_derive stub emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "derive(Serialize) stub: expected struct/enum, got {other:?}"
            ))
        }
    };
    i += 1;

    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "derive(Serialize) stub: expected item name, got {other:?}"
            ))
        }
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive(Serialize) stub: generic item `{name}` is not supported"
        ));
    }

    let body = tokens
        .get(i)
        .and_then(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or_else(|| {
            format!("derive(Serialize) stub: `{name}` must have a brace-delimited body")
        })?;

    if kind == "struct" {
        let fields = parse_named_fields(body)?;
        let pushes: Vec<String> = fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_json(&self.{f}))"
                )
            })
            .collect();
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Json {{\n\
             ::serde::Json::Obj(::std::vec![{}])\n}}\n}}",
            pushes.join(", ")
        ))
    } else {
        let variants = parse_unit_variants(body, &name)?;
        let arms: Vec<String> = variants
            .iter()
            .map(|v| {
                format!("{name}::{v} => ::serde::Json::Str(::std::string::String::from({v:?}))")
            })
            .collect();
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Json {{\n\
             match self {{ {} }}\n}}\n}}",
            arms.join(", ")
        ))
    }
}

/// Advance past `#[...]` attributes, doc comments, and `pub`/`pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // '[...]'
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // '(crate)' etc.
                }
            }
            _ => return,
        }
    }
}

/// `a: T, b: U<V, W>, ...` -> ["a", "b", ...]
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("derive(Serialize) stub: expected field name, got {other:?} (tuple structs unsupported)")),
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "derive(Serialize) stub: expected `:` after field `{name}`, got {other:?}"
                ))
            }
        }
        // Skip the type: commas nested in angle brackets belong to the type.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// `A, B, C` (unit variants only) -> ["A", "B", "C"]
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "derive(Serialize) stub: expected variant in `{enum_name}`, got {other:?}"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "derive(Serialize) stub: variant `{enum_name}::{name}` carries data; only unit variants are supported"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next top-level comma.
                i += 1;
                while i < tokens.len() {
                    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            }
            other => return Err(format!("derive(Serialize) stub: unexpected token after `{enum_name}::{name}`: {other:?}")),
        }
        variants.push(name);
    }
    Ok(variants)
}
