//! Offline stand-in for the `crossbeam` crate: just `crossbeam::scope`,
//! implemented on `std::thread::scope` (stable since 1.63).
//!
//! Matches the crossbeam calling convention the workspace uses: the scope
//! closure and every spawned closure receive the scope handle, and `spawn`
//! returns a handle whose `join()` yields `std::thread::Result<T>`.

/// Scope handle passed to the closure given to [`scope`] and to each spawned
/// thread's closure (crossbeam passes the scope so children can spawn too).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(handle)),
        }
    }
}

/// Join handle for a scoped thread; `join()` returns the thread's result or
/// its panic payload, as in crossbeam.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// Run `f` with a scope that joins all spawned threads before returning.
/// Always returns `Ok`: panics from joined-and-unwrapped children propagate
/// as panics (the same observable behaviour as crossbeam in the success and
/// explicit-join paths this workspace exercises).
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let sum = super::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<i32>());
            let h2 = s.spawn(|inner| inner.spawn(|_| 10).join().unwrap());
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 16);
    }
}
