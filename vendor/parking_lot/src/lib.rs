//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no network access, so the workspace vendors the
//! small API subset it actually uses: `Mutex`/`MutexGuard` (non-poisoning,
//! guard returned directly from `lock()`), `Condvar` with the
//! `wait(&mut MutexGuard)` signature, and a `RawMutex` implementing the
//! `lock_api::RawMutex` trait with a `const INIT`.
//!
//! Semantics match parking_lot where the workspace depends on them:
//! no poisoning (a panic while holding a lock simply releases it), and
//! `into_inner()` returns the value directly rather than a `Result`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// The `lock_api` facade: just the `RawMutex` trait surface the workspace
/// imports (`parking_lot::lock_api::RawMutex as _`).
pub mod lock_api {
    /// A raw (guardless) mutex: `const INIT`, `lock`, `try_lock`, `unlock`.
    pub trait RawMutex {
        /// An unlocked mutex, usable in `const` position.
        const INIT: Self;
        fn lock(&self);
        fn try_lock(&self) -> bool;
        /// # Safety
        /// Must only be called by the owner of the lock.
        unsafe fn unlock(&self);
    }
}

/// Spin-then-yield raw mutex. Adequate for the coarse-grained OMP lock API
/// built on top of it; fairness is best-effort like parking_lot's.
pub struct RawMutex {
    locked: AtomicBool,
}

impl lock_api::RawMutex for RawMutex {
    const INIT: RawMutex = RawMutex {
        locked: AtomicBool::new(false),
    };

    fn lock(&self) {
        let mut spins = 0u32;
        // Acquire on success pairs with the Release in unlock so the
        // protected data is visible to the new owner.
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    unsafe fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

/// Non-poisoning mutex: `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so `Condvar::wait`
/// can temporarily take it, block on the std condvar, and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Condition variable with parking_lot's `wait(&mut MutexGuard)` signature.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        guard.inner = Some(match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::RawMutex as _;
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guard_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn raw_mutex_excludes() {
        let raw = RawMutex::INIT;
        raw.lock();
        assert!(!raw.try_lock());
        unsafe { raw.unlock() };
        assert!(raw.try_lock());
        unsafe { raw.unlock() };
    }
}
