//! The paper's pipeline, end to end and visible: a pragma-annotated Zag
//! program is tokenised, parsed, preprocessed pass by pass (parallel
//! regions → worksharing loops → simple directives, Listing 5), and then
//! executed on real threads.
//!
//! Run with: `cargo run --release -p zomp-examples --bin pragma_pipeline`

use zomp_front::preprocess::preprocess_trace;
use zomp_vm::Vm;

const PROGRAM: &str = r#"
fn main() void {
    var n: i64 = 4096;
    var x: []f64 = @allocF(4096);
    var norm: f64 = 0.0;

    var init: i64 = 0;
    while (init < n) : (init += 1) {
        x[init] = @intToFloat(init) * 0.001;
    }

    //$omp parallel num_threads(4) shared(x, norm) firstprivate(n)
    {
        var i: i64 = 0;
        //$omp while schedule(static) reduction(+: norm)
        while (i < n) : (i += 1) {
            norm = norm + x[i] * x[i];
        }

        //$omp single
        {
            print("norm^2 =", norm, "computed by thread", omp.get_thread_num());
        }
    }

    print("done:", @sqrt(norm));
}
"#;

fn main() {
    println!("=== original source (with OpenMP pragmas) ===\n{PROGRAM}");

    let (final_src, trace) = preprocess_trace(PROGRAM).expect("preprocessing failed");
    for (i, pass) in trace.iter().enumerate() {
        println!("=== after preprocessor pass {} ===\n{pass}\n", i + 1);
    }
    let _ = final_src;

    println!("=== executing on the zomp runtime ===");
    let vm = Vm::new(PROGRAM).expect("compile");
    let vm = zomp_vm::Vm { echo: true, ..vm };
    vm.call_function("main", Vec::new()).expect("run");
}
