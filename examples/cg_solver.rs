//! The paper's headline workload: NPB Conjugate Gradient, run for real on
//! this host (class S/W, serial vs zomp-parallel, with official NPB
//! verification) and then projected onto the ARCHER2 model at class C —
//! regenerating the Table I / Figure 3 story.
//!
//! Run with: `cargo run --release -p zomp-examples --bin cg_solver [class]`

use archer_sim::lang::{profile, Kernel, Lang};
use archer_sim::{Machine, ScalingCurve};
use npb::cg::{self, Mode};
use npb::class::CgParams;
use npb::model::{cg_model, estimate_nnz};
use npb::Class;

fn main() {
    let class = std::env::args()
        .nth(1)
        .and_then(|s| Class::parse(&s))
        .unwrap_or(Class::S);
    let params = CgParams::for_class(class);
    println!(
        "NPB CG class {class}: na = {}, nonzer = {}, niter = {}, shift = {}",
        params.na, params.nonzer, params.niter, params.shift
    );

    println!("generating matrix (makea)...");
    let t0 = std::time::Instant::now();
    let mat = cg::makea::makea(&params);
    println!("  {} nonzeros in {:.2?}", mat.nnz(), t0.elapsed());

    let t0 = std::time::Instant::now();
    let serial = cg::run_with_matrix(&params, &mat, Mode::Serial);
    let t_serial = t0.elapsed();
    println!(
        "serial:      zeta = {:.13}, rnorm = {:.3e}, {:?} — {}",
        serial.zeta,
        serial.rnorm,
        t_serial,
        serial.verify(&params)
    );

    for threads in [2, 4] {
        let t0 = std::time::Instant::now();
        let par = cg::run_with_matrix(&params, &mat, Mode::Parallel(threads));
        println!(
            "{threads} threads:   zeta = {:.13}, rnorm = {:.3e}, {:?} — {}",
            par.zeta,
            par.rnorm,
            t0.elapsed(),
            par.verify(&params)
        );
    }

    println!("\nprojected class C strong scaling on one ARCHER2 node (Fig. 3 / Table I):");
    let c = CgParams::for_class(Class::C);
    let model = cg_model(&c, estimate_nnz(&c));
    let machine = Machine::archer2();
    for lang in [Lang::Zig, Lang::Fortran] {
        let curve = ScalingCurve::run(
            format!("CG/{}", lang.name()),
            &model,
            &machine,
            &profile(lang, Kernel::Cg),
            &archer_sim::report::PAPER_THREADS,
        );
        println!("  {}:", curve.label);
        for p in &curve.points {
            println!(
                "    {:>3} threads: {:>8.2} s  (speedup {:>6.1}x)",
                p.threads, p.seconds, p.speedup
            );
        }
    }
}
