//! Quickstart: the zomp runtime from native Rust.
//!
//! Shows the OpenMP building blocks the paper's compiler lowers to —
//! parallel regions, worksharing loops with different schedules,
//! reductions (including the CAS-loop multiply), `single`, `critical`,
//! barriers, and the `omp_*` query API.
//!
//! Run with: `cargo run --release -p zomp-examples --bin quickstart`

use zomp::prelude::*;
use zomp::sync::critical;
use zomp::workshare::{for_loop, for_reduce};

fn main() {
    let threads = 4;
    println!(
        "zomp quickstart on {threads} threads (host has {} procs)",
        omp::get_num_procs()
    );

    // 1. A combined parallel-for: square every element.
    let n = 1 << 16;
    let mut data: Vec<f64> = (0..n).map(|i| i as f64).collect();
    {
        let shared = SharedSlice::new(&mut data);
        parallel_for(
            Parallel::new().num_threads(threads),
            Schedule::static_default(),
            0..n as i64,
            |i| shared.put(i, shared.at(i) * shared.at(i)),
        );
    }
    println!("data[255]^2 = {}", data[255]);

    // 2. A reduction: dot product under a guided schedule.
    let dot = parallel_reduce(
        Parallel::new().num_threads(threads),
        Schedule::guided(None),
        0..n as i64,
        0.0f64,
        RedOp::Add,
        |i, acc| *acc += data[i as usize],
    );
    println!("sum of squares = {dot:e}");

    // 3. A full region with several constructs, the way the NPB kernels
    //    are structured.
    let mut histogram = vec![0u32; 16];
    let total = RedCell::<i64>::new(RedOp::Add, 0);
    let product = RedCell::<f64>::new(RedOp::Mul, 1.0); // CAS-loop reduction
    {
        let hist = SharedSlice::new(&mut histogram);
        fork_call(Parallel::new().num_threads(threads), |ctx| {
            // Thread-private accumulation into a shared histogram under
            // `critical`.
            let mut local = [0u32; 16];
            for_loop(ctx, Schedule::dynamic(Some(64)), 0..4096, true, |i| {
                local[(i % 16) as usize] += 1;
            });
            critical(|| {
                for (b, &v) in local.iter().enumerate() {
                    hist.set(b, hist.get(b) + v);
                }
            });

            // A loop reduction with its implicit barrier.
            for_reduce(
                ctx,
                Schedule::static_chunked(16),
                0..1000,
                false,
                &total,
                |i, acc| *acc += i,
            );

            // One multiply per thread — exercised through the CAS loop the
            // paper implements for missing atomic ops (Listing 6).
            product.combine(2.0);

            ctx.single(false, || {
                println!(
                    "  single: thread {} of {} reports total = {}",
                    ctx.thread_num(),
                    ctx.num_threads(),
                    total.get()
                );
            });
        });
    }
    println!("histogram[0..4] = {:?}", &histogram[..4]);
    println!("sum 0..1000 = {} (expect 499500)", total.get());
    println!("2^threads via CAS-loop mul = {}", product.get());

    // 4. The omp_* API surface (paper Listing 7).
    println!(
        "outside any region: thread {} of {}, level {}, wtime {:.3}s",
        omp::get_thread_num(),
        omp::get_num_threads(),
        omp::get_level(),
        omp::get_wtime()
    );
}
