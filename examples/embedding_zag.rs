//! Embedding Zag in a larger host application — the analogue of the
//! paper's §IV Zig↔Fortran integration, "potentially enabling Zig to be
//! leveraged as part of a much larger traditional code base".
//!
//! A Rust host prepares data, hands it to a pragma-parallel Zag kernel
//! (crossing the language boundary both ways: shared arrays in, scalars
//! out), and validates the result against a native computation.
//!
//! Run with: `cargo run --release -p zomp-examples --bin embedding_zag`

use std::sync::Arc;

use zomp_vm::value::{ArrF, Value};
use zomp_vm::Vm;

/// The Zag side: a SAXPY-with-norm kernel, parallelised with pragmas. Note
/// it is a plain function — the host calls it directly, like calling a
/// Fortran subroutine from Zig with C linkage.
const KERNEL: &str = r#"
fn saxpy_norm(a: f64, x: []f64, y: []f64, n: i64) f64 {
    var norm: f64 = 0.0;
    //$omp parallel num_threads(4) shared(x, y, norm) firstprivate(a, n)
    {
        var i: i64 = 0;
        //$omp while schedule(static) reduction(+: norm)
        while (i < n) : (i += 1) {
            y[i] = a * x[i] + y[i];
            norm = norm + y[i] * y[i];
        }
    }
    return @sqrt(norm);
}
"#;

fn main() {
    let n = 10_000usize;

    // Host-side data. Arrays cross the boundary by reference (the VM's
    // arrays are shared), scalars by value — the same three argument
    // groups the paper passes to outlined functions.
    let x = Arc::new(ArrF::new(n));
    let y = Arc::new(ArrF::new(n));
    for i in 0..n {
        x.set(i as i64, (i as f64 * 0.37).sin()).unwrap();
        y.set(i as i64, 1.0).unwrap();
    }

    let vm = Vm::new(KERNEL).expect("compile Zag kernel");
    let result = vm
        .call_function(
            "saxpy_norm",
            vec![
                Value::Float(2.0),
                Value::ArrF(Arc::clone(&x)),
                Value::ArrF(Arc::clone(&y)),
                Value::Int(n as i64),
            ],
        )
        .expect("run Zag kernel");

    let Value::Float(norm) = result else {
        panic!("kernel returned {result:?}")
    };
    println!("Zag kernel returned ||y|| = {norm:.6}");

    // Validate against a native Rust computation of the same thing.
    let mut expect_norm = 0.0f64;
    for i in 0..n {
        let xi = (i as f64 * 0.37).sin();
        let yi = 2.0 * xi + 1.0;
        expect_norm += yi * yi;
    }
    let expect_norm = expect_norm.sqrt();
    println!("native Rust says  ||y|| = {expect_norm:.6}");
    let rel = ((norm - expect_norm) / expect_norm).abs();
    assert!(rel < 1e-12, "mismatch: {rel}");

    // And the mutation is visible host-side: y was updated in place.
    let y0 = y.get(0).unwrap();
    println!("y[0] after kernel = {y0} (expect 1.0: x[0] = sin(0) = 0)");
    assert_eq!(y0, 1.0);
    println!("host/kernel integration verified");
}
