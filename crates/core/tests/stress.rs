//! Stress tests: the failure modes a worksharing runtime actually has —
//! oversubscription, hot-team churn, construct-ring pressure from long
//! `nowait` chains, contended dynamic dispatch, and concurrent independent
//! teams from separate host threads.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

use zomp::prelude::*;
use zomp::workshare::{for_loop, for_reduce};

/// Heavy oversubscription (far more threads than cores) must stay correct:
/// blocking barriers, not spin deadlock.
#[test]
fn oversubscribed_team_is_correct() {
    const THREADS: usize = 32;
    const N: i64 = 4_000;
    let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
    fork_call(Parallel::new().num_threads(THREADS), |ctx| {
        for_loop(ctx, Schedule::dynamic(Some(7)), 0..N, false, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        ctx.barrier();
        for_loop(ctx, Schedule::static_default(), 0..N, false, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
        });
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 2));
}

/// Hundreds of back-to-back regions re-use the hot team without leaking or
/// wedging.
#[test]
fn hot_team_survives_region_churn() {
    for round in 0..400i64 {
        let sum = AtomicI64::new(0);
        fork_call(Parallel::new().num_threads(3), |ctx| {
            sum.fetch_add(ctx.thread_num() as i64 + round, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 3 + 3 * round);
    }
}

/// A long chain of `nowait` loops lets threads drift across the construct
/// ring (more constructs in flight than ring slots); coverage must hold.
#[test]
fn nowait_chain_exceeding_ring_capacity() {
    const LOOPS: usize = 64; // ring has 16 slots
    const N: i64 = 40;
    let counters: Vec<AtomicUsize> = (0..LOOPS).map(|_| AtomicUsize::new(0)).collect();
    fork_call(Parallel::new().num_threads(4), |ctx| {
        for c in counters.iter() {
            for_loop(ctx, Schedule::dynamic(Some(3)), 0..N, true, |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        ctx.barrier();
    });
    for (k, c) in counters.iter().enumerate() {
        assert_eq!(c.load(Ordering::Relaxed), N as usize, "loop {k}");
    }
}

/// Chunk-1 dynamic dispatch under maximum contention still covers exactly.
#[test]
fn contended_chunk1_dispatch() {
    const N: i64 = 20_000;
    let total = AtomicI64::new(0);
    fork_call(Parallel::new().num_threads(8), |ctx| {
        for_loop(ctx, Schedule::dynamic(Some(1)), 0..N, false, |i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), N * (N - 1) / 2);
}

/// Several host threads each running their own teams concurrently: the
/// shared worker pool must keep the teams isolated.
#[test]
fn concurrent_independent_teams() {
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..4i64 {
            handles.push(s.spawn(move || {
                let n = 2_000 + t * 17;
                parallel_reduce(
                    Parallel::new().num_threads(3),
                    Schedule::guided(None),
                    0..n,
                    0i64,
                    RedOp::Add,
                    |i, acc| *acc += i,
                )
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            let n = 2_000 + t as i64 * 17;
            assert_eq!(h.join().unwrap(), n * (n - 1) / 2, "team {t}");
        }
    });
}

/// Nested fork_call inside an active region serialises but still runs the
/// body, even under load.
#[test]
fn nested_regions_under_load() {
    let inner_runs = AtomicUsize::new(0);
    fork_call(Parallel::new().num_threads(4), |_outer| {
        fork_call(Parallel::new().num_threads(4), |inner| {
            assert_eq!(inner.num_threads(), 1);
            inner_runs.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(inner_runs.load(Ordering::Relaxed), 4);
}

/// Alternating single/sections/loops exercises mixed construct types
/// through the same ring.
#[test]
fn mixed_construct_sequence() {
    let singles = AtomicUsize::new(0);
    let sections_run = AtomicUsize::new(0);
    let loop_sum = AtomicI64::new(0);
    let sec = || {
        sections_run.fetch_add(1, Ordering::Relaxed);
    };
    fork_call(Parallel::new().num_threads(3), |ctx| {
        for _ in 0..20 {
            ctx.single(false, || {
                singles.fetch_add(1, Ordering::Relaxed);
            });
            ctx.sections(false, &[&sec, &sec]);
            for_loop(ctx, Schedule::dynamic(None), 0..10, false, |i| {
                loop_sum.fetch_add(i, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(singles.load(Ordering::Relaxed), 20);
    assert_eq!(sections_run.load(Ordering::Relaxed), 40);
    assert_eq!(loop_sum.load(Ordering::Relaxed), 20 * 45);
}

/// Reductions from every thread of a large team combine losslessly.
#[test]
fn wide_team_reduction() {
    const THREADS: usize = 24;
    let got = parallel_reduce(
        Parallel::new().num_threads(THREADS),
        Schedule::static_chunked(5),
        0..100_000i64,
        0i64,
        RedOp::Add,
        |i, acc| *acc += i,
    );
    assert_eq!(got, 100_000i64 * 99_999 / 2);
}

/// Cross-schedule coverage matrix: every iteration must land exactly once
/// under every schedule kind, for 2-4 real threads and adversarial chunk
/// sizes — chunk 1 (maximum dispatch pressure), primes that leave ragged
/// tails, chunk = trip - 1 (one full chunk plus a single-iteration remnant),
/// and chunk > trip (one thread takes everything). Dynamic and guided run on
/// the work-stealing decks; static and static-chunked on the closed-form
/// partitioners.
#[test]
fn cross_schedule_exactly_once() {
    const TRIPS: &[i64] = &[1, 2, 97, 1000];
    for &nth in &[2usize, 3, 4] {
        for &trip in TRIPS {
            let chunks: Vec<Option<i64>> = vec![
                None,
                Some(1),
                Some(3),
                Some(13),
                Some((trip - 1).max(1)),
                Some(trip + 5),
            ];
            for &chunk in &chunks {
                let schedules = [
                    Schedule::static_default(),
                    chunk.map_or(Schedule::static_default(), Schedule::static_chunked),
                    Schedule::dynamic(chunk),
                    Schedule::guided(chunk),
                ];
                for sched in schedules {
                    let hits: Vec<AtomicUsize> = (0..trip).map(|_| AtomicUsize::new(0)).collect();
                    fork_call(Parallel::new().num_threads(nth), |ctx| {
                        for_loop(ctx, sched, 0..trip, false, |i| {
                            hits[i as usize].fetch_add(1, Ordering::Relaxed);
                        });
                    });
                    for (i, h) in hits.iter().enumerate() {
                        assert_eq!(
                            h.load(Ordering::Relaxed),
                            1,
                            "iter {i} of {trip} hit wrong count: {sched:?} x{nth}"
                        );
                    }
                }
            }
        }
    }
}

/// Skewed per-iteration cost forces the fast threads to steal from the slow
/// one's deck mid-loop; coverage and the reduction value must survive.
#[test]
fn skewed_work_forces_steals() {
    const N: i64 = 2_000;
    for sched in [Schedule::dynamic(Some(2)), Schedule::guided(Some(2))] {
        let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        let sum = AtomicI64::new(0);
        fork_call(Parallel::new().num_threads(4), |ctx| {
            for_loop(ctx, sched, 0..N, false, |i| {
                // Iterations in the first quarter (thread 0's initial deck)
                // are ~100x heavier than the rest.
                if i < N / 4 {
                    std::hint::black_box((0..400).fold(0u64, |a, b| a.wrapping_add(b)));
                }
                hits[i as usize].fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(i, Ordering::Relaxed);
            });
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "{sched:?}"
        );
        assert_eq!(sum.load(Ordering::Relaxed), N * (N - 1) / 2, "{sched:?}");
    }
}

/// for_reduce with nowait still produces the right value once the caller
/// synchronises manually.
#[test]
fn nowait_reduction_then_manual_barrier() {
    let cell = RedCell::<i64>::new(RedOp::Add, 0);
    fork_call(Parallel::new().num_threads(4), |ctx| {
        for_reduce(
            ctx,
            Schedule::static_default(),
            0..1000,
            true,
            &cell,
            |i, acc| {
                *acc += i;
            },
        );
        ctx.barrier();
        assert_eq!(cell.get(), 499_500);
    });
}
