//! End-to-end tests of the observability layer over the public API:
//! callback nesting, counter reconciliation across every schedule, ring
//! overflow behaviour, Chrome-trace export validity, and the
//! disabled-path overhead guard.
//!
//! Tracing mode is process-global, so every test serialises on one mutex
//! and restores the disabled state before releasing it.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use zomp::schedule::Schedule;
use zomp::team::{fork_call, Parallel};
use zomp::trace;
use zomp::workshare::for_loop;

fn serial() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    let g = M
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    trace::disable_all();
    trace::clear_callbacks();
    trace::reset();
    g
}

/// Minimal JSON support for validating the hand-formatted exporter output
/// (the workspace's vendored serde_json is serialisation-only).
mod json {
    /// Validate a complete JSON document by recursive descent; panics with
    /// context on malformed input.
    pub fn validate(text: &str) {
        let b = text.as_bytes();
        let end = value(b, skip_ws(b, 0));
        assert!(
            skip_ws(b, end) == b.len(),
            "trailing garbage at byte {end} of {} bytes",
            b.len()
        );
    }

    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        i
    }

    fn value(b: &[u8], i: usize) -> usize {
        assert!(i < b.len(), "unexpected end of JSON");
        match b[i] {
            b'{' => composite(b, i, b'}', true),
            b'[' => composite(b, i, b']', false),
            b'"' => string(b, i),
            b't' => lit(b, i, b"true"),
            b'f' => lit(b, i, b"false"),
            b'n' => lit(b, i, b"null"),
            b'-' | b'0'..=b'9' => number(b, i),
            c => panic!("unexpected byte {:?} at {i}", c as char),
        }
    }

    fn composite(b: &[u8], start: usize, close: u8, object: bool) -> usize {
        let mut i = skip_ws(b, start + 1);
        if b[i] == close {
            return i + 1;
        }
        loop {
            if object {
                i = skip_ws(b, string(b, skip_ws(b, i)));
                assert_eq!(b[i], b':', "expected ':' at {i}");
                i += 1;
            }
            i = skip_ws(b, value(b, skip_ws(b, i)));
            match b[i] {
                b',' => i += 1,
                c if c == close => return i + 1,
                c => panic!("expected ',' or close at {i}, got {:?}", c as char),
            }
        }
    }

    fn string(b: &[u8], start: usize) -> usize {
        assert_eq!(b[start], b'"', "expected string at {start}");
        let mut i = start + 1;
        while i < b.len() {
            match b[i] {
                b'"' => return i + 1,
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        panic!("unterminated string starting at {start}")
    }

    fn number(b: &[u8], mut i: usize) -> usize {
        let start = i;
        while i < b.len() && matches!(b[i], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            i += 1;
        }
        std::str::from_utf8(&b[start..i])
            .unwrap()
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad number at {start}"));
        i
    }

    fn lit(b: &[u8], i: usize, word: &[u8]) -> usize {
        assert_eq!(&b[i..i + word.len()], word, "bad literal at {i}");
        i + word.len()
    }

    /// Extract a numeric field `"key":<num>` from a single JSON line.
    pub fn num_field(line: &str, key: &str) -> Option<f64> {
        let pat = format!("\"{key}\":");
        let at = line.find(&pat)? + pat.len();
        let rest = &line[at..];
        let end = rest
            .find(|c: char| !matches!(c, '-' | '+' | '.' | 'e' | 'E' | '0'..='9'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
}

/// One exported `"ph":"X"` slice, recovered from its line in the Chrome
/// trace (the exporter writes one entry per line).
struct Slice<'a> {
    line: &'a str,
    tid: i64,
    /// Start/end in exact nanoseconds (µs with three decimals).
    t0_ns: i64,
    t1_ns: i64,
}

fn slices(chrome_json: &str) -> Vec<Slice<'_>> {
    chrome_json
        .lines()
        .filter(|l| l.contains("\"ph\":\"X\""))
        .map(|line| {
            let ts = json::num_field(line, "ts").expect("ts field");
            let dur = json::num_field(line, "dur").expect("dur field");
            Slice {
                line,
                tid: json::num_field(line, "tid").expect("tid field") as i64,
                t0_ns: (ts * 1e3).round() as i64,
                t1_ns: ((ts + dur) * 1e3).round() as i64,
            }
        })
        .collect()
}

/// Satellite 3a: `ParallelBegin`/`ParallelEnd` callbacks strictly nest on
/// every thread, including across nested `fork_call`s.
#[test]
fn region_callbacks_strictly_nest_per_thread() {
    let _g = serial();
    thread_local! {
        static DEPTH: Cell<i64> = const { Cell::new(0) };
    }
    static UNDERFLOWS: AtomicU64 = AtomicU64::new(0);
    static MAX_DEPTH: AtomicI64 = AtomicI64::new(0);
    static BEGINS: AtomicU64 = AtomicU64::new(0);
    static ENDS: AtomicU64 = AtomicU64::new(0);
    UNDERFLOWS.store(0, Ordering::SeqCst);
    MAX_DEPTH.store(0, Ordering::SeqCst);
    BEGINS.store(0, Ordering::SeqCst);
    ENDS.store(0, Ordering::SeqCst);

    trace::register_callback(|p| match p {
        trace::Probe::ParallelBegin { .. } => {
            BEGINS.fetch_add(1, Ordering::SeqCst);
            let d = DEPTH.with(|d| {
                d.set(d.get() + 1);
                d.get()
            });
            MAX_DEPTH.fetch_max(d, Ordering::SeqCst);
        }
        trace::Probe::ParallelEnd { .. } => {
            ENDS.fetch_add(1, Ordering::SeqCst);
            DEPTH.with(|d| {
                if d.get() <= 0 {
                    UNDERFLOWS.fetch_add(1, Ordering::SeqCst);
                } else {
                    d.set(d.get() - 1);
                }
            });
        }
        _ => {}
    });

    for _ in 0..8 {
        fork_call(Parallel::new().num_threads(4).label("outer"), |ctx| {
            let tid = ctx.thread_num();
            // Nested region from every thread: inner teams whose begin/end
            // must nest inside the outer implicit task.
            fork_call(Parallel::new().num_threads(2).label("inner"), move |_| {
                std::hint::black_box(tid);
            });
        });
    }
    trace::clear_callbacks();

    assert_eq!(UNDERFLOWS.load(Ordering::SeqCst), 0, "end before begin");
    assert_eq!(
        BEGINS.load(Ordering::SeqCst),
        ENDS.load(Ordering::SeqCst),
        "unbalanced begin/end"
    );
    // 8 outer + 8*4 nested masters.
    assert_eq!(BEGINS.load(Ordering::SeqCst), 8 + 8 * 4);
    assert!(MAX_DEPTH.load(Ordering::SeqCst) >= 2, "nesting observed");
    DEPTH.with(|d| assert_eq!(d.get(), 0, "caller thread depth balanced"));
}

/// Satellite 3b: across every schedule kind, team size and chunk size,
/// `iters_owned + iters_stolen` reconciles exactly with the iterations
/// executed, and dispatch inits match finis.
#[test]
fn chunk_counters_reconcile_across_all_schedules() {
    let _g = serial();
    trace::enable_counters();

    let schedules = [
        ("static", Schedule::static_default()),
        ("static,7", Schedule::static_chunked(7)),
        ("dynamic", Schedule::dynamic(None)),
        ("dynamic,5", Schedule::dynamic(Some(5))),
        ("guided", Schedule::guided(None)),
        ("guided,3", Schedule::guided(Some(3))),
    ];
    let trips: [i64; 4] = [0, 1, 97, 4096];
    for nth in [1usize, 2, 4] {
        for (name, sched) in schedules {
            for trip in trips {
                let before = trace::metrics();
                let executed = AtomicU64::new(0);
                fork_call(Parallel::new().num_threads(nth).label("reconcile"), |ctx| {
                    for_loop(ctx, sched, 0..trip, false, |_i| {
                        executed.fetch_add(1, Ordering::Relaxed);
                    });
                });
                let after = trace::metrics();
                let iters = (after.iters_owned + after.iters_stolen)
                    - (before.iters_owned + before.iters_stolen);
                assert_eq!(
                    executed.load(Ordering::Relaxed),
                    trip as u64,
                    "{name} nth={nth} trip={trip}: body count"
                );
                assert_eq!(
                    iters, trip as u64,
                    "{name} nth={nth} trip={trip}: counted iterations"
                );
                let chunks = (after.chunks_owned + after.chunks_stolen)
                    - (before.chunks_owned + before.chunks_stolen);
                if trip > 0 {
                    assert!(chunks > 0, "{name} nth={nth} trip={trip}: no chunks");
                }
                assert_eq!(
                    after.dispatch_inits - before.dispatch_inits,
                    after.dispatch_finis - before.dispatch_finis,
                    "{name} nth={nth} trip={trip}: init/fini mismatch"
                );
                assert_eq!(after.regions - before.regions, 1);
            }
        }
    }
    trace::disable_all();
}

/// A contended dynamic loop on an imbalanced body actually exercises the
/// steal path, and stolen chunks surface in the metrics.
#[test]
fn imbalanced_dynamic_loop_reports_stolen_chunks() {
    let _g = serial();
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
    if threads < 2 {
        return; // cannot steal without a second thread
    }
    trace::enable_counters();
    // Retry: stealing is probabilistic on a fast body, so skew the work
    // heavily toward low indices owned by thread 0.
    let mut saw_steal = false;
    for _ in 0..20 {
        let before = trace::metrics();
        fork_call(
            Parallel::new().num_threads(threads).label("imbalance"),
            |ctx| {
                for_loop(ctx, Schedule::dynamic(Some(1)), 0..256i64, false, |i| {
                    if i < 64 {
                        // Thread 0 owns the slow head of the deck.
                        let t = Instant::now();
                        while t.elapsed().as_micros() < 50 {
                            std::hint::spin_loop();
                        }
                    }
                });
            },
        );
        let after = trace::metrics();
        if after.chunks_stolen > before.chunks_stolen {
            saw_steal = true;
            break;
        }
    }
    trace::disable_all();
    assert!(saw_steal, "no steal observed in 20 imbalanced runs");
}

/// Satellite 3c: overflowing a thread ring increments the dropped counter
/// and leaves the earlier events intact and exportable.
#[test]
fn ring_overflow_drops_and_counts_without_corruption() {
    let _g = serial();
    trace::enable_events();
    trace::enable_counters();

    // Each single-thread region records a handful of events on this
    // thread; enough regions overflow the fixed ring (capacity 8192).
    for _ in 0..zomp::trace::RING_CAP {
        fork_call(Parallel::new().num_threads(1).label("spin"), |ctx| {
            for_loop(ctx, Schedule::static_default(), 0..1i64, false, |_| {});
        });
    }
    let m = trace::metrics();
    let json = trace::chrome_trace_json();
    trace::disable_all();

    assert!(m.events_dropped > 0, "ring never overflowed: {m:?}");
    assert!(
        m.events_recorded >= zomp::trace::RING_CAP as u64,
        "ring not full: {m:?}"
    );
    // The retained prefix still exports as valid JSON with sane spans.
    json::validate(&json);
    let slices = slices(&json);
    assert!(!slices.is_empty(), "no slices survived");
    for s in &slices {
        assert!(s.t0_ns > 0, "zero timestamp: {}", s.line);
        assert!(s.t1_ns >= s.t0_ns, "negative duration: {}", s.line);
    }
}

/// Acceptance: a traced work-stealing loop exports a Chrome trace with
/// per-thread rows, `file:line` auto-labels, owned-vs-stolen chunk args
/// and spans that strictly nest within each thread row.
#[test]
fn chrome_trace_export_is_structurally_valid() {
    let _g = serial();
    trace::enable_events();
    trace::enable_counters();

    // No `.label()`: the region must auto-label with this file and line.
    fork_call(Parallel::new().num_threads(4), |ctx| {
        for_loop(ctx, Schedule::dynamic(Some(8)), 0..2048i64, false, |i| {
            std::hint::black_box(i);
        });
    });
    let json = trace::chrome_trace_json();
    trace::disable_all();

    json::validate(&json);

    // Thread-name metadata rows.
    assert!(
        json.lines()
            .any(|l| l.contains("\"ph\":\"M\"") && l.contains("\"thread_name\"")),
        "missing thread_name metadata"
    );
    let slices = slices(&json);
    // The pragma-style auto-label points at this file.
    assert!(
        slices
            .iter()
            .any(|s| s.line.contains("\"cat\":\"parallel\"") && s.line.contains("trace.rs:")),
        "missing file:line region label"
    );
    // Chunk slices carry provenance; loop slices carry the trip count.
    assert!(
        slices.iter().any(|s| s.line.contains("\"stolen\":false")),
        "missing owned-chunk provenance args"
    );
    assert!(
        slices.iter().any(|s| s.line.contains("\"trip\":2048")),
        "missing loop trip args"
    );

    // Spans strictly nest per tid (timestamps are exact: µs with three
    // decimals encodes integer nanoseconds).
    let mut by_tid: std::collections::HashMap<i64, Vec<(i64, i64)>> = Default::default();
    for s in &slices {
        by_tid.entry(s.tid).or_default().push((s.t0_ns, s.t1_ns));
    }
    for (tid, mut spans) in by_tid {
        // Sort by start, widest first, and check against a stack of open
        // intervals: each span must fit entirely inside the innermost
        // still-open one.
        spans.sort_by_key(|&(s, e)| (s, std::cmp::Reverse(e)));
        let mut stack: Vec<i64> = Vec::new();
        for (s, e) in spans {
            while matches!(stack.last(), Some(&top) if top <= s) {
                stack.pop();
            }
            if let Some(&top) = stack.last() {
                assert!(e <= top, "tid {tid}: span [{s},{e}] crosses boundary {top}");
            }
            stack.push(e);
        }
    }
}

/// The counter snapshot round-trips through the JSON exporter.
#[test]
fn metrics_json_matches_snapshot() {
    let _g = serial();
    trace::enable_counters();
    fork_call(Parallel::new().num_threads(2).label("m"), |ctx| {
        for_loop(ctx, Schedule::dynamic(Some(4)), 0..64i64, false, |_| {});
    });
    let snap = trace::metrics();
    let json = trace::metrics_json();
    trace::disable_all();

    json::validate(&json);
    // metrics_json may use `"key": value` spacing; normalise before lookup.
    let json = json.replace("\": ", "\":");
    let get = |k: &str| -> u64 {
        json.lines()
            .find_map(|l| json::num_field(l, k))
            .unwrap_or_else(|| panic!("missing field {k}")) as u64
    };
    assert_eq!(get("regions"), snap.regions);
    assert_eq!(get("iters_owned") + get("iters_stolen"), 64);
    assert_eq!(get("dispatch_inits"), get("dispatch_finis"));
    assert!(get("threads") >= 2);
}

/// Satellite 4: with instrumentation fully disabled, the dynamic dispatch
/// claim path stays within an order of magnitude of the PR 1 baseline
/// (~3 ns/claim). The bound is deliberately loose — CI machines are noisy
/// — but catches the regression class where the disabled path picks up a
/// lock or a clock read (both >100 ns effects on this loop shape).
#[test]
fn disabled_tracing_overhead_guard() {
    let _g = serial();
    assert_eq!(trace::mode(), 0, "instrumentation must be off");

    const TRIP: u64 = 1 << 20;
    // Warm-up pass, then three timed passes; take the fastest.
    let mut best_ns_per_claim = f64::INFINITY;
    for pass in 0..4 {
        let d = zomp::schedule::DynamicDispatch::new(TRIP, 1, Some(1));
        let t0 = Instant::now();
        let mut claims = 0u64;
        while let Some(r) = d.next(0) {
            std::hint::black_box(r.start);
            claims += 1;
        }
        let ns = t0.elapsed().as_nanos() as f64 / claims as f64;
        assert_eq!(claims, TRIP);
        if pass > 0 {
            best_ns_per_claim = best_ns_per_claim.min(ns);
        }
    }
    assert!(
        best_ns_per_claim < 100.0,
        "disabled dispatch claim took {best_ns_per_claim:.1} ns \
         (baseline ~3 ns; >100 ns means the disabled path regressed)"
    );
}

/// The kernel/deopt telemetry probes added for the tier profiler share
/// the disabled-cost bound with the dispatch path: with `mode() == 0`,
/// `kernel_begin_ts` must not read a clock and `kernel_end`/`deopt`/
/// `quicken` must early-return after one relaxed load each.
#[test]
fn disabled_kernel_probe_overhead_guard() {
    let _g = serial();
    assert_eq!(trace::mode(), 0, "instrumentation must be off");

    const CALLS: u64 = 1 << 20;
    let mut best_ns_per_probe = f64::INFINITY;
    for pass in 0..4 {
        let t0 = Instant::now();
        for i in 0..CALLS {
            let ts = trace::kernel_begin_ts();
            trace::kernel_end("guard-kernel", 3, 8, None, ts);
            if i & 0xffff == 0 {
                trace::deopt("index.f->index", 5);
                trace::quicken("index->index.f", 5);
            }
            std::hint::black_box(ts);
        }
        let ns = t0.elapsed().as_nanos() as f64 / CALLS as f64;
        if pass > 0 {
            best_ns_per_probe = best_ns_per_probe.min(ns);
        }
    }
    assert!(
        best_ns_per_probe < 100.0,
        "disabled kernel probe pair took {best_ns_per_probe:.1} ns \
         (expected ~1 ns; >100 ns means a clock read or lock leaked \
         into the disabled path)"
    );
}

/// `finish()` writes the configured outputs and reports their paths.
#[test]
fn finish_writes_configured_outputs() {
    let _g = serial();
    let dir = std::env::temp_dir().join(format!("zomp-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let metrics_path = dir.join("metrics.json");

    trace::set_trace_path(trace_path.to_str().unwrap());
    trace::set_metrics_path(metrics_path.to_str().unwrap());
    fork_call(Parallel::new().num_threads(2).label("files"), |ctx| {
        for_loop(ctx, Schedule::guided(None), 0..128i64, false, |_| {});
    });
    let written = trace::finish().expect("finish writes files");
    trace::disable_all();

    assert_eq!(written.len(), 2, "{written:?}");
    for p in [&trace_path, &metrics_path] {
        let text = std::fs::read_to_string(p).unwrap();
        json::validate(&text);
    }
    std::fs::remove_dir_all(&dir).ok();
}
