//! Property-based tests of the runtime's core invariants: every schedule
//! partitions the iteration space exactly; reductions match their serial
//! folds for any input; loop-bound normalisation agrees with naive loop
//! execution.

use proptest::prelude::*;
use zomp::prelude::*;
use zomp::reduction::Reduce;
use zomp::schedule::{
    static_block, DynamicDispatch, GuidedDispatch, LoopBounds, LoopCmp, StaticChunked,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// schedule(static): blocks are a contiguous, balanced partition.
    #[test]
    fn static_block_partitions(trip in 0u64..10_000, nth in 1usize..130) {
        let mut covered = 0u64;
        let mut prev_end = 0u64;
        let mut sizes = Vec::new();
        for tid in 0..nth {
            let r = static_block(tid, nth, trip);
            prop_assert_eq!(r.start, prev_end);
            prev_end = r.end;
            sizes.push(r.end - r.start);
            covered += r.end - r.start;
        }
        prop_assert_eq!(covered, trip);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced: {sizes:?}");
    }

    /// schedule(static, chunk): round-robin chunks cover exactly.
    #[test]
    fn static_chunked_partitions(trip in 0u64..5_000, nth in 1usize..65, chunk in 1i64..200) {
        let mut seen = vec![0u8; trip as usize];
        for tid in 0..nth {
            for r in StaticChunked::new(tid, nth, trip, chunk) {
                prop_assert!(r.end - r.start <= chunk as u64);
                for i in r {
                    seen[i as usize] += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// dynamic work-stealing dispatch covers exactly once regardless of
    /// chunk, deck width, and which single thread drains it (the drain-all
    /// caller exercises the steal path against every other slot).
    #[test]
    fn dynamic_dispatch_partitions(trip in 0u64..5_000, nth in 1usize..9,
                                   chunk in proptest::option::of(1i64..300),
                                   drainer in 0usize..8) {
        let d = DynamicDispatch::new(trip, nth, chunk);
        let tid = drainer % nth;
        let max_chunk = chunk.unwrap_or(1) as u64;
        let mut seen = vec![0u8; trip as usize];
        while let Some(r) = d.next(tid) {
            prop_assert!(r.end - r.start <= max_chunk);
            for i in r {
                seen[i as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// guided work-stealing dispatch covers exactly once; every claim
    /// honours the minimum chunk unless it finishes off a remainder
    /// smaller than the minimum.
    #[test]
    fn guided_dispatch_partitions(trip in 0u64..5_000, nth in 1usize..9,
                                  min_chunk in proptest::option::of(1i64..50),
                                  drainer in 0usize..8) {
        let g = GuidedDispatch::new(trip, nth, min_chunk);
        let tid = drainer % nth;
        let min = min_chunk.unwrap_or(1) as u64;
        let mut seen = vec![0u8; trip as usize];
        let mut sub_min = 0usize;
        while let Some(r) = g.next(tid) {
            let size = r.end - r.start;
            prop_assert!(size >= 1);
            // A sub-minimum claim is only legal when it exhausts a range
            // fragment; fragments are bounded by slots plus steal splits.
            if size < min {
                sub_min += 1;
            }
            for i in r {
                seen[i as usize] += 1;
            }
        }
        // Each fragment (slot or steal split, O(nth·log2 trip) of them) can
        // end with at most one sub-minimum tail claim.
        prop_assert!(sub_min <= nth * 16 + 8, "too many sub-minimum claims: {sub_min}");
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// The legacy shared-cursor protocols (huge-trip fallback and bench
    /// baseline) keep their original sequential-chunk behaviour.
    #[test]
    fn legacy_dispatch_partitions(trip in 0u64..5_000, nth in 1usize..65,
                                  chunk in 1u64..300) {
        let d = zomp::schedule::legacy::SharedCursorDispatch::new(trip, chunk);
        let mut covered = 0u64;
        while let Some(r) = d.next() {
            prop_assert_eq!(r.start, covered);
            covered = r.end;
        }
        prop_assert_eq!(covered, trip);

        let g = zomp::schedule::legacy::SharedGuidedDispatch::new(trip, nth, None);
        let mut covered = 0u64;
        let mut last = u64::MAX;
        while let Some(r) = g.next() {
            prop_assert_eq!(r.start, covered);
            let size = r.end - r.start;
            prop_assert!(size <= last);
            last = size.max(1);
            covered = r.end;
        }
        prop_assert_eq!(covered, trip);
    }

    /// trip_count matches literally executing the source loop.
    #[test]
    fn trip_count_matches_naive_loop(lb in -500i64..500, span in 0i64..400,
                                     incr in 1i64..17, up in proptest::bool::ANY,
                                     inclusive in proptest::bool::ANY) {
        let (bounds, mut i, step) = if up {
            let ub = lb + span;
            (LoopBounds { lb, ub, incr, cmp: if inclusive { LoopCmp::Le } else { LoopCmp::Lt } }, lb, incr)
        } else {
            let ub = lb - span;
            (LoopBounds { lb, ub, incr: -incr, cmp: if inclusive { LoopCmp::Ge } else { LoopCmp::Gt } }, lb, -incr)
        };
        let mut naive = 0u64;
        let mut values = Vec::new();
        loop {
            let cond = match bounds.cmp {
                LoopCmp::Lt => i < bounds.ub,
                LoopCmp::Le => i <= bounds.ub,
                LoopCmp::Gt => i > bounds.ub,
                LoopCmp::Ge => i >= bounds.ub,
            };
            if !cond {
                break;
            }
            values.push(i);
            naive += 1;
            i += step;
        }
        prop_assert_eq!(bounds.trip_count(), naive);
        for (k, &v) in values.iter().enumerate() {
            prop_assert_eq!(bounds.iter_value(k as u64), v);
        }
    }

    /// Integer add reduction equals the serial sum, for every schedule.
    #[test]
    fn parallel_sum_matches_serial(values in proptest::collection::vec(-1000i64..1000, 0..300),
                                   threads in 1usize..5,
                                   sched_pick in 0usize..4) {
        let sched = [
            Schedule::static_default(),
            Schedule::static_chunked(3),
            Schedule::dynamic(Some(4)),
            Schedule::guided(None),
        ][sched_pick];
        let want: i64 = values.iter().sum();
        let got = parallel_reduce(
            Parallel::new().num_threads(threads),
            sched,
            0..values.len() as i64,
            0i64,
            RedOp::Add,
            |i, acc| *acc += values[i as usize],
        );
        prop_assert_eq!(got, want);
    }

    /// Min/max reductions equal serial folds.
    #[test]
    fn parallel_minmax_matches_serial(values in proptest::collection::vec(-1e6f64..1e6, 1..200),
                                      threads in 1usize..5) {
        let want_min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let want_max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let got_min = parallel_reduce(
            Parallel::new().num_threads(threads),
            Schedule::dynamic(None),
            0..values.len() as i64,
            f64::INFINITY,
            RedOp::Min,
            |i, acc| *acc = acc.min(values[i as usize]),
        );
        let got_max = parallel_reduce(
            Parallel::new().num_threads(threads),
            Schedule::static_default(),
            0..values.len() as i64,
            f64::NEG_INFINITY,
            RedOp::Max,
            |i, acc| *acc = acc.max(values[i as usize]),
        );
        prop_assert_eq!(got_min, want_min);
        prop_assert_eq!(got_max, want_max);
    }

    /// Reduction identities are neutral elements under combine, any value.
    #[test]
    fn identity_neutrality(v in -1e9f64..1e9) {
        for op in [RedOp::Add, RedOp::Mul, RedOp::Min, RedOp::Max] {
            let id = f64::identity(op);
            prop_assert_eq!(f64::combine(op, id, v), v);
            prop_assert_eq!(f64::combine(op, v, id), v);
        }
    }

    /// Disjoint shared-slice writes through a team leave exactly the
    /// expected data (no lost or duplicated writes), any schedule.
    #[test]
    fn shared_slice_disjoint_writes(n in 1usize..2000, threads in 1usize..5, chunk in 1i64..64) {
        let mut data = vec![-1i64; n];
        {
            let s = SharedSlice::new(&mut data);
            parallel_for(
                Parallel::new().num_threads(threads),
                Schedule::static_chunked(chunk),
                0..n as i64,
                |i| s.put(i, i * 3),
            );
        }
        for (i, &v) in data.iter().enumerate() {
            prop_assert_eq!(v, i as i64 * 3);
        }
    }
}

/// OMP_SCHEDULE parser accepts anything without panicking and respects
/// well-formed inputs.
#[test]
fn omp_schedule_parser_is_total() {
    proptest!(|(s in "\\PC*")| {
        let _ = zomp::icv::parse_omp_schedule(&s);
    });
    proptest!(|(chunk in 1i64..1_000_000)| {
        let s = zomp::icv::parse_omp_schedule(&format!("dynamic,{chunk}"));
        prop_assert_eq!(s.chunk, Some(chunk));
    });
}
