//! `critical` sections and the `omp_*` lock API.
//!
//! `critical` regions are mutual exclusion keyed by name: all unnamed
//! criticals share one lock, and every distinct name gets its own —
//! exactly the libomp `__kmpc_critical(ident, lock)` semantics. The lock
//! registries are owned by [`crate::runtime::Runtime`] (programs on
//! different runtimes cannot contend); the free functions here are thin
//! wrappers over [`Runtime::current`]. The lock API mirrors
//! `omp_init_lock` / `omp_set_lock` / `omp_unset_lock` / `omp_test_lock`
//! and the nestable variants.

use std::thread::ThreadId;

use parking_lot::lock_api::RawMutex as _;
use parking_lot::{Condvar, Mutex, RawMutex};

use crate::runtime::Runtime;

/// Execute `f` inside the current runtime's unnamed `critical` section.
pub fn critical<R>(f: impl FnOnce() -> R) -> R {
    Runtime::current().critical(f)
}

/// Execute `f` inside the current runtime's `critical(name)` section.
pub fn critical_named<R>(name: &str, f: impl FnOnce() -> R) -> R {
    Runtime::current().critical_named(name, f)
}

/// A simple (non-nestable) OpenMP lock: `omp_init_lock` et al.
///
/// Built directly on the raw mutex so ownership can cross scopes the way the
/// C API allows (`set` in one function, `unset` in another). Relocking from
/// the owning thread deadlocks, as the spec prescribes for simple locks.
pub struct OmpLock {
    raw: RawMutex,
}

impl std::fmt::Debug for OmpLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OmpLock").finish_non_exhaustive()
    }
}

impl Default for OmpLock {
    fn default() -> Self {
        OmpLock {
            raw: RawMutex::INIT,
        }
    }
}

impl OmpLock {
    /// `omp_init_lock`.
    pub fn new() -> Self {
        Self::default()
    }

    /// `omp_set_lock`: blocks until the lock is acquired.
    pub fn set(&self) {
        self.raw.lock();
    }

    /// `omp_unset_lock`. Calling without holding the lock is non-conforming;
    /// like libomp we unlock unconditionally.
    pub fn unset(&self) {
        // SAFETY: the OpenMP contract requires the caller to hold the lock.
        unsafe { self.raw.unlock() };
    }

    /// `omp_test_lock`: try to acquire without blocking.
    pub fn test(&self) -> bool {
        self.raw.try_lock()
    }

    /// Scoped convenience not in the OpenMP API but idiomatic in Rust.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.set();
        struct Unset<'a>(&'a OmpLock);
        impl Drop for Unset<'_> {
            fn drop(&mut self) {
                self.0.unset();
            }
        }
        let _g = Unset(self);
        f()
    }
}

#[derive(Debug, Default)]
struct NestState {
    owner: Option<ThreadId>,
    depth: u32,
}

/// A nestable OpenMP lock: `omp_init_nest_lock` et al. The owning thread may
/// re-acquire; each `set` must be matched by an `unset`.
#[derive(Debug, Default)]
pub struct OmpNestLock {
    state: Mutex<NestState>,
    cv: Condvar,
}

impl OmpNestLock {
    /// `omp_init_nest_lock`.
    pub fn new() -> Self {
        Self::default()
    }

    /// `omp_set_nest_lock`. Returns the nesting depth after acquisition.
    pub fn set(&self) -> u32 {
        let me = std::thread::current().id();
        let mut st = self.state.lock();
        loop {
            match st.owner {
                None => {
                    st.owner = Some(me);
                    st.depth = 1;
                    return 1;
                }
                Some(owner) if owner == me => {
                    st.depth += 1;
                    return st.depth;
                }
                Some(_) => self.cv.wait(&mut st),
            }
        }
    }

    /// `omp_unset_nest_lock`.
    ///
    /// # Panics
    /// If the calling thread does not own the lock (non-conforming use).
    pub fn unset(&self) {
        let me = std::thread::current().id();
        let mut st = self.state.lock();
        assert_eq!(
            st.owner,
            Some(me),
            "unset of a nest lock not owned by this thread"
        );
        st.depth -= 1;
        if st.depth == 0 {
            st.owner = None;
            self.cv.notify_one();
        }
    }

    /// `omp_test_nest_lock`: returns the new depth on success, 0 on failure.
    pub fn test(&self) -> u32 {
        let me = std::thread::current().id();
        let mut st = self.state.lock();
        match st.owner {
            None => {
                st.owner = Some(me);
                st.depth = 1;
                1
            }
            Some(owner) if owner == me => {
                st.depth += 1;
                st.depth
            }
            Some(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn critical_is_mutually_exclusive() {
        // A non-atomic counter updated under critical: no lost updates.
        let mut counter = 0usize;
        let cptr = std::ptr::addr_of_mut!(counter) as usize;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..1000 {
                        critical(|| {
                            // SAFETY: serialised by the critical section.
                            unsafe { *(cptr as *mut usize) += 1 };
                        });
                    }
                });
            }
        });
        assert_eq!(counter, 4000);
    }

    #[test]
    fn named_criticals_are_independent() {
        // Two different names can be held simultaneously; same name excludes.
        let in_a = AtomicUsize::new(0);
        critical_named("a", || {
            in_a.store(1, Ordering::SeqCst);
            critical_named("b", || {
                assert_eq!(in_a.load(Ordering::SeqCst), 1);
            });
        });
    }

    #[test]
    fn omp_lock_set_unset() {
        let l = OmpLock::new();
        l.set();
        assert!(!l.test(), "lock is held, test must fail");
        l.unset();
        assert!(l.test());
        l.unset();
    }

    #[test]
    fn omp_lock_excludes_across_threads() {
        let l = OmpLock::new();
        let v = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        l.set();
                        let x = v.load(Ordering::Relaxed);
                        std::hint::spin_loop();
                        v.store(x + 1, Ordering::Relaxed);
                        l.unset();
                    }
                });
            }
        });
        assert_eq!(v.load(Ordering::SeqCst), 2000);
    }

    #[test]
    fn omp_lock_with_scoped() {
        let l = OmpLock::new();
        let out = l.with(|| 42);
        assert_eq!(out, 42);
        assert!(l.test(), "lock must be released after with()");
        l.unset();
    }

    #[test]
    fn nest_lock_reacquires() {
        let l = OmpNestLock::new();
        assert_eq!(l.set(), 1);
        assert_eq!(l.set(), 2);
        assert_eq!(l.test(), 3);
        l.unset();
        l.unset();
        l.unset();
        // Fully released: another depth-1 acquisition works.
        assert_eq!(l.set(), 1);
        l.unset();
    }

    #[test]
    fn nest_lock_blocks_other_threads() {
        let l = OmpNestLock::new();
        l.set();
        std::thread::scope(|s| {
            let h = s.spawn(|| l.test());
            assert_eq!(
                h.join().unwrap(),
                0,
                "other thread cannot take held nest lock"
            );
        });
        l.unset();
    }
}
