//! Shared-variable accessors for parallel regions.
//!
//! The paper's preprocessor rewrites accesses to `shared` variables into
//! pointer accesses through the argument pack handed to the outlined
//! function (§III-B1/B3). In Rust the equivalent is a wrapper that lets many
//! threads of a team read *and write* one slice through a shared reference —
//! sound only under the OpenMP contract that the program divides writes
//! disjointly (which worksharing schedules guarantee for the loop index
//! pattern, and which [`SafetyMode::Paranoid`] can verify at runtime).
//!
//! [`SharedSlice`] is the workhorse used by the NPB kernels; [`SharedCell`]
//! covers scalar shared variables written under `critical`/`atomic`/`single`
//! discipline.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::safety::{safety_mode, SafetyMode};

/// A slice shareable across a team with interior mutability.
///
/// # Safety contract
/// Distinct threads must write disjoint elements between two
/// synchronisation points (barrier / region end), exactly the OpenMP data
/// race rule. Reads of elements written in the same phase by another thread
/// are races too. `Production` mode performs raw accesses; `Debug` adds
/// bounds checks; `Paranoid` additionally tags each element with its writer
/// and panics on write-write overlap between tag resets.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
    /// Writer tags, allocated only in `Paranoid` mode: 0 = untouched,
    /// `tid + 1` = last writer.
    tags: Option<Box<[AtomicU32]>>,
    checked: SafetyMode,
}

// SAFETY: access discipline is delegated to the OpenMP contract documented
// above; the wrapper itself adds no thread affinity.
unsafe impl<T: Send + Sync> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T: Copy> SharedSlice<'a, T> {
    /// Wrap an exclusively borrowed slice for team-shared access. The
    /// safety mode is sampled here, like choosing the build mode in Zig.
    pub fn new(slice: &'a mut [T]) -> Self {
        let checked = safety_mode();
        let tags = (checked == SafetyMode::Paranoid)
            .then(|| (0..slice.len()).map(|_| AtomicU32::new(0)).collect());
        // SAFETY: `&mut [T]` -> `&[UnsafeCell<T>]` is the sanctioned cast
        // for introducing interior mutability over exclusive data.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        SharedSlice {
            data,
            tags,
            checked,
        }
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the slice empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn check_bounds(&self, i: usize) {
        if self.checked != SafetyMode::Production && i >= self.data.len() {
            panic!(
                "shared slice index {} out of bounds (len {})",
                i,
                self.data.len()
            );
        }
    }

    /// Read element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.check_bounds(i);
        // SAFETY: bounds checked above (or contractually valid in
        // Production); read races are excluded by the OpenMP contract.
        unsafe { *self.data.get_unchecked(i).get() }
    }

    /// Write element `i`.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        self.check_bounds(i);
        if let Some(tags) = &self.tags {
            let me = crate::team::current_region()
                .map(|(tid, _)| tid as u32 + 1)
                .unwrap_or(u32::MAX);
            // Relaxed: tags only detect racing writers; any interleaving of
            // two unsynchronised writes is already the bug being reported.
            let prev = tags[i].swap(me, Ordering::Relaxed);
            if prev != 0 && prev != me {
                panic!(
                    "write-write race on shared element {i}: threads {} and {} \
                     both wrote between synchronisation points",
                    prev - 1,
                    me.wrapping_sub(1),
                );
            }
        }
        // SAFETY: as for `get`; write disjointness is the caller contract,
        // verified above in Paranoid mode.
        unsafe { *self.data.get_unchecked(i).get() = v }
    }

    /// Read element by `i64` loop-variable (negative panics in checked
    /// modes, wraps like C casts in Production).
    #[inline]
    pub fn at(&self, i: i64) -> T {
        self.get(i as usize)
    }

    /// Write element by `i64` loop-variable.
    #[inline]
    pub fn put(&self, i: i64, v: T) {
        self.set(i as usize, v)
    }

    /// `+=` convenience (not atomic — subject to the same write contract).
    #[inline]
    pub fn add_assign(&self, i: usize, v: T)
    where
        T: std::ops::Add<Output = T>,
    {
        self.set(i, self.get(i) + v);
    }

    /// Clear the Paranoid writer tags; call at synchronisation points when
    /// the next phase legitimately re-writes the same elements.
    pub fn reset_tags(&self) {
        if let Some(tags) = &self.tags {
            for t in tags.iter() {
                t.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Copy the full contents out (test/verification helper).
    pub fn snapshot(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// A single shared scalar cell, the `shared` clause equivalent for scalars
/// mutated under `single`/`master`/`critical` discipline.
pub struct SharedCell<T> {
    v: UnsafeCell<T>,
}

// SAFETY: same contract as SharedSlice.
unsafe impl<T: Send + Sync> Sync for SharedCell<T> {}
unsafe impl<T: Send> Send for SharedCell<T> {}

impl<T: Copy> SharedCell<T> {
    pub fn new(v: T) -> Self {
        SharedCell {
            v: UnsafeCell::new(v),
        }
    }

    /// Read the cell. Must not race with a concurrent `set`.
    #[inline]
    pub fn get(&self) -> T {
        // SAFETY: OpenMP contract — no concurrent writer.
        unsafe { *self.v.get() }
    }

    /// Write the cell. Must be the only accessor between sync points
    /// (e.g. inside `single` or `critical`).
    #[inline]
    pub fn set(&self, v: T) {
        // SAFETY: OpenMP contract — exclusive access at this point.
        unsafe { *self.v.get() = v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::{with_safety_mode, SafetyMode};
    use crate::schedule::Schedule;
    use crate::team::Parallel;
    use crate::workshare::parallel_for;

    #[test]
    fn disjoint_writes_from_team() {
        let mut data = vec![0i64; 1000];
        {
            let s = SharedSlice::new(&mut data);
            parallel_for(
                Parallel::new().num_threads(4),
                Schedule::static_default(),
                0..1000,
                |i| s.put(i, i * 2),
            );
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as i64 * 2);
        }
    }

    #[test]
    fn debug_mode_bounds_checks() {
        with_safety_mode(SafetyMode::Debug, || {
            let mut data = vec![0u32; 4];
            let s = SharedSlice::new(&mut data);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.get(4)));
            assert!(r.is_err(), "out-of-bounds read must panic in Debug mode");
        });
    }

    #[test]
    fn production_mode_skips_tagging() {
        with_safety_mode(SafetyMode::Production, || {
            let mut data = vec![0u32; 4];
            let s = SharedSlice::new(&mut data);
            s.set(2, 7);
            assert_eq!(s.get(2), 7);
        });
    }

    #[test]
    fn paranoid_mode_catches_write_write_race() {
        with_safety_mode(SafetyMode::Paranoid, || {
            let mut data = vec![0u32; 8];
            let s = SharedSlice::new(&mut data);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::team::fork_call(Parallel::new().num_threads(2), |_ctx| {
                    // Both threads write element 0: a deliberate race.
                    s.set(0, 1);
                });
            }));
            assert!(r.is_err(), "paranoid mode must catch the overlap");
        });
    }

    #[test]
    fn paranoid_reset_allows_rewrite() {
        with_safety_mode(SafetyMode::Paranoid, || {
            let mut data = vec![0u32; 2];
            let s = SharedSlice::new(&mut data);
            s.set(0, 1);
            s.reset_tags();
            s.set(0, 2); // same thread or another phase: fine after reset
            assert_eq!(s.get(0), 2);
        });
    }

    #[test]
    fn shared_cell_single_writer() {
        let c = SharedCell::new(0i64);
        crate::team::fork_call(Parallel::new().num_threads(4), |ctx| {
            ctx.single(false, || c.set(41));
            // After the single's barrier every thread reads the value.
            assert_eq!(c.get(), 41);
        });
    }
}
