//! Per-instance runtime state: the `zomp::Runtime` handle.
//!
//! Historically every piece of cross-region state in this crate was
//! process-global: the ICV block lived in a `OnceLock` seeded from the
//! environment exactly once, the `critical` registries were `static`s, and
//! the trace/metrics output paths were a global table. That is faithful to
//! libomp — and exactly wrong for a long-running service (`zagd`) that runs
//! thousands of independent programs, each with its own `num_threads`,
//! `schedule(runtime)` ICV, critical sections, and trace sinks, inside one
//! process.
//!
//! [`Runtime`] owns that state per instance:
//!
//! ```text
//! Runtime
//! ├── Icvs                     nthreads-var, dyn-var, run-sched-var
//! ├── critical registries      unnamed lock, named locks, split-phase locks
//! ├── threadprivate registry   name → ThreadPrivate<T> (type-erased)
//! └── trace/metrics sinks      where finish() writes trace/metrics/profile
//! ```
//!
//! Regions are bound to a runtime at fork time: [`crate::team::fork_call_rt`]
//! stores the handle in the team, workers re-enter it, and everything
//! downstream (`schedule(runtime)` resolution in `team`/`kmpc`/`workshare`,
//! the `omp::set_num_threads` facade, `critical`) consults the *entered*
//! runtime via [`Runtime::current`]. Outside any entered scope,
//! [`Runtime::current`] falls back to [`Runtime::global`] — the default
//! instance that makes every pre-existing caller and test behave exactly as
//! before.
//!
//! The per-OS-thread event rings and the counter block in [`crate::trace`]
//! intentionally stay process-global: they are observability over OS threads
//! (shared by all runtimes via the hot team) and carry no program-visible
//! semantics. What is per-runtime is where the rendered artefacts go.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Once, OnceLock};

use parking_lot::Mutex;

use crate::icv::{self, Icvs};
use crate::schedule::Schedule;
use crate::sync::OmpLock;
use crate::team::{Parallel, ThreadCtx};
use crate::threadprivate::ThreadPrivate;

/// Construction-time overrides for a [`Runtime`].
///
/// `None` fields take the OpenMP defaults (`nthreads-var` = detected
/// hardware concurrency, `dyn-var` = false, `run-sched-var` = static).
/// `Default::default()` reads **nothing** from the environment — the fully
/// isolated configuration a service wants per request. Use
/// [`RuntimeConfig::from_env`] for the classic CLI behaviour.
#[derive(Debug, Clone, Default)]
pub struct RuntimeConfig {
    /// Initial `nthreads-var` (`OMP_NUM_THREADS`).
    pub num_threads: Option<usize>,
    /// Initial `dyn-var` (`OMP_DYNAMIC`).
    pub dynamic: Option<bool>,
    /// Initial `run-sched-var` (`OMP_SCHEDULE`).
    pub run_schedule: Option<Schedule>,
    /// Honour `ZOMP_TRACE` / `ZOMP_METRICS` / `ZOMP_PROFILE` on first fork
    /// (read at most once per runtime, not once per process).
    pub sink_env: bool,
}

impl RuntimeConfig {
    /// Snapshot `OMP_NUM_THREADS` / `OMP_DYNAMIC` / `OMP_SCHEDULE` **now**.
    ///
    /// Unlike the old `Icvs::global()` path, nothing is latched per process:
    /// constructing another runtime after the environment changed sees the
    /// new values.
    pub fn from_env() -> Self {
        RuntimeConfig {
            num_threads: icv::parse_env_usize("OMP_NUM_THREADS").filter(|&n| n >= 1),
            dynamic: icv::parse_env_bool("OMP_DYNAMIC"),
            run_schedule: std::env::var("OMP_SCHEDULE")
                .ok()
                .map(|s| icv::parse_omp_schedule(&s)),
            sink_env: true,
        }
    }

    /// Builder: set `num_threads`.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builder: set `run-sched-var`.
    pub fn run_schedule(mut self, s: Schedule) -> Self {
        self.run_schedule = Some(s);
        self
    }
}

/// Where [`Runtime::finish`] writes the rendered observability artefacts.
#[derive(Default)]
struct TraceSinks {
    trace_path: Option<String>,
    metrics_path: Option<String>,
    /// `None` = profiling not requested, `Some(None)` = stderr,
    /// `Some(Some(path))` = file.
    profile_out: Option<Option<String>>,
}

/// One instance of the OpenMP runtime's mutable state. See the module docs
/// for the ownership picture.
pub struct Runtime {
    icvs: Icvs,
    /// The single lock shared by all *unnamed* `critical` constructs of
    /// programs on this runtime.
    unnamed_critical: Mutex<()>,
    /// Registry of named critical-section locks (closure-based API).
    criticals: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// Registry of named critical locks for split-phase (enter/exit) use —
    /// the VM's `critical_enter`/`critical_exit` lowering target, where the
    /// guard cannot live across an interpreter call boundary.
    split_criticals: Mutex<HashMap<String, Arc<OmpLock>>>,
    /// `threadprivate` variables by name, type-erased.
    threadprivates: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
    sinks: Mutex<TraceSinks>,
    /// Latches the `ZOMP_*` sink env read to once *per runtime*.
    sink_env_once: Once,
    sink_env: bool,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("num_threads", &self.icvs.num_threads())
            .finish_non_exhaustive()
    }
}

thread_local! {
    /// Stack of entered runtimes on this thread; the top is
    /// [`Runtime::current`]. A stack (not a slot) so nested scopes restore
    /// the outer runtime on drop.
    static CURRENT: std::cell::RefCell<Vec<Arc<Runtime>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Scope token from [`Runtime::enter`]; leaving the scope (drop) restores
/// the previously current runtime on this thread.
pub struct RuntimeGuard {
    /// `!Send`: the guard must drop on the thread whose stack it pushed.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for RuntimeGuard {
    fn drop(&mut self) {
        CURRENT.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

impl Runtime {
    /// A fresh runtime configured from the environment (the CLI default).
    pub fn new() -> Arc<Runtime> {
        Runtime::with_config(&RuntimeConfig::from_env())
    }

    /// A fresh runtime with explicit overrides; `Default::default()` config
    /// touches no environment variables at all.
    pub fn with_config(cfg: &RuntimeConfig) -> Arc<Runtime> {
        Arc::new(Runtime {
            icvs: Icvs::with_overrides(cfg.num_threads, cfg.dynamic, cfg.run_schedule),
            unnamed_critical: Mutex::new(()),
            criticals: Mutex::new(HashMap::new()),
            split_criticals: Mutex::new(HashMap::new()),
            threadprivates: Mutex::new(HashMap::new()),
            sinks: Mutex::new(TraceSinks::default()),
            sink_env_once: Once::new(),
            sink_env: cfg.sink_env,
        })
    }

    /// The default process-wide instance backing the free-function facade
    /// (`zomp::omp`, `zomp::sync::critical`, `zomp::trace::finish`).
    /// Initialised from the environment on first use.
    pub fn global() -> &'static Arc<Runtime> {
        static GLOBAL: OnceLock<Arc<Runtime>> = OnceLock::new();
        GLOBAL.get_or_init(Runtime::new)
    }

    /// The innermost runtime entered on this thread, or [`Runtime::global`]
    /// when none is. This is what every free-function facade consults.
    pub fn current() -> Arc<Runtime> {
        CURRENT
            .with(|s| s.borrow().last().cloned())
            .unwrap_or_else(|| Arc::clone(Runtime::global()))
    }

    /// Make this runtime [`Runtime::current`] on the calling thread until
    /// the returned guard drops. [`crate::team::fork_call_rt`] does this on
    /// every team thread, so region bodies rarely call it directly.
    pub fn enter(self: &Arc<Self>) -> RuntimeGuard {
        CURRENT.with(|s| s.borrow_mut().push(Arc::clone(self)));
        RuntimeGuard {
            _not_send: std::marker::PhantomData,
        }
    }

    /// This runtime's ICV block.
    pub fn icvs(&self) -> &Icvs {
        &self.icvs
    }

    /// Fork a team bound to this runtime — `fork_call` with an explicit
    /// handle. See [`crate::team::fork_call_rt`].
    #[track_caller]
    pub fn fork_call<F>(self: &Arc<Self>, par: Parallel, f: F)
    where
        F: for<'x> Fn(&ThreadCtx<'x>) + Sync,
    {
        crate::team::fork_call_rt(self, par, f)
    }

    // -- critical sections --------------------------------------------------

    /// Execute `f` inside this runtime's unnamed `critical` section.
    pub fn critical<R>(&self, f: impl FnOnce() -> R) -> R {
        let _g = self.unnamed_critical.lock();
        f()
    }

    /// Execute `f` inside this runtime's `critical(name)` section.
    pub fn critical_named<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let lock = {
            let mut reg = self.criticals.lock();
            Arc::clone(reg.entry(name.to_string()).or_default())
        };
        let _g = lock.lock();
        f()
    }

    /// The split-phase lock behind `critical(name)` for lowering targets
    /// that cannot hold a guard across a call boundary (the VM's
    /// `critical_enter`/`critical_exit`). One lock per distinct name, per
    /// runtime.
    pub fn critical_lock(&self, name: &str) -> Arc<OmpLock> {
        let mut reg = self.split_criticals.lock();
        Arc::clone(reg.entry(name.to_string()).or_default())
    }

    // -- threadprivate ------------------------------------------------------

    /// The `threadprivate` variable `key`, created from `init` on first use.
    ///
    /// Distinct runtimes get distinct storage for the same name — two
    /// programs served by one process cannot see each other's
    /// threadprivate state.
    ///
    /// # Panics
    /// If `key` was already registered on this runtime with a different
    /// payload type.
    pub fn threadprivate<T: Send + 'static>(
        &self,
        key: &str,
        init: impl Fn() -> T + Send + Sync + 'static,
    ) -> Arc<ThreadPrivate<T>> {
        let entry = {
            let mut reg = self.threadprivates.lock();
            Arc::clone(
                reg.entry(key.to_string())
                    .or_insert_with(|| Arc::new(ThreadPrivate::new(init))),
            )
        };
        entry.downcast::<ThreadPrivate<T>>().unwrap_or_else(|_| {
            panic!("threadprivate key `{key}` already registered with a different type")
        })
    }

    // -- trace/metrics sinks ------------------------------------------------

    /// Route the Chrome trace to `path` when [`Runtime::finish`] runs,
    /// enabling event recording (programmatic `ZOMP_TRACE=<path>`).
    pub fn set_trace_path(&self, path: &str) {
        self.sinks.lock().trace_path = Some(path.to_string());
        crate::trace::enable_events();
        crate::trace::enable_counters();
    }

    /// Route the metrics dump to `path` when [`Runtime::finish`] runs,
    /// enabling counters (programmatic `ZOMP_METRICS=<path>`).
    pub fn set_metrics_path(&self, path: &str) {
        self.sinks.lock().metrics_path = Some(path.to_string());
        crate::trace::enable_counters();
    }

    /// Route the rendered profile report to `path` — or stderr when `None` —
    /// when [`Runtime::finish`] runs (programmatic `ZOMP_PROFILE`).
    pub fn set_profile_out(&self, path: Option<&str>) {
        self.sinks.lock().profile_out = Some(path.map(|p| p.to_string()));
        crate::profile::enable();
    }

    /// Read `ZOMP_TRACE` / `ZOMP_METRICS` / `ZOMP_PROFILE` at most once for
    /// this runtime and activate the matching instrumentation. Called lazily
    /// by [`crate::team::fork_call_rt`]; a no-op for runtimes built with
    /// `sink_env: false` (per-request service runtimes must not inherit the
    /// daemon's environment).
    pub fn init_sinks_from_env(&self) {
        if !self.sink_env {
            return;
        }
        self.sink_env_once.call_once(|| {
            if let Ok(p) = std::env::var("ZOMP_TRACE") {
                if !p.is_empty() {
                    self.set_trace_path(&p);
                }
            }
            if let Ok(p) = std::env::var("ZOMP_METRICS") {
                if !p.is_empty() {
                    self.set_metrics_path(&p);
                }
            }
            if let Ok(p) = std::env::var("ZOMP_PROFILE") {
                if !p.is_empty() {
                    // `1` means "report to stderr"; anything else is a path.
                    self.set_profile_out((p != "1").then_some(p.as_str()));
                }
            }
        });
    }

    /// Write any outputs configured on this runtime. Returns the paths
    /// written.
    pub fn finish(&self) -> std::io::Result<Vec<String>> {
        let (trace_path, metrics_path, profile_out) = {
            let g = self.sinks.lock();
            (
                g.trace_path.clone(),
                g.metrics_path.clone(),
                g.profile_out.clone(),
            )
        };
        let mut written = Vec::new();
        if let Some(p) = trace_path {
            crate::trace::write_chrome_trace(&p)?;
            written.push(p);
        }
        if let Some(p) = metrics_path {
            crate::trace::write_metrics_json(&p)?;
            written.push(p);
        }
        if let Some(dest) = profile_out {
            let report = format!(
                "--- region profile (gprof-style) ---\n{}\n--- per-construct breakdown ---\n{}\n\
                 --- per-loop tier residency ---\n{}",
                crate::profile::render_report(),
                crate::profile::render_breakdown(),
                crate::profile::render_tiers(),
            );
            match dest {
                Some(p) => {
                    std::fs::write(&p, report)?;
                    written.push(p);
                }
                None => eprint!("{report}"),
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleKind;

    #[test]
    fn current_falls_back_to_global() {
        let cur = Runtime::current();
        assert!(Arc::ptr_eq(&cur, Runtime::global()));
    }

    #[test]
    fn enter_scopes_nest_and_restore() {
        let a = Runtime::with_config(&RuntimeConfig::default().num_threads(2));
        let b = Runtime::with_config(&RuntimeConfig::default().num_threads(3));
        {
            let _ga = a.enter();
            assert!(Arc::ptr_eq(&Runtime::current(), &a));
            {
                let _gb = b.enter();
                assert!(Arc::ptr_eq(&Runtime::current(), &b));
            }
            assert!(Arc::ptr_eq(&Runtime::current(), &a));
        }
        assert!(Arc::ptr_eq(&Runtime::current(), Runtime::global()));
    }

    #[test]
    fn config_overrides_apply() {
        let rt = Runtime::with_config(
            &RuntimeConfig::default()
                .num_threads(7)
                .run_schedule(Schedule::dynamic(Some(4))),
        );
        assert_eq!(rt.icvs().num_threads(), 7);
        let s = rt.icvs().run_schedule();
        assert_eq!(s.kind, ScheduleKind::Dynamic);
        assert_eq!(s.chunk, Some(4));
    }

    #[test]
    fn critical_registries_are_per_runtime() {
        let a = Runtime::with_config(&RuntimeConfig::default());
        let b = Runtime::with_config(&RuntimeConfig::default());
        let la = a.critical_lock("shared_name");
        let lb = b.critical_lock("shared_name");
        assert!(!Arc::ptr_eq(&la, &lb), "runtimes must not share locks");
        assert!(Arc::ptr_eq(&la, &a.critical_lock("shared_name")));
        // b holding "shared_name" must not block a.
        lb.set();
        assert!(la.test(), "a's lock is independent of b's");
        la.unset();
        lb.unset();
    }

    #[test]
    fn threadprivate_registry_is_typed_and_per_runtime() {
        let a = Runtime::with_config(&RuntimeConfig::default());
        let b = Runtime::with_config(&RuntimeConfig::default());
        let ta = a.threadprivate("x", || 1i64);
        let tb = b.threadprivate("x", || 2i64);
        assert!(!Arc::ptr_eq(&ta, &tb));
        assert_eq!(ta.get(), 1);
        assert_eq!(tb.get(), 2);
        // Same runtime + same key → same storage.
        assert!(Arc::ptr_eq(&ta, &a.threadprivate("x", || 99i64)));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn threadprivate_type_confusion_panics() {
        let rt = Runtime::with_config(&RuntimeConfig::default());
        let _ = rt.threadprivate("y", || 1i64);
        let _ = rt.threadprivate("y", || 1.0f64);
    }

    #[test]
    fn fork_binds_runtime_on_all_team_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let rt = Runtime::with_config(&RuntimeConfig::default().num_threads(3));
        let hits = AtomicUsize::new(0);
        rt.fork_call(Parallel::new(), |ctx| {
            assert_eq!(ctx.num_threads(), 3);
            assert!(Arc::ptr_eq(&Runtime::current(), ctx.runtime()));
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }
}
