//! `ExecConfig`: one shared builder for the execution flags every driver
//! accepts.
//!
//! `zag`, `npb-run`, `vm-bench`, `tier-bench`, and the `zagd` service all
//! take the same knobs — optimization level, backend, team size, schedule,
//! safety mode, trace/metrics sinks, lint gating — and until this module
//! each binary re-implemented the parsing. [`ExecConfig`] centralises it:
//! a CLI feeds `argv` through [`ExecConfig::parse_flag`] and keeps its
//! binary-specific flags in its own `match`; a service fills the fields
//! directly from a request body. Either way, [`ExecConfig::make_runtime`]
//! turns the result into an isolated per-instance [`Runtime`], and
//! [`ExecConfig::apply_global`] applies it to the default global runtime
//! (the classic single-program CLI behaviour).
//!
//! The backend/opt fields are deliberately plain (`BackendSel`, `u8`): this
//! crate sits below `zomp-vm`, so the VM converts them to its own `Backend`
//! and `OptLevel` types at the boundary.

use std::sync::Arc;

use crate::icv::parse_omp_schedule;
use crate::runtime::{Runtime, RuntimeConfig};
use crate::safety::SafetyMode;
use crate::schedule::Schedule;

/// Which execution backend to use, as named on the command line. The VM
/// crate maps this onto its `Backend` enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSel {
    /// The tree-walking differential oracle.
    Ast,
    /// The register bytecode VM.
    Bytecode,
    /// Bytecode plus precompiled native bulk kernels (implies `--opt=3`).
    Native,
}

impl BackendSel {
    /// Parse a CLI spelling (`ast` | `bytecode` | `native`).
    pub fn parse(s: &str) -> Option<BackendSel> {
        match s {
            "ast" => Some(BackendSel::Ast),
            "bytecode" => Some(BackendSel::Bytecode),
            "native" => Some(BackendSel::Native),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendSel::Ast => "ast",
            BackendSel::Bytecode => "bytecode",
            BackendSel::Native => "native",
        }
    }
}

/// How `--check` findings gate execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// Default run mode: print findings as warnings, then execute.
    #[default]
    Warn,
    /// `--check`: report findings and exit without executing.
    Report,
    /// `--check=deny`: report findings; any finding refuses compilation
    /// with a non-zero exit.
    Deny,
}

/// The shared execution configuration. All fields are optional overrides;
/// unset fields keep the consumer's defaults.
#[derive(Debug, Clone, Default)]
pub struct ExecConfig {
    /// `--backend ast|bytecode|native`.
    pub backend: Option<BackendSel>,
    /// `--opt 0|1|2|3`.
    pub opt: Option<u8>,
    /// `--threads N` (initial `nthreads-var`).
    pub threads: Option<usize>,
    /// `--schedule kind[,chunk]` (initial `run-sched-var`).
    pub schedule: Option<Schedule>,
    /// `--safety debug|production|paranoid`.
    pub safety: Option<SafetyMode>,
    /// `--trace FILE`: Chrome trace sink.
    pub trace_path: Option<String>,
    /// `--metrics FILE`: counters sink.
    pub metrics_path: Option<String>,
    /// `--check[=deny]`.
    pub check: CheckMode,
}

impl ExecConfig {
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to consume `arg` (pulling any value from `rest`). Returns
    /// `Ok(true)` when the flag belonged to this builder, `Ok(false)` when
    /// the caller should handle it, and `Err` with a message on a malformed
    /// value. Both `--flag value` and `--flag=value` spellings are accepted.
    pub fn parse_flag(
        &mut self,
        arg: &str,
        rest: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, String> {
        fn value(
            flag: &str,
            arg: &str,
            rest: &mut dyn Iterator<Item = String>,
        ) -> Result<String, String> {
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                return Ok(v.to_string());
            }
            rest.next().ok_or_else(|| format!("{flag} needs a value"))
        }

        if arg == "--check" {
            self.check = CheckMode::Report;
            return Ok(true);
        }
        if arg == "--check=deny" {
            self.check = CheckMode::Deny;
            return Ok(true);
        }
        if arg == "--backend" || arg.starts_with("--backend=") {
            let v = value("--backend", arg, rest)?;
            self.backend =
                Some(BackendSel::parse(&v).ok_or_else(|| format!("unknown backend `{v}`"))?);
            return Ok(true);
        }
        if arg == "--opt" || arg.starts_with("--opt=") {
            let v = value("--opt", arg, rest)?;
            let n: u8 = v
                .parse()
                .ok()
                .filter(|&n| n <= 3)
                .ok_or_else(|| format!("bad optimization level `{v}` (expected 0..=3)"))?;
            self.opt = Some(n);
            return Ok(true);
        }
        if arg == "--threads" || arg.starts_with("--threads=") {
            let v = value("--threads", arg, rest)?;
            let n: usize = v
                .parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("bad thread count `{v}`"))?;
            self.threads = Some(n);
            return Ok(true);
        }
        if arg == "--schedule" || arg.starts_with("--schedule=") {
            let v = value("--schedule", arg, rest)?;
            self.schedule = Some(parse_omp_schedule(&v));
            return Ok(true);
        }
        if arg == "--safety" || arg.starts_with("--safety=") {
            let v = value("--safety", arg, rest)?;
            self.safety = Some(match v.as_str() {
                "debug" => SafetyMode::Debug,
                "production" => SafetyMode::Production,
                "paranoid" => SafetyMode::Paranoid,
                _ => return Err(format!("unknown safety mode `{v}`")),
            });
            return Ok(true);
        }
        if arg == "--trace" || arg.starts_with("--trace=") {
            self.trace_path = Some(value("--trace", arg, rest)?);
            return Ok(true);
        }
        if arg == "--metrics" || arg.starts_with("--metrics=") {
            self.metrics_path = Some(value("--metrics", arg, rest)?);
            return Ok(true);
        }
        Ok(false)
    }

    /// The per-instance runtime configuration this config describes.
    /// Nothing is read from the environment: a service applying a request's
    /// `ExecConfig` must not inherit the daemon's `OMP_*`/`ZOMP_*` state.
    pub fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig {
            num_threads: self.threads,
            run_schedule: self.schedule,
            ..RuntimeConfig::default()
        }
    }

    /// Build an isolated [`Runtime`] for this config, with its trace and
    /// metrics sinks attached.
    pub fn make_runtime(&self) -> Arc<Runtime> {
        let rt = Runtime::with_config(&self.runtime_config());
        if let Some(p) = &self.trace_path {
            rt.set_trace_path(p);
        }
        if let Some(p) = &self.metrics_path {
            rt.set_metrics_path(p);
        }
        rt
    }

    /// Apply this config to the process: safety mode and, on the default
    /// global runtime, team size, schedule, and trace/metrics sinks. This is
    /// the classic single-program CLI behaviour (`zag`, `npb-run`, the bench
    /// drivers).
    pub fn apply_global(&self) {
        if let Some(m) = self.safety {
            crate::safety::set_safety_mode(m);
        }
        let rt = Runtime::global();
        if let Some(n) = self.threads {
            rt.icvs().set_num_threads(n);
        }
        if let Some(s) = self.schedule {
            rt.icvs().set_run_schedule(s);
        }
        if let Some(p) = &self.trace_path {
            rt.set_trace_path(p);
        }
        if let Some(p) = &self.metrics_path {
            rt.set_metrics_path(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleKind;

    fn parse_all(args: &[&str]) -> Result<(ExecConfig, Vec<String>), String> {
        let mut cfg = ExecConfig::new();
        let mut leftover = Vec::new();
        let mut it = args.iter().map(|s| s.to_string());
        while let Some(a) = it.next() {
            if !cfg.parse_flag(&a, &mut it)? {
                leftover.push(a);
            }
        }
        Ok((cfg, leftover))
    }

    #[test]
    fn parses_both_spellings() {
        let (cfg, rest) = parse_all(&[
            "--opt",
            "3",
            "--backend=native",
            "--threads=4",
            "--schedule",
            "guided,2",
            "--trace",
            "t.json",
            "--metrics=m.json",
            "--safety",
            "production",
            "--check=deny",
            "prog.zag",
        ])
        .unwrap();
        assert_eq!(cfg.opt, Some(3));
        assert_eq!(cfg.backend, Some(BackendSel::Native));
        assert_eq!(cfg.threads, Some(4));
        let s = cfg.schedule.unwrap();
        assert_eq!(s.kind, ScheduleKind::Guided);
        assert_eq!(s.chunk, Some(2));
        assert_eq!(cfg.trace_path.as_deref(), Some("t.json"));
        assert_eq!(cfg.metrics_path.as_deref(), Some("m.json"));
        assert_eq!(cfg.safety, Some(SafetyMode::Production));
        assert_eq!(cfg.check, CheckMode::Deny);
        assert_eq!(rest, vec!["prog.zag"]);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse_all(&["--opt", "9"]).is_err());
        assert!(parse_all(&["--threads", "0"]).is_err());
        assert!(parse_all(&["--backend", "jit"]).is_err());
        assert!(parse_all(&["--safety", "fast"]).is_err());
        assert!(parse_all(&["--opt"]).is_err());
    }

    #[test]
    fn leaves_foreign_flags_alone() {
        let (cfg, rest) = parse_all(&["--dump-ir", "--opt=1", "x.zag"]).unwrap();
        assert_eq!(cfg.opt, Some(1));
        assert_eq!(rest, vec!["--dump-ir", "x.zag"]);
    }

    #[test]
    fn make_runtime_applies_icvs_without_env() {
        let cfg = ExecConfig {
            threads: Some(6),
            schedule: Some(Schedule::dynamic(Some(3))),
            ..ExecConfig::default()
        };
        let rt = cfg.make_runtime();
        assert_eq!(rt.icvs().num_threads(), 6);
        assert_eq!(rt.icvs().run_schedule().kind, ScheduleKind::Dynamic);
    }
}
