//! The internal `__kmpc_*`-shaped API (the paper's `.omp.internal`
//! namespace).
//!
//! The paper's preprocessor does not target the user-facing `omp_*` API but
//! the *internal* libomp entry points, re-exported to Zig under
//! `.omp.internal` together with generic wrapper helpers (§III-C). This
//! module is that layer: thin, explicitly-named functions matching the
//! libomp contract, used by the `zomp-vm` crate as the lowering target of
//! preprocessed pragmas. Rust applications normally use
//! [`crate::workshare`] instead.
//!
//! Name mapping:
//!
//! | libomp | here |
//! |---|---|
//! | `__kmpc_fork_call` | [`fork_call`] (re-export of [`crate::team::fork_call`]) |
//! | `__kmpc_for_static_init_8` | [`for_static_init`] |
//! | `__kmpc_for_static_fini` | [`for_static_fini`] |
//! | `__kmpc_dispatch_init_8` | [`dispatch_init`] |
//! | `__kmpc_dispatch_next_8` | [`DispatchHandle::next`] |
//! | `__kmpc_barrier` | [`barrier`] |
//! | `__kmpc_critical` / `__kmpc_end_critical` | [`crate::sync::critical_named`] |
//! | `__kmpc_master` | [`crate::team::ThreadCtx::master`] |
//! | `__kmpc_single` | [`crate::team::ThreadCtx::single`] |
//! | reduction helpers | [`crate::reduction::RedCell`] |

use std::ops::Range;
use std::sync::Arc;

use crate::schedule::{
    static_block, ChunkOrigin, DynamicDispatch, GuidedDispatch, LoopBounds, Schedule,
    ScheduleError, ScheduleKind, StaticChunked,
};
use crate::team::{Dispatcher, ThreadCtx};
use crate::trace;

pub use crate::team::fork_call;

/// The per-thread result of `__kmpc_for_static_init`: which *normalised*
/// iteration ranges this thread executes. For the unchunked static schedule
/// this is a single block; for `static,chunk` it is the round-robin chunk
/// sequence (equivalent to libomp's `(lb, ub, stride)` triple).
pub enum StaticIter {
    Block(std::iter::Once<Range<u64>>),
    Chunked(StaticChunked),
}

impl Iterator for StaticIter {
    type Item = Range<u64>;

    fn next(&mut self) -> Option<Range<u64>> {
        match self {
            StaticIter::Block(it) => it.next(),
            StaticIter::Chunked(it) => it.next(),
        }
    }
}

/// `__kmpc_for_static_init`: compute the calling thread's share of a
/// statically scheduled loop. Pure — no team state is touched, exactly as in
/// libomp. Returns a typed [`ScheduleError`] on a non-positive chunk or an
/// invalid `tid`/`nth` pair instead of panicking.
pub fn for_static_init(
    tid: usize,
    nth: usize,
    trip: u64,
    chunk: Option<i64>,
) -> Result<StaticIter, ScheduleError> {
    if nth < 1 || tid >= nth {
        return Err(ScheduleError::BadThread { tid, nth });
    }
    Ok(match chunk {
        None => StaticIter::Block(std::iter::once(static_block(tid, nth, trip))),
        Some(c) => StaticIter::Chunked(StaticChunked::try_new(tid, nth, trip, c)?),
    })
}

/// `__kmpc_for_static_fini` (+ the loop's implicit barrier unless `nowait`).
pub fn for_static_fini(ctx: &ThreadCtx<'_>, nowait: bool) {
    if !nowait {
        ctx.barrier();
    }
}

/// Live handle over a dynamically scheduled loop: the
/// `__kmpc_dispatch_init` result. Dropping without exhausting the iteration
/// space still releases the team slot correctly.
pub struct DispatchHandle<'a, 'b> {
    ctx: &'b ThreadCtx<'a>,
    slot: &'a crate::team::ConstructSlot,
    dispatcher: Arc<Dispatcher>,
    finished: bool,
    /// Trace state: construct-entry timestamp, trip/label for the
    /// `LoopDispatch` span, and the claimed-but-unclosed chunk whose body
    /// runs between `next` calls.
    t0: u64,
    trip: u64,
    label: &'static str,
    pending: Option<(ChunkOrigin, u64, u64, u64)>,
}

/// `__kmpc_dispatch_init`: enter a dynamic/guided/runtime worksharing loop.
///
/// The schedule kind maps to libomp's `kmp_sch_dynamic_chunked`,
/// `kmp_sch_guided_chunked` and `kmp_sch_runtime` respectively; `runtime` is
/// resolved against the ICVs here, at loop entry. A non-positive chunk is a
/// typed [`ScheduleError`] — validated before any team state is touched, so
/// an `Err` leaves no construct slot to release.
pub fn dispatch_init<'a, 'b>(
    ctx: &'b ThreadCtx<'a>,
    sched: Schedule,
    trip: u64,
) -> Result<DispatchHandle<'a, 'b>, ScheduleError> {
    let sched = if sched.kind == ScheduleKind::Runtime {
        ctx.runtime().icvs().run_schedule()
    } else {
        sched
    };
    if let Some(c) = sched.chunk {
        if c < 1 {
            return Err(ScheduleError::NonPositiveChunk(c));
        }
    }
    let (slot, _c) = ctx.enter_construct();
    let nth = ctx.num_threads();
    let t0 = trace::dispatch_begin_ts(true);
    let dispatcher = ctx.slot_dispatcher(slot, || match sched.kind {
        ScheduleKind::Guided => Dispatcher::Guided(GuidedDispatch::new(trip, nth, sched.chunk)),
        _ => Dispatcher::Dynamic(DynamicDispatch::new(trip, nth, sched.chunk)),
    });
    Ok(DispatchHandle {
        ctx,
        slot,
        dispatcher,
        finished: false,
        t0,
        trip,
        label: match sched.kind {
            ScheduleKind::Guided => "guided",
            _ => "dynamic",
        },
        pending: None,
    })
}

#[allow(clippy::should_implement_trait)] // deliberately named after __kmpc_dispatch_next
impl DispatchHandle<'_, '_> {
    /// `__kmpc_dispatch_next`: claim the next chunk of normalised
    /// iterations, or `None` when the loop is exhausted (which releases the
    /// team's construct slot).
    pub fn next(&mut self) -> Option<Range<u64>> {
        if self.finished {
            return None;
        }
        // The previous chunk's body ran between `next` calls: close its
        // trace span before claiming the next one.
        if let Some((origin, start, len, t0)) = self.pending.take() {
            trace::chunk(origin, start, len, t0);
        }
        match self.dispatcher.next_with_origin(self.ctx.thread_num()) {
            Some((r, origin)) => {
                if trace::active() {
                    self.pending =
                        Some((origin, r.start, r.end - r.start, trace::chunk_begin_ts()));
                }
                Some(r)
            }
            None => {
                self.finish();
                None
            }
        }
    }

    fn finish(&mut self) {
        if !self.finished {
            self.finished = true;
            if let Some((origin, start, len, t0)) = self.pending.take() {
                trace::chunk(origin, start, len, t0);
            }
            trace::dispatch_end(self.label, self.trip, true, self.t0);
            self.ctx.finish_construct(self.slot);
        }
    }

    /// `__kmpc_dispatch_fini`: explicit early termination + optional
    /// barrier. Called implicitly on drop (without the barrier).
    pub fn fini(mut self, nowait: bool) {
        self.finish();
        if !nowait {
            self.ctx.barrier();
        }
    }
}

impl Drop for DispatchHandle<'_, '_> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// `__kmpc_barrier`.
pub fn barrier(ctx: &ThreadCtx<'_>) {
    ctx.barrier();
}

/// Helper mirroring the paper's generic `__kmpc_for_static_*` wrapper: run a
/// full statically scheduled loop (init → body → fini) in source-iteration
/// units.
pub fn static_loop<F: FnMut(i64)>(
    ctx: &ThreadCtx<'_>,
    bounds: LoopBounds,
    chunk: Option<i64>,
    nowait: bool,
    mut body: F,
) {
    let trip = bounds.trip_count();
    let t_construct = trace::dispatch_begin_ts(false);
    let iter = for_static_init(ctx.thread_num(), ctx.num_threads(), trip, chunk)
        .unwrap_or_else(|e| panic!("{e}"));
    for r in iter {
        if r.is_empty() {
            continue;
        }
        let t0 = trace::chunk_begin_ts();
        let (start, len) = (r.start, r.end - r.start);
        for i in r {
            body(bounds.iter_value(i));
        }
        trace::chunk(ChunkOrigin::Owned, start, len, t0);
    }
    trace::dispatch_end("static", trip, false, t_construct);
    for_static_fini(ctx, nowait);
}

/// Helper mirroring the paper's generic `__kmpc_dispatch_*` wrapper: run a
/// full dynamically scheduled loop in source-iteration units.
pub fn dispatch_loop<F: FnMut(i64)>(
    ctx: &ThreadCtx<'_>,
    bounds: LoopBounds,
    sched: Schedule,
    nowait: bool,
    mut body: F,
) {
    let trip = bounds.trip_count();
    let mut h = dispatch_init(ctx, sched, trip).unwrap_or_else(|e| panic!("{e}"));
    while let Some(r) = h.next() {
        for i in r {
            body(bounds.iter_value(i));
        }
    }
    h.fini(nowait);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::Parallel;
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

    #[test]
    fn static_init_block_matches_schedule_module() {
        let mut it = for_static_init(1, 4, 100, None).expect("valid static init");
        assert_eq!(it.next(), Some(25..50));
        assert_eq!(it.next(), None);
    }

    #[test]
    fn static_init_chunked_round_robins() {
        let ranges: Vec<_> = for_static_init(0, 2, 10, Some(3))
            .expect("valid static init")
            .collect();
        assert_eq!(ranges, vec![0..3, 6..9]);
    }

    #[test]
    fn dispatch_loop_covers_all_iterations() {
        const N: i64 = 250;
        let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        fork_call(Parallel::new().num_threads(4), |ctx| {
            dispatch_loop(
                ctx,
                LoopBounds::upto(0, N),
                Schedule::dynamic(Some(7)),
                false,
                |i| {
                    hits[i as usize].fetch_add(1, Ordering::SeqCst);
                },
            );
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn static_loop_strided() {
        let sum = AtomicI64::new(0);
        fork_call(Parallel::new().num_threads(3), |ctx| {
            static_loop(ctx, LoopBounds::upto_by(0, 20, 4), None, false, |i| {
                sum.fetch_add(i, Ordering::SeqCst);
            });
        });
        assert_eq!(sum.load(Ordering::SeqCst), 4 + 8 + 12 + 16);
    }

    #[test]
    fn invalid_static_init_parameters_are_typed_errors() {
        use crate::schedule::ScheduleError;
        assert_eq!(
            for_static_init(4, 4, 10, None).err(),
            Some(ScheduleError::BadThread { tid: 4, nth: 4 })
        );
        assert_eq!(
            for_static_init(0, 2, 10, Some(0)).err(),
            Some(ScheduleError::NonPositiveChunk(0))
        );
    }

    #[test]
    fn invalid_dispatch_chunk_is_a_typed_error_and_releases_nothing() {
        use crate::schedule::ScheduleError;
        fork_call(Parallel::new().num_threads(2), |ctx| {
            let err = dispatch_init(ctx, Schedule::dynamic(Some(-3)), 10).err();
            assert_eq!(err, Some(ScheduleError::NonPositiveChunk(-3)));
            ctx.barrier();
            // The team must be fully usable afterwards.
            dispatch_loop(
                ctx,
                LoopBounds::upto(0, 8),
                Schedule::dynamic(None),
                false,
                |_| {},
            );
        });
    }

    #[test]
    fn abandoned_dispatch_handle_releases_slot() {
        // A thread taking only the first chunk then dropping the handle must
        // not wedge subsequent constructs.
        fork_call(Parallel::new().num_threads(2), |ctx| {
            {
                let mut h =
                    dispatch_init(ctx, Schedule::dynamic(Some(1)), 4).expect("valid dispatch");
                let _ = h.next();
                // handle dropped here without exhaustion
            }
            ctx.barrier();
            // A later construct on the same ring must still work.
            dispatch_loop(
                ctx,
                LoopBounds::upto(0, 8),
                Schedule::dynamic(None),
                false,
                |_| {},
            );
        });
    }
}
