//! Deprecated: the user-facing API moved to [`crate::omp`].
//!
//! `zomp::api` was the original home of the paper's `std.omp` namespace
//! (§III-C, Listing 7). The canonical module is now [`crate::omp`], which
//! also re-exports [`Schedule`](crate::schedule::Schedule); every function
//! here is a thin `#[deprecated]` wrapper kept so existing embedders keep
//! compiling. Migrate `zomp::api::f()` to `zomp::omp::f()`.

use crate::schedule::Schedule;

#[deprecated(note = "use zomp::omp::get_thread_num")]
pub fn get_thread_num() -> usize {
    crate::omp::get_thread_num()
}

#[deprecated(note = "use zomp::omp::get_num_threads")]
pub fn get_num_threads() -> usize {
    crate::omp::get_num_threads()
}

#[deprecated(note = "use zomp::omp::get_max_threads")]
pub fn get_max_threads() -> usize {
    crate::omp::get_max_threads()
}

#[deprecated(note = "use zomp::omp::set_num_threads")]
pub fn set_num_threads(n: usize) {
    crate::omp::set_num_threads(n)
}

#[deprecated(note = "use zomp::omp::get_num_procs")]
pub fn get_num_procs() -> usize {
    crate::omp::get_num_procs()
}

#[deprecated(note = "use zomp::omp::in_parallel")]
pub fn in_parallel() -> bool {
    crate::omp::in_parallel()
}

#[deprecated(note = "use zomp::omp::get_level")]
pub fn get_level() -> usize {
    crate::omp::get_level()
}

#[deprecated(note = "use zomp::omp::get_dynamic")]
pub fn get_dynamic() -> bool {
    crate::omp::get_dynamic()
}

#[deprecated(note = "use zomp::omp::set_dynamic")]
pub fn set_dynamic(v: bool) {
    crate::omp::set_dynamic(v)
}

#[deprecated(note = "use zomp::omp::get_schedule")]
pub fn get_schedule() -> Schedule {
    crate::omp::get_schedule()
}

#[deprecated(note = "use zomp::omp::set_schedule")]
pub fn set_schedule(s: Schedule) {
    crate::omp::set_schedule(s)
}

#[deprecated(note = "use zomp::omp::get_wtime")]
pub fn get_wtime() -> f64 {
    crate::omp::get_wtime()
}

#[deprecated(note = "use zomp::omp::get_wtick")]
pub fn get_wtick() -> f64 {
    crate::omp::get_wtick()
}
