//! OMPT-style runtime observability: per-thread event tracing, scheduler
//! and barrier counters, and Chrome-trace / JSON exporters.
//!
//! OpenMP exposes runtime introspection through the OMPT tool interface:
//! a tool registers callbacks and the runtime reports fork/join, dispatch
//! and synchronisation activity. This module is that layer for zomp,
//! designed around the constraint the paper's §VI profiling proposal
//! implies ("similar to that of gprof" — always compiled in, negligible
//! when off):
//!
//! * **Disabled path**: one relaxed load of a mode byte ([`mode`]). No
//!   timestamps, no allocation, no locks.
//! * **Enabled path**: events go to *lock-free per-thread rings* —
//!   cache-line padded, fixed capacity ([`RING_CAP`]), owner-only writes
//!   published with a single release store. A full ring drops new events
//!   and counts them ([`MetricsSnapshot::events_dropped`]); earlier events
//!   are never corrupted.
//! * **Counters**: per-thread relaxed counters (chunks owned vs stolen,
//!   steal failures, barrier spin vs park resolutions, dispatch init/fini
//!   calls, …) folded into a [`MetricsSnapshot`] on demand.
//! * **Callbacks**: an OMPT-flavoured [`Probe`] stream
//!   (`ParallelBegin/End`, `LoopDispatch`, `ChunkAcquired`,
//!   `BarrierEnter/Exit`, `ReductionCombine`, `TaskWait`) for tools that
//!   want live events instead of post-mortem rings.
//!
//! Two exporters: [`chrome_trace_json`] emits the Chrome Trace Event
//! Format (load the file in `chrome://tracing` or Perfetto: one row per OS
//! thread, one slice per region / loop / chunk / barrier wait), and
//! [`metrics_json`] dumps the counter snapshot. Both are also reachable
//! without code changes through the `ZOMP_TRACE=<path>` and
//! `ZOMP_METRICS=<path>` environment variables (see [`init_from_env`] /
//! [`finish`], called by the shipped binaries).
//!
//! Events are recorded as *complete spans* (begin time + duration) rather
//! than begin/end pairs: a span is written once, at its end, by the thread
//! that owns it — so concurrent teams on the shared worker pool can never
//! interleave half-open pairs, and the Chrome exporter maps each record to
//! one `"ph":"X"` slice with no matching step.

use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use crate::pad::CachePadded;
use crate::schedule::ChunkOrigin;

// ---------------------------------------------------------------------------
// Mode
// ---------------------------------------------------------------------------

/// Mode bit: aggregate per-thread counters ([`metrics`]).
pub const COUNTERS: u8 = 1;
/// Mode bit: record events into the per-thread rings (exporters, profile).
pub const EVENTS: u8 = 2;
/// Mode bit: invoke registered [`Probe`] callbacks.
pub const CALLBACKS: u8 = 4;

/// The global observability mode byte. Relaxed everywhere: it is an
/// independent on/off switch; recorded data is ordered by the rings' own
/// release/acquire edges.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Current mode bits — **the** disabled-path check: a single relaxed load.
#[inline]
pub fn mode() -> u8 {
    MODE.load(Ordering::Relaxed)
}

/// Is any instrumentation active?
#[inline]
pub fn active() -> bool {
    mode() != 0
}

/// Turn on aggregate counters.
pub fn enable_counters() {
    MODE.fetch_or(COUNTERS, Ordering::Relaxed);
}

/// Turn on event recording (implies nothing else; most users want
/// counters too — [`crate::profile::enable`] sets both).
pub fn enable_events() {
    MODE.fetch_or(EVENTS, Ordering::Relaxed);
}

/// Turn off the given mode bits (recorded data is kept).
pub fn disable(bits: u8) {
    MODE.fetch_and(!bits, Ordering::Relaxed);
}

/// Turn everything off (recorded data is kept).
pub fn disable_all() {
    MODE.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the first observability call of the process. Never 0,
/// so 0 can serve as the "was disabled at begin" sentinel in span guards.
#[inline]
pub fn now_ns() -> u64 {
    (epoch().elapsed().as_nanos() as u64).max(1)
}

/// [`now_ns`] when any instrumentation is on, else the 0 sentinel. The
/// `*_end` helpers skip event/callback emission for sentinel begins (the
/// mode flipped mid-span), keeping spans internally consistent.
#[inline]
pub(crate) fn stamp() -> u64 {
    if mode() == 0 {
        0
    } else {
        now_ns()
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What a recorded span measures. The payload words `a`/`b` are
/// kind-specific (team size, chunk bounds, parked flag, trip count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A parallel region on its master thread (`a` = team size).
    Parallel,
    /// A parallel region's outlined body on a worker thread (`a` = team
    /// size). Split from [`EventKind::Parallel`] so region invocation
    /// counts don't multiply by the team size.
    Implicit,
    /// The master waiting on the join latch (`__kmpc_fork_call`'s join).
    TaskWait,
    /// One worksharing-loop construct on one thread, from init to fini
    /// (`a` = trip count). Chunk spans nest inside; the difference is
    /// dispatch overhead.
    LoopDispatch,
    /// Executing one chunk claimed from the thread's own deck slot
    /// (`a` = first iteration, `b` = length).
    ChunkOwned,
    /// Executing one chunk stolen from a victim's deck (`a`/`b` as above).
    ChunkStolen,
    /// Waiting in a barrier (`a` = 1 if the wait parked on the condvar,
    /// 0 if it resolved while spinning).
    BarrierWait,
    /// One atomic merge into a reduction cell.
    ReductionCombine,
    /// One native bulk-kernel execution (`--opt=3` tier): `a` = iterations
    /// completed natively, `b` = 1 if the kernel bailed back to the
    /// interpreter mid-loop. Labelled with the worksharing pragma's
    /// `unit:line` (falling back to the kernel shape name).
    BulkLoop,
    /// A kernel bail, recorded alongside its [`EventKind::BulkLoop`] span:
    /// the label is the machine-readable reason, `a` = the loop-head pc,
    /// `b` = iterations completed before the bail.
    KernelBail,
    /// A quickened instruction deoptimised back to its generic form
    /// (`a` = pc). The label names the rewrite, e.g. `"index.f->index"`.
    Deopt,
    /// A generic instruction quickened to a typed variant (`a` = pc). The
    /// label names the rewrite, e.g. `"index->index.f"`.
    Quicken,
}

impl EventKind {
    /// Short name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Parallel => "parallel",
            EventKind::Implicit => "implicit task",
            EventKind::TaskWait => "task wait",
            EventKind::LoopDispatch => "loop",
            EventKind::ChunkOwned => "chunk (owned)",
            EventKind::ChunkStolen => "chunk (stolen)",
            EventKind::BarrierWait => "barrier wait",
            EventKind::ReductionCombine => "reduction",
            EventKind::BulkLoop => "bulk loop",
            EventKind::KernelBail => "kernel bail",
            EventKind::Deopt => "deopt",
            EventKind::Quicken => "quicken",
        }
    }
}

/// One recorded span. `Copy` so ring slots need no drop glue; labels are
/// interned `&'static str` ([`intern`]).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub kind: EventKind,
    /// Span start, [`now_ns`] units.
    pub t_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u64,
    pub b: u64,
    /// Construct label (region `file:line`, schedule kind, …); `""` if
    /// none.
    pub label: &'static str,
}

const EMPTY_EVENT: Event = Event {
    kind: EventKind::Parallel,
    t_ns: 0,
    dur_ns: 0,
    a: 0,
    b: 0,
    label: "",
};

/// Fixed capacity of each per-thread event ring. Once full, new events are
/// dropped and counted; earlier events stay intact (`len` is monotonic, so
/// a published slot is never rewritten).
pub const RING_CAP: usize = 1 << 13;

/// Per-thread aggregate counters. Owner-incremented with relaxed RMWs (the
/// owner is the only writer; readers fold racily-but-monotonically).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub regions: AtomicU64,
    pub chunks_owned: AtomicU64,
    pub chunks_stolen: AtomicU64,
    pub iters_owned: AtomicU64,
    pub iters_stolen: AtomicU64,
    pub steal_failures: AtomicU64,
    pub barrier_waits: AtomicU64,
    pub barrier_spins: AtomicU64,
    pub barrier_parks: AtomicU64,
    pub dispatch_inits: AtomicU64,
    pub dispatch_finis: AtomicU64,
    pub reductions: AtomicU64,
    pub task_waits: AtomicU64,
    pub kernel_enters: AtomicU64,
    pub kernel_iters: AtomicU64,
    pub kernel_bails: AtomicU64,
    pub deopts: AtomicU64,
    pub quickens: AtomicU64,
}

/// One OS thread's event ring + counters, padded so neighbouring threads'
/// hot words never share a cache line.
pub(crate) struct ThreadRing {
    /// Slots `[0, len)` are published. Written only by the owning thread;
    /// a slot is written exactly once, *before* the `len` release store
    /// that publishes it, and `len` never decreases — so readers that
    /// acquire `len` see fully initialised, immutable events.
    events: Box<[UnsafeCell<Event>]>,
    /// Publication cursor (release store by owner, acquire load by
    /// readers). Saturates at [`RING_CAP`].
    len: CachePadded<AtomicUsize>,
    /// Read floor: [`reset`] advances it so exporters/reports only fold
    /// events recorded after the last reset. Written by readers only.
    start: AtomicUsize,
    /// Events refused because the ring was full.
    dropped: AtomicU64,
    counters: CachePadded<Counters>,
    /// OS thread name at registration (exporter row label).
    name: String,
    /// Stable registry index (exporter row id).
    seq: usize,
}

// SAFETY: `events[i]` is written once by the owner before the release
// store of `len = i + 1`, and never rewritten (`len` is monotonic; `start`
// only moves the read floor). Readers only dereference slots below an
// acquired `len`.
unsafe impl Sync for ThreadRing {}
unsafe impl Send for ThreadRing {}

impl ThreadRing {
    fn new(seq: usize) -> Self {
        let name = std::thread::current()
            .name()
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!("thread-{seq}"));
        ThreadRing {
            events: (0..RING_CAP)
                .map(|_| UnsafeCell::new(EMPTY_EVENT))
                .collect(),
            len: CachePadded::new(AtomicUsize::new(0)),
            start: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            counters: CachePadded::new(Counters::default()),
            name,
            seq,
        }
    }

    /// Owner-only: append one event, or count a drop if full.
    fn push(&self, ev: Event) {
        // Relaxed read of our own previous store.
        let len = self.len.load(Ordering::Relaxed);
        if len >= RING_CAP {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: owner-only write to an unpublished slot.
        unsafe { *self.events[len].get() = ev };
        // Release pairs with readers' acquire of `len`.
        self.len.store(len + 1, Ordering::Release);
    }

    /// Reader: snapshot the published events after the read floor.
    fn snapshot(&self) -> Vec<Event> {
        let end = self.len.load(Ordering::Acquire).min(RING_CAP);
        let start = self.start.load(Ordering::Relaxed).min(end);
        (start..end)
            // SAFETY: slots below the acquired `len` are published and
            // immutable (see the `Sync` impl note).
            .map(|i| unsafe { *self.events[i].get() })
            .collect()
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static REG: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static RING: std::cell::RefCell<Option<Arc<ThreadRing>>> =
        const { std::cell::RefCell::new(None) };
}

/// Run `f` with the calling thread's ring, registering it on first use.
/// The registration mutex is taken once per thread lifetime, never on the
/// per-event path.
fn with_ring<R>(f: impl FnOnce(&ThreadRing) -> R) -> R {
    RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            let mut reg = registry().lock();
            let ring = Arc::new(ThreadRing::new(reg.len()));
            reg.push(Arc::clone(&ring));
            *slot = Some(ring);
        }
        f(slot.as_ref().unwrap())
    })
}

#[inline]
fn record(ev: Event) {
    with_ring(|r| r.push(ev));
}

#[inline]
fn count(f: impl Fn(&Counters)) {
    with_ring(|r| f(&r.counters));
}

/// All rings' events (after their read floors), tagged with the ring's
/// display row. Used by the exporters and [`crate::profile`].
pub(crate) fn all_events() -> Vec<(usize, String, Vec<Event>)> {
    let rings: Vec<Arc<ThreadRing>> = registry().lock().clone();
    rings
        .iter()
        .map(|r| (r.seq, r.name.clone(), r.snapshot()))
        .collect()
}

/// Forget recorded events and zero the counters. Ring capacity already
/// consumed stays consumed (slots are write-once); only the read floor
/// moves. Counter zeroing is racy against concurrently running teams —
/// call between regions, as the tests and binaries do.
pub fn reset() {
    let rings: Vec<Arc<ThreadRing>> = registry().lock().clone();
    for r in rings {
        let len = r.len.load(Ordering::Acquire).min(RING_CAP);
        r.start.store(len, Ordering::Relaxed);
        r.dropped.store(0, Ordering::Relaxed);
        let c = &r.counters;
        for a in [
            &c.regions,
            &c.chunks_owned,
            &c.chunks_stolen,
            &c.iters_owned,
            &c.iters_stolen,
            &c.steal_failures,
            &c.barrier_waits,
            &c.barrier_spins,
            &c.barrier_parks,
            &c.dispatch_inits,
            &c.dispatch_finis,
            &c.reductions,
            &c.task_waits,
            &c.kernel_enters,
            &c.kernel_iters,
            &c.kernel_bails,
            &c.deopts,
            &c.quickens,
        ] {
            a.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Label interning
// ---------------------------------------------------------------------------

/// Intern a label so events (which are `Copy`) can carry it as
/// `&'static str`. Interning is cold-path only (region entry with tracing
/// on, front-end label resolution); repeated labels cost one hash lookup.
pub fn intern(s: &str) -> &'static str {
    static SET: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let set = SET.get_or_init(|| Mutex::new(HashSet::new()));
    let mut g = set.lock();
    if let Some(&hit) = g.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    g.insert(leaked);
    leaked
}

/// `file:line` label for a caller location, cached per location so hot
/// regions don't re-format. Backs the `#[track_caller]` auto-labels of
/// [`crate::team::fork_call`].
pub fn location_label(loc: &'static std::panic::Location<'static>) -> &'static str {
    static CACHE: OnceLock<Mutex<HashMap<(usize, u32), &'static str>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (loc.file().as_ptr() as usize, loc.line());
    let mut g = cache.lock();
    if let Some(&hit) = g.get(&key) {
        return hit;
    }
    let label = intern(&format!("{}:{}", loc.file(), loc.line()));
    g.insert(key, label);
    label
}

// ---------------------------------------------------------------------------
// Callbacks (the OMPT-flavoured tool interface)
// ---------------------------------------------------------------------------

/// A live runtime event, delivered to registered callbacks. Mirrors the
/// OMPT callback set the paper's runtime would need:
/// `ompt_callback_parallel_begin/end`, `ompt_callback_work`,
/// `ompt_callback_dispatch`, `ompt_callback_sync_region`.
#[derive(Debug, Clone, Copy)]
pub enum Probe<'a> {
    ParallelBegin {
        label: &'a str,
        threads: usize,
    },
    ParallelEnd {
        label: &'a str,
        threads: usize,
        dur_ns: u64,
    },
    LoopDispatch {
        trip: u64,
        dur_ns: u64,
    },
    ChunkAcquired {
        start: u64,
        len: u64,
        stolen: bool,
    },
    BarrierEnter,
    BarrierExit {
        parked: bool,
        wait_ns: u64,
    },
    ReductionCombine,
    TaskWait {
        wait_ns: u64,
    },
    /// One native bulk-kernel run (`ompt_callback_work`-flavoured): how
    /// many iterations ran natively, and the bail reason when the kernel
    /// handed the loop back to the interpreter mid-flight.
    Kernel {
        label: &'a str,
        iters: u64,
        bail: Option<&'a str>,
        dur_ns: u64,
    },
    /// A quickened instruction rewrote itself back to its generic form.
    Deopt {
        rewrite: &'a str,
        pc: u32,
    },
}

type Callback = Arc<dyn Fn(&Probe<'_>) + Send + Sync>;

/// Registered callbacks, published as a leaked immutable vector so the
/// enabled path is a relaxed pointer load — registration replaces the
/// whole vector (bounded leak: tools register a handful of callbacks once).
static CALLBACK_LIST: AtomicPtr<Vec<Callback>> = AtomicPtr::new(std::ptr::null_mut());

/// Register a callback and turn the [`CALLBACKS`] mode bit on.
pub fn register_callback(cb: impl Fn(&Probe<'_>) + Send + Sync + 'static) {
    let _publish = callbacks_lock().lock();
    let old = CALLBACK_LIST.load(Ordering::Acquire);
    let mut list: Vec<Callback> = if old.is_null() {
        Vec::new()
    } else {
        // SAFETY: published vectors are leaked and never freed.
        unsafe { (*old).clone() }
    };
    list.push(Arc::new(cb));
    let leaked = Box::into_raw(Box::new(list));
    CALLBACK_LIST.store(leaked, Ordering::Release);
    MODE.fetch_or(CALLBACKS, Ordering::Relaxed);
}

/// Drop all callbacks and clear the [`CALLBACKS`] bit.
pub fn clear_callbacks() {
    let _publish = callbacks_lock().lock();
    MODE.fetch_and(!CALLBACKS, Ordering::Relaxed);
    CALLBACK_LIST.store(std::ptr::null_mut(), Ordering::Release);
}

fn callbacks_lock() -> &'static Mutex<()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    L.get_or_init(|| Mutex::new(()))
}

#[inline]
fn fire(probe: Probe<'_>) {
    let p = CALLBACK_LIST.load(Ordering::Acquire);
    if p.is_null() {
        return;
    }
    // SAFETY: published vectors are leaked and never freed or mutated.
    for cb in unsafe { (*p).iter() } {
        cb(&probe);
    }
}

// ---------------------------------------------------------------------------
// Instrumentation entry points (called from the runtime hot paths)
// ---------------------------------------------------------------------------
//
// Shape: a `*_begin` helper returns a timestamp (0 when instrumentation is
// off — one relaxed load), the matching `*_end`/span helper checks the
// mode once more and records counters / events / callbacks as enabled.
// Counters never need the begin timestamp; events and callbacks skip
// sentinel (0) begins so a mid-span mode flip cannot fabricate a span
// stretching back to the epoch.

/// Region entry. Fires [`Probe::ParallelBegin`].
pub fn region_begin(label: &'static str, threads: usize) -> u64 {
    let m = mode();
    if m == 0 {
        return 0;
    }
    if m & CALLBACKS != 0 {
        fire(Probe::ParallelBegin { label, threads });
    }
    now_ns()
}

/// Region exit on any participating thread; `master` distinguishes the
/// [`EventKind::Parallel`] span (one per region) from the per-worker
/// [`EventKind::Implicit`] spans.
pub fn region_end(label: &'static str, threads: usize, master: bool, t0: u64) {
    let m = mode();
    if m == 0 {
        return;
    }
    if m & COUNTERS != 0 && master {
        count(|c| {
            c.regions.fetch_add(1, Ordering::Relaxed);
        });
    }
    if t0 == 0 {
        return;
    }
    let dur = now_ns().saturating_sub(t0);
    if m & EVENTS != 0 {
        record(Event {
            kind: if master {
                EventKind::Parallel
            } else {
                EventKind::Implicit
            },
            t_ns: t0,
            dur_ns: dur,
            a: threads as u64,
            b: 0,
            label,
        });
    }
    if m & CALLBACKS != 0 && master {
        fire(Probe::ParallelEnd {
            label,
            threads,
            dur_ns: dur,
        });
    }
}

/// Worksharing-construct entry (`__kmpc_dispatch_init` /
/// `__kmpc_for_static_init` shaped). `dynamic` selects the dispatch-init
/// counter (static partitioning has no dispatcher to initialise).
pub fn dispatch_begin_ts(dynamic: bool) -> u64 {
    let m = mode();
    if m == 0 {
        return 0;
    }
    if m & COUNTERS != 0 && dynamic {
        count(|c| {
            c.dispatch_inits.fetch_add(1, Ordering::Relaxed);
        });
    }
    now_ns()
}

/// Worksharing-construct exit: records the [`EventKind::LoopDispatch`]
/// span (chunk spans nest inside it; the difference is dispatch overhead).
pub fn dispatch_end(label: &'static str, trip: u64, dynamic: bool, t0: u64) {
    let m = mode();
    if m == 0 {
        return;
    }
    if m & COUNTERS != 0 && dynamic {
        count(|c| {
            c.dispatch_finis.fetch_add(1, Ordering::Relaxed);
        });
    }
    if t0 == 0 {
        return;
    }
    let dur = now_ns().saturating_sub(t0);
    if m & EVENTS != 0 {
        record(Event {
            kind: EventKind::LoopDispatch,
            t_ns: t0,
            dur_ns: dur,
            a: trip,
            b: 0,
            label,
        });
    }
    if m & CALLBACKS != 0 {
        fire(Probe::LoopDispatch { trip, dur_ns: dur });
    }
}

/// Timestamp just before a claimed chunk's body runs (0 when events are
/// off — counter-only tracing skips per-chunk clock reads).
#[inline]
pub fn chunk_begin_ts() -> u64 {
    if mode() & (EVENTS | CALLBACKS) == 0 {
        0
    } else {
        now_ns()
    }
}

/// One claimed chunk, after its body ran. Counts it (and its iterations)
/// under its provenance and records the execution span.
pub fn chunk(origin: ChunkOrigin, start: u64, len: u64, t0: u64) {
    let m = mode();
    if m == 0 {
        return;
    }
    if m & COUNTERS != 0 {
        count(|c| match origin {
            ChunkOrigin::Owned => {
                c.chunks_owned.fetch_add(1, Ordering::Relaxed);
                c.iters_owned.fetch_add(len, Ordering::Relaxed);
            }
            ChunkOrigin::Stolen => {
                c.chunks_stolen.fetch_add(1, Ordering::Relaxed);
                c.iters_stolen.fetch_add(len, Ordering::Relaxed);
            }
        });
    }
    if m & CALLBACKS != 0 {
        fire(Probe::ChunkAcquired {
            start,
            len,
            stolen: origin == ChunkOrigin::Stolen,
        });
    }
    if t0 == 0 || m & EVENTS == 0 {
        return;
    }
    record(Event {
        kind: match origin {
            ChunkOrigin::Owned => EventKind::ChunkOwned,
            ChunkOrigin::Stolen => EventKind::ChunkStolen,
        },
        t_ns: t0,
        dur_ns: now_ns().saturating_sub(t0),
        a: start,
        b: len,
        label: "",
    });
}

/// A steal attempt that found no victim with work (dispatch exhaustion
/// probe).
#[inline]
pub fn steal_failure() {
    if mode() & COUNTERS == 0 {
        return;
    }
    count(|c| {
        c.steal_failures.fetch_add(1, Ordering::Relaxed);
    });
}

/// Barrier arrival. Fires [`Probe::BarrierEnter`].
pub fn barrier_begin() -> u64 {
    let m = mode();
    if m == 0 {
        return 0;
    }
    if m & CALLBACKS != 0 {
        fire(Probe::BarrierEnter);
    }
    now_ns()
}

/// Barrier release; `parked` says whether the wait gave up spinning and
/// blocked on the condvar.
pub fn barrier_end(t0: u64, parked: bool) {
    let m = mode();
    if m == 0 {
        return;
    }
    if m & COUNTERS != 0 {
        count(|c| {
            c.barrier_waits.fetch_add(1, Ordering::Relaxed);
            if parked {
                c.barrier_parks.fetch_add(1, Ordering::Relaxed);
            } else {
                c.barrier_spins.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    if t0 == 0 {
        return;
    }
    let dur = now_ns().saturating_sub(t0);
    if m & EVENTS != 0 {
        record(Event {
            kind: EventKind::BarrierWait,
            t_ns: t0,
            dur_ns: dur,
            a: parked as u64,
            b: 0,
            label: "",
        });
    }
    if m & CALLBACKS != 0 {
        fire(Probe::BarrierExit {
            parked,
            wait_ns: dur,
        });
    }
}

/// One atomic merge into a reduction cell (the single root combine of a
/// tree reduction, or a direct [`crate::reduction::RedCell::combine`]).
pub fn reduction_combine(t0: u64) {
    let m = mode();
    if m == 0 {
        return;
    }
    if m & COUNTERS != 0 {
        count(|c| {
            c.reductions.fetch_add(1, Ordering::Relaxed);
        });
    }
    if m & CALLBACKS != 0 {
        fire(Probe::ReductionCombine);
    }
    if t0 == 0 || m & EVENTS == 0 {
        return;
    }
    record(Event {
        kind: EventKind::ReductionCombine,
        t_ns: t0,
        dur_ns: now_ns().saturating_sub(t0),
        a: 0,
        b: 0,
        label: "",
    });
}

/// The master's join wait at region end.
pub fn task_wait(t0: u64) {
    let m = mode();
    if m == 0 {
        return;
    }
    if m & COUNTERS != 0 {
        count(|c| {
            c.task_waits.fetch_add(1, Ordering::Relaxed);
        });
    }
    if t0 == 0 {
        return;
    }
    let dur = now_ns().saturating_sub(t0);
    if m & EVENTS != 0 {
        record(Event {
            kind: EventKind::TaskWait,
            t_ns: t0,
            dur_ns: dur,
            a: 0,
            b: 0,
            label: "",
        });
    }
    if m & CALLBACKS != 0 {
        fire(Probe::TaskWait { wait_ns: dur });
    }
}

/// Timestamp just before a native bulk kernel runs (0 when neither events
/// nor callbacks are on — counter-only tracing skips the clock read, and
/// the disabled path stays one relaxed load).
#[inline]
pub fn kernel_begin_ts() -> u64 {
    if mode() & (EVENTS | CALLBACKS) == 0 {
        0
    } else {
        now_ns()
    }
}

/// One native bulk-kernel execution, after it ran. `iters` is the count of
/// loop iterations the kernel completed natively; `bail` carries the
/// machine-readable reason when it handed the remaining iterations back to
/// the interpreter. Records the [`EventKind::BulkLoop`] span (plus a
/// [`EventKind::KernelBail`] marker on bails) and bumps the
/// kernel enter/iteration/bail counters.
pub fn kernel_end(label: &'static str, pc: u32, iters: u64, bail: Option<&'static str>, t0: u64) {
    let m = mode();
    if m == 0 {
        return;
    }
    if m & COUNTERS != 0 {
        count(|c| {
            c.kernel_enters.fetch_add(1, Ordering::Relaxed);
            c.kernel_iters.fetch_add(iters, Ordering::Relaxed);
            if bail.is_some() {
                c.kernel_bails.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    if m & CALLBACKS != 0 {
        let dur = if t0 == 0 {
            0
        } else {
            now_ns().saturating_sub(t0)
        };
        fire(Probe::Kernel {
            label,
            iters,
            bail,
            dur_ns: dur,
        });
    }
    if t0 == 0 || m & EVENTS == 0 {
        return;
    }
    let dur = now_ns().saturating_sub(t0);
    record(Event {
        kind: EventKind::BulkLoop,
        t_ns: t0,
        dur_ns: dur,
        a: iters,
        b: bail.is_some() as u64,
        label,
    });
    if let Some(reason) = bail {
        record(Event {
            kind: EventKind::KernelBail,
            t_ns: t0,
            dur_ns: dur,
            a: pc as u64,
            b: iters,
            label: reason,
        });
    }
}

/// A quickened instruction deoptimised in place back to its generic form.
/// `rewrite` names the transition (e.g. `"index.f->index"`), `pc` the slot.
pub fn deopt(rewrite: &'static str, pc: u32) {
    let m = mode();
    if m == 0 {
        return;
    }
    if m & COUNTERS != 0 {
        count(|c| {
            c.deopts.fetch_add(1, Ordering::Relaxed);
        });
    }
    if m & CALLBACKS != 0 {
        fire(Probe::Deopt { rewrite, pc });
    }
    if m & EVENTS != 0 {
        let t = now_ns();
        record(Event {
            kind: EventKind::Deopt,
            t_ns: t,
            dur_ns: 0,
            a: pc as u64,
            b: 0,
            label: rewrite,
        });
    }
}

/// A generic instruction quickened itself to a typed variant (runtime
/// specialization hit). `rewrite` names the transition, `pc` the slot.
pub fn quicken(rewrite: &'static str, pc: u32) {
    let m = mode();
    if m == 0 {
        return;
    }
    if m & COUNTERS != 0 {
        count(|c| {
            c.quickens.fetch_add(1, Ordering::Relaxed);
        });
    }
    if m & EVENTS != 0 {
        let t = now_ns();
        record(Event {
            kind: EventKind::Quicken,
            t_ns: t,
            dur_ns: 0,
            a: pc as u64,
            b: 0,
            label: rewrite,
        });
    }
}

// ---------------------------------------------------------------------------
// Metrics snapshot
// ---------------------------------------------------------------------------

/// Aggregated counters across every thread that has touched the runtime
/// since the last [`reset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Parallel regions executed (counted once, on the master).
    pub regions: u64,
    /// Chunks claimed from the thread's own deck slot (plus all static
    /// chunks, which are owned by construction).
    pub chunks_owned: u64,
    /// Chunks obtained by stealing from a victim's deck.
    pub chunks_stolen: u64,
    /// Iterations inside owned chunks.
    pub iters_owned: u64,
    /// Iterations inside stolen chunks.
    pub iters_stolen: u64,
    /// Steal attempts that scanned every victim and found nothing.
    pub steal_failures: u64,
    /// Barrier waits (excluding single-thread no-op barriers).
    pub barrier_waits: u64,
    /// Barrier waits resolved while still spinning.
    pub barrier_spins: u64,
    /// Barrier waits that transitioned to a condvar park.
    pub barrier_parks: u64,
    /// Dynamic/guided dispatch initialisations (`__kmpc_dispatch_init`).
    pub dispatch_inits: u64,
    /// Matching dispatch completions.
    pub dispatch_finis: u64,
    /// Atomic reduction-cell merges.
    pub reductions: u64,
    /// Master join waits.
    pub task_waits: u64,
    /// Native bulk-kernel entries (`--opt=3` tier).
    pub kernel_enters: u64,
    /// Loop iterations executed natively inside bulk kernels.
    pub kernel_iters: u64,
    /// Kernel runs that bailed back to the interpreter mid-loop.
    pub kernel_bails: u64,
    /// Quickened instructions deoptimised in place to their generic forms.
    pub deopts: u64,
    /// Generic instructions quickened to typed variants at runtime.
    pub quickens: u64,
    /// Events currently held in the rings.
    pub events_recorded: u64,
    /// Events dropped because a ring was full.
    pub events_dropped: u64,
    /// Threads that have registered a ring.
    pub threads: u64,
}

/// Fold every thread's counters into one snapshot.
pub fn metrics() -> MetricsSnapshot {
    let rings: Vec<Arc<ThreadRing>> = registry().lock().clone();
    let mut s = MetricsSnapshot {
        threads: rings.len() as u64,
        ..Default::default()
    };
    for r in &rings {
        let c = &r.counters;
        s.regions += c.regions.load(Ordering::Relaxed);
        s.chunks_owned += c.chunks_owned.load(Ordering::Relaxed);
        s.chunks_stolen += c.chunks_stolen.load(Ordering::Relaxed);
        s.iters_owned += c.iters_owned.load(Ordering::Relaxed);
        s.iters_stolen += c.iters_stolen.load(Ordering::Relaxed);
        s.steal_failures += c.steal_failures.load(Ordering::Relaxed);
        s.barrier_waits += c.barrier_waits.load(Ordering::Relaxed);
        s.barrier_spins += c.barrier_spins.load(Ordering::Relaxed);
        s.barrier_parks += c.barrier_parks.load(Ordering::Relaxed);
        s.dispatch_inits += c.dispatch_inits.load(Ordering::Relaxed);
        s.dispatch_finis += c.dispatch_finis.load(Ordering::Relaxed);
        s.reductions += c.reductions.load(Ordering::Relaxed);
        s.task_waits += c.task_waits.load(Ordering::Relaxed);
        s.kernel_enters += c.kernel_enters.load(Ordering::Relaxed);
        s.kernel_iters += c.kernel_iters.load(Ordering::Relaxed);
        s.kernel_bails += c.kernel_bails.load(Ordering::Relaxed);
        s.deopts += c.deopts.load(Ordering::Relaxed);
        s.quickens += c.quickens.load(Ordering::Relaxed);
        let end = r.len.load(Ordering::Acquire).min(RING_CAP);
        let start = r.start.load(Ordering::Relaxed).min(end);
        s.events_recorded += (end - start) as u64;
        s.events_dropped += r.dropped.load(Ordering::Relaxed);
    }
    s
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Minimal JSON string escaping (labels are paths and thread names).
fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render the recorded events in the Chrome Trace Event Format
/// (`chrome://tracing` / Perfetto): one `pid`, one `tid` row per OS
/// thread, one complete (`"ph":"X"`) slice per span, timestamps in
/// microseconds.
pub fn chrome_trace_json() -> String {
    let mut out = String::with_capacity(1 << 16);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push_entry = |entry: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&entry);
    };
    for (seq, name, events) in all_events() {
        let mut meta = format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{seq},\
             \"args\":{{\"name\":\""
        );
        escape(&name, &mut meta);
        meta.push_str("\"}}");
        push_entry(meta, &mut out);
        for ev in events {
            let mut e = String::from("{\"name\":\"");
            if ev.label.is_empty() {
                e.push_str(ev.kind.name());
            } else {
                escape(ev.label, &mut e);
            }
            e.push_str("\",\"cat\":\"");
            e.push_str(ev.kind.name());
            e.push_str(&format!(
                "\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{seq}",
                ev.t_ns as f64 / 1e3,
                ev.dur_ns as f64 / 1e3,
            ));
            let args = match ev.kind {
                EventKind::Parallel | EventKind::Implicit => {
                    format!(",\"args\":{{\"threads\":{}}}", ev.a)
                }
                EventKind::LoopDispatch => format!(",\"args\":{{\"trip\":{}}}", ev.a),
                EventKind::ChunkOwned => {
                    format!(
                        ",\"args\":{{\"start\":{},\"len\":{},\"stolen\":false}}",
                        ev.a, ev.b
                    )
                }
                EventKind::ChunkStolen => {
                    format!(
                        ",\"args\":{{\"start\":{},\"len\":{},\"stolen\":true}}",
                        ev.a, ev.b
                    )
                }
                EventKind::BarrierWait => format!(",\"args\":{{\"parked\":{}}}", ev.a != 0),
                EventKind::BulkLoop => {
                    format!(",\"args\":{{\"iters\":{},\"bailed\":{}}}", ev.a, ev.b != 0)
                }
                EventKind::KernelBail => {
                    format!(",\"args\":{{\"pc\":{},\"iters_done\":{}}}", ev.a, ev.b)
                }
                EventKind::Deopt | EventKind::Quicken => {
                    format!(",\"args\":{{\"pc\":{}}}", ev.a)
                }
                _ => String::new(),
            };
            e.push_str(&args);
            e.push('}');
            push_entry(e, &mut out);
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Render the counter snapshot as machine-readable JSON.
pub fn metrics_json() -> String {
    let s = metrics();
    format!(
        "{{\n  \"threads\": {},\n  \"regions\": {},\n  \"chunks_owned\": {},\n  \
         \"chunks_stolen\": {},\n  \"iters_owned\": {},\n  \"iters_stolen\": {},\n  \
         \"steal_failures\": {},\n  \"barrier_waits\": {},\n  \"barrier_spins\": {},\n  \
         \"barrier_parks\": {},\n  \"dispatch_inits\": {},\n  \"dispatch_finis\": {},\n  \
         \"reductions\": {},\n  \"task_waits\": {},\n  \"kernel_enters\": {},\n  \
         \"kernel_iters\": {},\n  \"kernel_bails\": {},\n  \"deopts\": {},\n  \
         \"quickens\": {},\n  \"events_recorded\": {},\n  \"events_dropped\": {}\n}}\n",
        s.threads,
        s.regions,
        s.chunks_owned,
        s.chunks_stolen,
        s.iters_owned,
        s.iters_stolen,
        s.steal_failures,
        s.barrier_waits,
        s.barrier_spins,
        s.barrier_parks,
        s.dispatch_inits,
        s.dispatch_finis,
        s.reductions,
        s.task_waits,
        s.kernel_enters,
        s.kernel_iters,
        s.kernel_bails,
        s.deopts,
        s.quickens,
        s.events_recorded,
        s.events_dropped,
    )
}

/// Write [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

/// Write [`metrics_json`] to `path`.
pub fn write_metrics_json(path: &str) -> std::io::Result<()> {
    std::fs::write(path, metrics_json())
}

// ---------------------------------------------------------------------------
// Environment activation
// ---------------------------------------------------------------------------

// The output-path table moved into [`crate::runtime::Runtime`]: each runtime
// owns its trace/metrics/profile sinks, so a multi-tenant host can route
// different programs' artefacts to different files. The functions below are
// the historical free-function surface, now thin wrappers over
// [`crate::runtime::Runtime::current`] (the default global instance for
// standalone binaries).

/// Route the Chrome trace to `path` when [`finish`] runs, enabling event
/// recording (programmatic equivalent of `ZOMP_TRACE=<path>`). Applies to
/// the current [`crate::runtime::Runtime`].
pub fn set_trace_path(path: &str) {
    crate::runtime::Runtime::current().set_trace_path(path);
}

/// Route the metrics dump to `path` when [`finish`] runs, enabling
/// counters (programmatic equivalent of `ZOMP_METRICS=<path>`). Applies to
/// the current [`crate::runtime::Runtime`].
pub fn set_metrics_path(path: &str) {
    crate::runtime::Runtime::current().set_metrics_path(path);
}

/// Route the rendered profile report (regions, per-construct breakdown,
/// per-loop tier residency) to `path` — or stderr when `None` — when
/// [`finish`] runs. Enables profiling (programmatic equivalent of
/// `ZOMP_PROFILE=1` / `ZOMP_PROFILE=<path>`). Applies to the current
/// [`crate::runtime::Runtime`].
pub fn set_profile_out(path: Option<&str>) {
    crate::runtime::Runtime::current().set_profile_out(path);
}

/// Read `ZOMP_TRACE` / `ZOMP_METRICS` and activate the matching
/// instrumentation — at most once per *runtime*, not per process
/// ([`crate::runtime::Runtime::init_sinks_from_env`]). Called lazily by
/// [`crate::team::fork_call`]; a `fn main` that wants the files written
/// must call [`finish`] before exiting (the shipped binaries do).
pub fn init_from_env() {
    crate::runtime::Runtime::current().init_sinks_from_env();
}

/// Write any outputs configured on the current runtime via env vars or
/// `set_*_path`. Returns the paths written.
pub fn finish() -> std::io::Result<Vec<String>> {
    crate::runtime::Runtime::current().finish()
}

// ---------------------------------------------------------------------------
// Test support
// ---------------------------------------------------------------------------

/// Serialises tests that toggle the process-global mode byte (profile
/// tests, trace tests). parking_lot mutexes do not poison, so a panicking
/// test cannot wedge the rest.
#[cfg(test)]
pub(crate) fn test_serial() -> parking_lot::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD.get_or_init(|| Mutex::new(())).lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_is_zero_and_stamps_sentinel() {
        let _g = test_serial();
        disable_all();
        assert_eq!(mode(), 0);
        assert_eq!(stamp(), 0);
        assert_eq!(region_begin("x", 4), 0);
        // End helpers on sentinel begins must not record.
        let before = metrics().events_recorded;
        region_end("x", 4, true, 0);
        barrier_end(0, false);
        assert_eq!(metrics().events_recorded, before);
    }

    #[test]
    fn counters_and_events_fold_into_snapshot() {
        let _g = test_serial();
        disable_all();
        reset();
        enable_counters();
        enable_events();
        let t0 = chunk_begin_ts();
        assert!(t0 > 0);
        chunk(ChunkOrigin::Owned, 0, 10, t0);
        chunk(ChunkOrigin::Stolen, 10, 5, chunk_begin_ts());
        steal_failure();
        let t = barrier_begin();
        barrier_end(t, true);
        disable_all();
        let m = metrics();
        assert_eq!(m.chunks_owned, 1);
        assert_eq!(m.chunks_stolen, 1);
        assert_eq!(m.iters_owned, 10);
        assert_eq!(m.iters_stolen, 5);
        assert_eq!(m.steal_failures, 1);
        assert_eq!(m.barrier_waits, 1);
        assert_eq!(m.barrier_parks, 1);
        assert_eq!(m.barrier_spins, 0);
        assert!(m.events_recorded >= 3);
        reset();
        assert_eq!(metrics().chunks_owned, 0);
    }

    #[test]
    fn ring_overflow_drops_new_events_and_keeps_old() {
        let _g = test_serial();
        disable_all();
        reset();
        enable_events();
        // This thread's ring: fill it past capacity.
        let base_dropped = with_ring(|r| r.dropped.load(Ordering::Relaxed));
        let first_len = with_ring(|r| r.len.load(Ordering::Relaxed));
        for i in 0..(RING_CAP + 100) as u64 {
            record(Event {
                kind: EventKind::ChunkOwned,
                t_ns: i + 1,
                dur_ns: 1,
                a: i,
                b: 1,
                label: "",
            });
        }
        disable_all();
        let (len, dropped, snap) = with_ring(|r| {
            (
                r.len.load(Ordering::Relaxed),
                r.dropped.load(Ordering::Relaxed),
                r.snapshot(),
            )
        });
        assert_eq!(len, RING_CAP, "ring saturates at capacity");
        assert!(
            dropped - base_dropped >= 100,
            "overflow must be counted: {dropped}"
        );
        // Events written before the overflow are intact: payload `a`
        // still matches the order they were pushed in.
        for (k, ev) in snap.iter().enumerate() {
            let expect = (first_len + k) as u64 - first_len as u64;
            assert_eq!(ev.a, expect, "event {k} corrupted by overflow");
        }
        reset();
    }

    #[test]
    fn callbacks_fire_and_clear() {
        let _g = test_serial();
        disable_all();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        register_callback(move |p| {
            if matches!(p, Probe::BarrierEnter) {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        let t = barrier_begin();
        barrier_end(t, false);
        clear_callbacks();
        let t = barrier_begin();
        barrier_end(t, false);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(mode() & CALLBACKS, 0);
    }

    #[test]
    fn interning_dedupes() {
        let a = intern("some/file.rs:42");
        let b = intern("some/file.rs:42");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn chrome_export_is_balanced_json() {
        let _g = test_serial();
        disable_all();
        reset();
        enable_events();
        let t0 = now_ns();
        record(Event {
            kind: EventKind::Parallel,
            t_ns: t0,
            dur_ns: 10,
            a: 4,
            b: 0,
            label: intern("demo \"region\""),
        });
        disable_all();
        let json = chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("demo \\\"region\\\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Structural sanity: balanced braces/brackets outside strings.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        reset();
    }
}
