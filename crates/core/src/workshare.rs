//! Worksharing loops: the `omp while` (C: `omp for`) implementation.
//!
//! The paper lowers worksharing loops to two families of entry points
//! (§III-B2):
//!
//! * **static** schedules call `__kmpc_for_static_init` once — partitioning
//!   is closed-form, with no team-shared state — iterate, and call
//!   `__kmpc_for_static_fini`;
//! * **dynamic/guided/runtime** schedules call `__kmpc_dispatch_init` and
//!   then grab chunks with `__kmpc_dispatch_next` until exhaustion.
//!
//! [`for_loop`] drives either protocol from inside a region, [`for_reduce`]
//! layers the reduction protocol (thread-local partial initialised to the
//! operator identity, atomically combined at loop end) on top, and
//! [`parallel_for`] / [`parallel_reduce`] fuse a `parallel` region with a
//! single loop — the `parallel while` combined construct.

use crate::reduction::{RedCell, RedOp, Reduce, ReduceTree};
use crate::schedule::{
    static_block, ChunkOrigin, DynamicDispatch, GuidedDispatch, LoopBounds, Schedule, ScheduleKind,
    StaticChunked,
};
use crate::team::{fork_call, Dispatcher, Parallel, ThreadCtx};
use crate::trace;

/// Resolve `schedule(runtime)` against the forking runtime's ICVs at loop
/// entry.
fn resolve_schedule(ctx: &ThreadCtx<'_>, sched: Schedule) -> Schedule {
    if sched.kind == ScheduleKind::Runtime {
        ctx.runtime().icvs().run_schedule()
    } else {
        sched
    }
}

/// Execute a worksharing loop from inside a parallel region.
///
/// `f` is called with the source loop-variable value for each iteration
/// assigned to the calling thread. Unless `nowait`, the team synchronises at
/// loop end (the implicit barrier every worksharing construct carries by
/// default).
pub fn for_loop<B, F>(ctx: &ThreadCtx<'_>, sched: Schedule, bounds: B, nowait: bool, mut f: F)
where
    B: Into<LoopBounds>,
    F: FnMut(i64),
{
    let bounds: LoopBounds = bounds.into();
    let trip = bounds.trip_count();
    let sched = resolve_schedule(ctx, sched);

    match sched.kind {
        ScheduleKind::Static => {
            // Static partitioning has no dispatcher to initialise, but the
            // construct still gets a LoopDispatch trace span with its
            // (all-Owned) chunk spans nested inside.
            let t_construct = trace::dispatch_begin_ts(false);
            match sched.chunk {
                None => {
                    // __kmpc_for_static_init with kmp_sch_static.
                    let r = static_block(ctx.thread_num(), ctx.num_threads(), trip);
                    if !r.is_empty() {
                        let t0 = trace::chunk_begin_ts();
                        let (start, len) = (r.start, r.end - r.start);
                        for i in r {
                            f(bounds.iter_value(i));
                        }
                        trace::chunk(ChunkOrigin::Owned, start, len, t0);
                    }
                }
                Some(chunk) => {
                    // kmp_sch_static_chunked: stride = chunk * nthreads.
                    for r in StaticChunked::new(ctx.thread_num(), ctx.num_threads(), trip, chunk) {
                        let t0 = trace::chunk_begin_ts();
                        let (start, len) = (r.start, r.end - r.start);
                        for i in r {
                            f(bounds.iter_value(i));
                        }
                        trace::chunk(ChunkOrigin::Owned, start, len, t0);
                    }
                }
            }
            trace::dispatch_end("static", trip, false, t_construct);
        }
        ScheduleKind::Dynamic | ScheduleKind::Guided => {
            // __kmpc_dispatch_init / __kmpc_dispatch_next.
            let (slot, _c) = ctx.enter_construct();
            let nth = ctx.num_threads();
            let t_construct = trace::dispatch_begin_ts(true);
            let label = match sched.kind {
                ScheduleKind::Dynamic => "dynamic",
                _ => "guided",
            };
            let dispatcher = ctx.slot_dispatcher(slot, || match sched.kind {
                ScheduleKind::Dynamic => {
                    Dispatcher::Dynamic(DynamicDispatch::new(trip, nth, sched.chunk))
                }
                _ => Dispatcher::Guided(GuidedDispatch::new(trip, nth, sched.chunk)),
            });
            while let Some((r, origin)) = dispatcher.next_with_origin(ctx.thread_num()) {
                let t0 = trace::chunk_begin_ts();
                let (start, len) = (r.start, r.end - r.start);
                for i in r {
                    f(bounds.iter_value(i));
                }
                trace::chunk(origin, start, len, t0);
            }
            drop(dispatcher);
            trace::dispatch_end(label, trip, true, t_construct);
            ctx.finish_construct(slot);
        }
        ScheduleKind::Runtime => unreachable!("resolved above"),
    }

    if !nowait {
        ctx.barrier();
    }
}

/// Worksharing loop with a `reduction` clause.
///
/// Each thread accumulates into a private partial initialised to the
/// operator identity. At loop end the partials are merged through a
/// construct-scoped [`ReduceTree`]: padded per-thread slots combined up a
/// log₄(nth) tree, with a single [`RedCell::combine`] at the root instead of
/// `nth` threads CAS-ing one cell. The (non-`nowait`) barrier then makes the
/// combined value safe to read via [`RedCell::get`].
pub fn for_reduce<B, T, F>(
    ctx: &ThreadCtx<'_>,
    sched: Schedule,
    bounds: B,
    nowait: bool,
    cell: &RedCell<T>,
    mut f: F,
) where
    B: Into<LoopBounds>,
    T: Reduce,
    F: FnMut(i64, &mut T),
{
    let mut local = cell.identity();
    for_loop(ctx, sched, bounds, true, |i| f(i, &mut local));
    let nth = ctx.num_threads();
    if nth == 1 {
        cell.combine(local);
    } else {
        let op = cell.op();
        let (payload, token) =
            ctx.construct_shared(|| std::sync::Arc::new(ReduceTree::<T>::new(op, nth)));
        let tree = payload
            .downcast::<ReduceTree<T>>()
            .expect("construct payload is this loop's reduction tree");
        tree.merge(ctx.thread_num(), local, cell);
        ctx.construct_done(token);
    }
    if !nowait {
        ctx.barrier();
    }
}

/// Combined `parallel while` construct: fork a team and run one worksharing
/// loop over `bounds`.
#[track_caller]
pub fn parallel_for<B, F>(par: Parallel, sched: Schedule, bounds: B, f: F)
where
    B: Into<LoopBounds>,
    F: Fn(i64) + Sync,
{
    let bounds: LoopBounds = bounds.into();
    fork_call(par, |ctx| {
        // The region join is the barrier; nowait avoids a redundant one.
        for_loop(ctx, sched, bounds, true, &f);
    });
}

/// Combined `parallel while reduction(op: acc)` construct. Returns the
/// reduced value (seeded with `init`, per OpenMP semantics where the
/// original variable's value participates in the reduction).
#[track_caller]
pub fn parallel_reduce<B, T, F>(
    par: Parallel,
    sched: Schedule,
    bounds: B,
    init: T,
    op: RedOp,
    f: F,
) -> T
where
    B: Into<LoopBounds>,
    T: Reduce,
    F: Fn(i64, &mut T) + Sync,
{
    let bounds: LoopBounds = bounds.into();
    let cell = RedCell::new(op, init);
    fork_call(par, |ctx| {
        for_reduce(ctx, sched, bounds, true, &cell, |i, acc| f(i, acc));
    });
    cell.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

    fn all_schedules() -> Vec<Schedule> {
        vec![
            Schedule::static_default(),
            Schedule::static_chunked(1),
            Schedule::static_chunked(7),
            Schedule::dynamic(None),
            Schedule::dynamic(Some(5)),
            Schedule::guided(None),
            Schedule::guided(Some(3)),
        ]
    }

    #[test]
    fn every_iteration_exactly_once_all_schedules() {
        const N: usize = 503; // prime, so partitions are ragged
        for sched in all_schedules() {
            let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(Parallel::new().num_threads(4), sched, 0..N as i64, |i| {
                hits[i as usize].fetch_add(1, Ordering::SeqCst);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::SeqCst),
                    1,
                    "iteration {i} ran wrong number of times under {sched:?}"
                );
            }
        }
    }

    #[test]
    fn strided_bounds_visit_correct_values() {
        let sum = AtomicI64::new(0);
        parallel_for(
            Parallel::new().num_threads(3),
            Schedule::static_default(),
            LoopBounds::upto_by(10, 30, 5), // 10 15 20 25
            |i| {
                sum.fetch_add(i, Ordering::SeqCst);
            },
        );
        assert_eq!(sum.load(Ordering::SeqCst), 70);
    }

    #[test]
    fn empty_loop_is_fine() {
        for sched in all_schedules() {
            parallel_for(Parallel::new().num_threads(4), sched, 5..5, |_| {
                panic!("no iterations should run")
            });
        }
    }

    #[test]
    fn reduce_add_matches_serial() {
        let n = 10_000i64;
        for sched in all_schedules() {
            let got = parallel_reduce(
                Parallel::new().num_threads(4),
                sched,
                0..n,
                0i64,
                RedOp::Add,
                |i, acc| *acc += i,
            );
            assert_eq!(got, n * (n - 1) / 2, "under {sched:?}");
        }
    }

    #[test]
    fn reduce_seeds_with_initial_value() {
        let got = parallel_reduce(
            Parallel::new().num_threads(4),
            Schedule::static_default(),
            0..10,
            100i64,
            RedOp::Add,
            |i, acc| *acc += i,
        );
        assert_eq!(got, 145);
    }

    #[test]
    fn reduce_mul_uses_identity_one() {
        let got = parallel_reduce(
            Parallel::new().num_threads(4),
            Schedule::dynamic(Some(1)),
            0..10,
            1i64,
            RedOp::Mul,
            |_, acc| *acc *= 2,
        );
        assert_eq!(got, 1024);
    }

    #[test]
    fn reduce_min_max_f64() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 997) as f64).collect();
        let mx = parallel_reduce(
            Parallel::new().num_threads(4),
            Schedule::guided(None),
            0..data.len() as i64,
            f64::NEG_INFINITY,
            RedOp::Max,
            |i, acc| *acc = acc.max(data[i as usize]),
        );
        let expect = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(mx, expect);
    }

    #[test]
    fn nowait_loops_inside_region() {
        // Two nowait loops followed by an explicit barrier: every iteration
        // of both loops runs exactly once even though threads drift.
        const N: usize = 100;
        let first: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        let second: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        fork_call(Parallel::new().num_threads(4), |ctx| {
            for_loop(ctx, Schedule::dynamic(Some(3)), 0..N as i64, true, |i| {
                first[i as usize].fetch_add(1, Ordering::SeqCst);
            });
            for_loop(ctx, Schedule::dynamic(Some(7)), 0..N as i64, true, |i| {
                second[i as usize].fetch_add(1, Ordering::SeqCst);
            });
            ctx.barrier();
            if ctx.is_master() {
                for i in 0..N {
                    assert_eq!(first[i].load(Ordering::SeqCst), 1);
                    assert_eq!(second[i].load(Ordering::SeqCst), 1);
                }
            }
        });
    }

    #[test]
    fn loop_barrier_orders_phases() {
        // Loop 1 (with barrier) writes, loop 2 reads: classic two-phase
        // stencil pattern must observe all phase-1 writes.
        const N: usize = 64;
        let a: Vec<AtomicI64> = (0..N).map(|_| AtomicI64::new(0)).collect();
        let ok = AtomicUsize::new(0);
        fork_call(Parallel::new().num_threads(4), |ctx| {
            for_loop(ctx, Schedule::static_default(), 0..N as i64, false, |i| {
                a[i as usize].store(i + 1, Ordering::SeqCst);
            });
            for_loop(ctx, Schedule::static_default(), 0..N as i64, true, |i| {
                if a[i as usize].load(Ordering::SeqCst) == i + 1 {
                    ok.fetch_add(1, Ordering::SeqCst);
                }
            });
        });
        assert_eq!(ok.load(Ordering::SeqCst), N);
    }

    #[test]
    fn many_dynamic_loops_recycle_slots() {
        // More dynamic loops than ring slots in one region.
        let total = AtomicI64::new(0);
        fork_call(Parallel::new().num_threads(3), |ctx| {
            for _ in 0..40 {
                for_loop(ctx, Schedule::dynamic(Some(2)), 0..10, false, |i| {
                    total.fetch_add(i, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 40 * 45);
    }

    #[test]
    fn runtime_schedule_reads_icv() {
        // An isolated runtime carries the run-sched-var, so this test cannot
        // race with others mutating the global ICVs.
        use crate::runtime::{Runtime, RuntimeConfig};
        let rt = Runtime::with_config(
            &RuntimeConfig::default().run_schedule(Schedule::dynamic(Some(4))),
        );
        let n = 1000i64;
        let cell = RedCell::new(RedOp::Add, 0i64);
        rt.fork_call(Parallel::new().num_threads(4), |ctx| {
            for_reduce(ctx, Schedule::runtime(), 0..n, true, &cell, |i, acc| {
                *acc += i
            });
        });
        assert_eq!(cell.get(), n * (n - 1) / 2);
    }

    #[test]
    fn downward_loop() {
        use crate::schedule::LoopCmp;
        let sum = AtomicI64::new(0);
        parallel_for(
            Parallel::new().num_threads(2),
            Schedule::static_default(),
            LoopBounds {
                lb: 10,
                ub: 0,
                incr: -1,
                cmp: LoopCmp::Gt,
            },
            |i| {
                sum.fetch_add(i, Ordering::SeqCst);
            },
        );
        assert_eq!(sum.load(Ordering::SeqCst), 55);
    }
}

/// Combined `parallel sections` construct: fork a team and distribute the
/// given section bodies, each running exactly once.
#[track_caller]
pub fn parallel_sections(par: Parallel, sections: &[&(dyn Fn() + Sync)]) {
    fork_call(par, |ctx| {
        ctx.sections(true, sections);
    });
}

#[cfg(test)]
mod sections_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_sections_runs_each_once() {
        let counts: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        let fns: Vec<Box<dyn Fn() + Sync>> = (0..5)
            .map(|i| {
                let c = &counts[i];
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn Fn() + Sync>
            })
            .collect();
        let refs: Vec<&(dyn Fn() + Sync)> = fns.iter().map(|b| b.as_ref()).collect();
        parallel_sections(Parallel::new().num_threads(3), &refs);
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), 1);
        }
    }
}
