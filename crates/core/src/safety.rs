//! Zig-style safety modes.
//!
//! Zig compiles code in a *debug* mode that inserts safety checks (bounds,
//! overflow) and a *production* mode that elides them (§II-A of the paper).
//! The runtime mirrors this with a process-wide [`SafetyMode`] consulted by
//! [`crate::shared::SharedSlice`]:
//!
//! * `Production` — no checks; accesses compile to plain loads/stores.
//! * `Debug` — bounds checks on every shared access ("safety checked
//!   undefined behaviour" becomes a panic).
//! * `Paranoid` — bounds checks **plus** write-write race tagging: each
//!   element remembers its last writer thread, and two different threads
//!   writing the same element between tag resets panic. This goes beyond
//!   Zig, using the checked mode to validate worksharing disjointness in
//!   tests.

use std::sync::atomic::{AtomicU8, Ordering};

/// The safety level applied to shared-memory accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SafetyMode {
    /// Zig `ReleaseFast`: unchecked.
    Production = 0,
    /// Zig `Debug`: bounds-checked.
    Debug = 1,
    /// Bounds-checked plus write-race tagging.
    Paranoid = 2,
}

// Relaxed everywhere: a standalone mode byte read at accessor creation; no
// other data is published through it.
static MODE: AtomicU8 = AtomicU8::new(SafetyMode::Debug as u8);

/// Read the current process-wide safety mode.
#[inline]
pub fn safety_mode() -> SafetyMode {
    match MODE.load(Ordering::Relaxed) {
        0 => SafetyMode::Production,
        2 => SafetyMode::Paranoid,
        _ => SafetyMode::Debug,
    }
}

/// Set the process-wide safety mode. Takes effect for accessors created
/// afterwards (mirrors choosing the build mode in Zig).
pub fn set_safety_mode(mode: SafetyMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// Run `f` under a temporary safety mode, restoring the previous one after.
/// Test-oriented; not safe to nest concurrently from multiple threads.
pub fn with_safety_mode<R>(mode: SafetyMode, f: impl FnOnce() -> R) -> R {
    let prev = safety_mode();
    set_safety_mode(mode);
    struct Restore(SafetyMode);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_safety_mode(self.0);
        }
    }
    let _g = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_debug() {
        // Other tests may flip the mode; use the scoped helper to observe.
        with_safety_mode(SafetyMode::Debug, || {
            assert_eq!(safety_mode(), SafetyMode::Debug);
        });
    }

    #[test]
    fn with_mode_restores() {
        let before = safety_mode();
        with_safety_mode(SafetyMode::Production, || {
            assert_eq!(safety_mode(), SafetyMode::Production);
        });
        assert_eq!(safety_mode(), before);
    }
}
