//! Atomic floating-point cells and CAS-loop read-modify-write operations.
//!
//! Zig's `@atomicRmw` (like Rust's std atomics) offers add, sub, min, max and
//! the bitwise operations, but **not** multiplication or the logical
//! operations, and no hardware offers atomic f64 multiply. The paper
//! implements the missing reduction operators with the compare-and-swap loop
//! of Listing 6; [`rmw_cas_loop`] is a faithful generic transcription, and
//! [`AtomicF64`] / [`AtomicF32`] build every floating-point RMW on top of it.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Generic CAS-loop read-modify-write, Listing 6 of the paper:
///
/// ```text
/// old := atomic-load(atom)
/// new := op(old)
/// WHILE TRUE DO
///   exchange-success, actual-value := compare-and-swap(&atom, old, new)
///   IF exchange-success THEN BREAK
///   ELSE old = actual-value; new = op(old)
/// END
/// ```
///
/// Returns the value held *before* the successful exchange. `load`/`cas` are
/// abstract so the same loop serves u32- and u64-backed cells.
#[inline]
pub fn rmw_cas_loop<T, L, C, F>(load: L, cas: C, mut op: F) -> T
where
    T: Copy + PartialEq,
    L: Fn() -> T,
    C: Fn(T, T) -> Result<T, T>,
    F: FnMut(T) -> T,
{
    let mut old = load();
    let mut new = op(old);
    loop {
        match cas(old, new) {
            Ok(prev) => return prev,
            Err(actual) => {
                old = actual;
                new = op(old);
            }
        }
    }
}

macro_rules! atomic_float {
    ($name:ident, $float:ty, $bits:ty, $atomic:ty) => {
        /// An atomic floating-point cell.
        ///
        /// Stored as its bit pattern in the corresponding unsigned atomic;
        /// every RMW op is a CAS loop (there is no hardware float RMW).
        /// All orderings are `SeqCst`-free: reductions only need atomicity of
        /// the individual update plus the region-end barrier for visibility,
        /// so `AcqRel`/`Acquire` are used, matching libomp's
        /// `__kmp_atomic_*` routines.
        #[derive(Debug)]
        pub struct $name {
            bits: $atomic,
        }

        impl $name {
            pub fn new(v: $float) -> Self {
                Self {
                    bits: <$atomic>::new(v.to_bits()),
                }
            }

            #[inline]
            pub fn load(&self) -> $float {
                <$float>::from_bits(self.bits.load(Ordering::Acquire))
            }

            #[inline]
            pub fn store(&self, v: $float) {
                self.bits.store(v.to_bits(), Ordering::Release);
            }

            /// Apply `op` atomically; returns the previous value.
            #[inline]
            pub fn fetch_update_cas<F: FnMut($float) -> $float>(&self, mut op: F) -> $float {
                let prev_bits = rmw_cas_loop(
                    || self.bits.load(Ordering::Acquire),
                    |old, new| {
                        self.bits.compare_exchange_weak(
                            old,
                            new,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                    },
                    |old: $bits| op(<$float>::from_bits(old)).to_bits(),
                );
                <$float>::from_bits(prev_bits)
            }

            #[inline]
            pub fn fetch_add(&self, v: $float) -> $float {
                self.fetch_update_cas(|old| old + v)
            }

            #[inline]
            pub fn fetch_sub(&self, v: $float) -> $float {
                self.fetch_update_cas(|old| old - v)
            }

            #[inline]
            pub fn fetch_mul(&self, v: $float) -> $float {
                self.fetch_update_cas(|old| old * v)
            }

            #[inline]
            pub fn fetch_min(&self, v: $float) -> $float {
                self.fetch_update_cas(|old| old.min(v))
            }

            #[inline]
            pub fn fetch_max(&self, v: $float) -> $float {
                self.fetch_update_cas(|old| old.max(v))
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0.0)
            }
        }
    };
}

atomic_float!(AtomicF64, f64, u64, AtomicU64);
atomic_float!(AtomicF32, f32, u32, AtomicU32);

/// CAS-loop integer multiply — the exact operation Listing 6 sketches, for
/// `i64` cells. Std atomics provide no `fetch_mul`.
#[inline]
pub fn fetch_mul_i64(atom: &std::sync::atomic::AtomicI64, operand: i64) -> i64 {
    rmw_cas_loop(
        || atom.load(Ordering::Acquire),
        |old, new| atom.compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Acquire),
        |old| old.wrapping_mul(operand),
    )
}

/// CAS-loop logical AND on a boolean stored as u8-in-u64 (0/1).
#[inline]
pub fn fetch_logical_and(atom: &AtomicU64, operand: bool) -> bool {
    rmw_cas_loop(
        || atom.load(Ordering::Acquire),
        |old, new| atom.compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Acquire),
        |old| ((old != 0) && operand) as u64,
    ) != 0
}

/// CAS-loop logical OR on a boolean stored as 0/1.
#[inline]
pub fn fetch_logical_or(atom: &AtomicU64, operand: bool) -> bool {
    rmw_cas_loop(
        || atom.load(Ordering::Acquire),
        |old, new| atom.compare_exchange_weak(old, new, Ordering::AcqRel, Ordering::Acquire),
        |old| ((old != 0) || operand) as u64,
    ) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    #[test]
    fn f64_add_and_mul() {
        let a = AtomicF64::new(2.0);
        assert_eq!(a.fetch_add(3.0), 2.0);
        assert_eq!(a.load(), 5.0);
        assert_eq!(a.fetch_mul(4.0), 5.0);
        assert_eq!(a.load(), 20.0);
    }

    #[test]
    fn f64_min_max() {
        let a = AtomicF64::new(1.5);
        a.fetch_max(9.0);
        assert_eq!(a.load(), 9.0);
        a.fetch_min(-3.0);
        assert_eq!(a.load(), -3.0);
        a.fetch_min(0.0); // no-op: already smaller
        assert_eq!(a.load(), -3.0);
    }

    #[test]
    fn f32_roundtrip() {
        let a = AtomicF32::new(0.5);
        a.fetch_add(0.25);
        assert_eq!(a.load(), 0.75);
        a.store(-1.0);
        assert_eq!(a.fetch_mul(8.0), -1.0);
        assert_eq!(a.load(), -8.0);
    }

    #[test]
    fn i64_mul_cas() {
        let a = AtomicI64::new(3);
        assert_eq!(fetch_mul_i64(&a, 7), 3);
        assert_eq!(a.load(Ordering::Relaxed), 21);
    }

    #[test]
    fn logical_ops() {
        let a = AtomicU64::new(1);
        assert!(fetch_logical_and(&a, true));
        assert_eq!(a.load(Ordering::Relaxed), 1);
        fetch_logical_and(&a, false);
        assert_eq!(a.load(Ordering::Relaxed), 0);
        fetch_logical_or(&a, false);
        assert_eq!(a.load(Ordering::Relaxed), 0);
        fetch_logical_or(&a, true);
        assert_eq!(a.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_f64_adds_are_lossless() {
        // 8 threads × 10_000 adds of 1.0 must sum exactly (integers in f64).
        let a = AtomicF64::new(0.0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        a.fetch_add(1.0);
                    }
                });
            }
        });
        assert_eq!(a.load(), 80_000.0);
    }

    #[test]
    fn concurrent_mul_reduction() {
        // Multiply in 2.0 sixty-four times across threads: result 2^64.
        let a = AtomicF64::new(1.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..16 {
                        a.fetch_mul(2.0);
                    }
                });
            }
        });
        assert_eq!(a.load(), 2f64.powi(64));
    }
}
