//! Reduction clauses: operators, identities, and atomic combination cells.
//!
//! The paper implements `reduction(op: list)` on both parallel regions and
//! worksharing loops by (§III-B1):
//!
//! 1. creating an **atomic cell** per reduction variable, seeded with the
//!    variable's value in the enclosing scope;
//! 2. giving each thread a **private copy initialised to the operator's
//!    identity** (required by the OpenMP standard);
//! 3. atomically combining each thread's partial into the cell at region
//!    end — using native atomic RMW where Zig provides one, and the CAS loop
//!    of Listing 6 for multiplication and the logical operators.
//!
//! [`RedCell`] packages steps 1 and 3; [`crate::workshare::parallel_reduce`]
//! and the VM's `.omp.internal` bindings drive the whole protocol.

use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::atomic::{
    AtomicBool, AtomicI32, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};

use crate::atomic::{rmw_cas_loop, AtomicF32, AtomicF64};
use crate::pad::CachePadded;

/// Reduction operators accepted by the `reduction` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    /// `+` (and `-`, which the OpenMP spec combines identically).
    Add,
    /// `*` — no native atomic; CAS loop.
    Mul,
    /// `min`.
    Min,
    /// `max`.
    Max,
    /// `&` bitwise and.
    BitAnd,
    /// `|` bitwise or.
    BitOr,
    /// `^` bitwise xor.
    BitXor,
    /// `&&` logical and — no native atomic; CAS loop.
    LogicalAnd,
    /// `||` logical or — no native atomic; CAS loop.
    LogicalOr,
}

impl RedOp {
    /// Parse the clause spelling used in pragmas (`reduction(+: x)`).
    pub fn parse(s: &str) -> Option<RedOp> {
        Some(match s {
            "+" | "-" => RedOp::Add,
            "*" => RedOp::Mul,
            "min" => RedOp::Min,
            "max" => RedOp::Max,
            "&" => RedOp::BitAnd,
            "|" => RedOp::BitOr,
            "^" => RedOp::BitXor,
            "and" | "&&" => RedOp::LogicalAnd,
            "or" | "||" => RedOp::LogicalOr,
            _ => return None,
        })
    }
}

/// Types usable as reduction variables.
///
/// `identity` yields the value each thread's private copy starts from;
/// `combine` is the sequential operator (used for thread-local accumulation
/// and by the tests as the reference semantics); `atomic_combine` merges a
/// partial into the shared cell thread-safely.
pub trait Reduce: Copy + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// Atomic storage for the shared reduction cell.
    type Cell: Send + Sync;

    /// Operator identity (OpenMP-mandated initial value of privates).
    fn identity(op: RedOp) -> Self;
    /// Sequential combine.
    fn combine(op: RedOp, a: Self, b: Self) -> Self;
    /// Create a cell holding `v`.
    fn new_cell(v: Self) -> Self::Cell;
    /// Atomically `cell = combine(op, cell, v)`.
    fn atomic_combine(cell: &Self::Cell, op: RedOp, v: Self);
    /// Read the cell (only meaningful after the region barrier).
    fn load_cell(cell: &Self::Cell) -> Self;
}

macro_rules! reduce_int {
    ($t:ty, $atomic:ty) => {
        impl Reduce for $t {
            type Cell = $atomic;

            fn identity(op: RedOp) -> Self {
                match op {
                    RedOp::Add => 0,
                    RedOp::Mul => 1,
                    RedOp::Min => <$t>::MAX,
                    RedOp::Max => <$t>::MIN,
                    RedOp::BitAnd => !0,
                    RedOp::BitOr | RedOp::BitXor => 0,
                    RedOp::LogicalAnd => 1,
                    RedOp::LogicalOr => 0,
                }
            }

            fn combine(op: RedOp, a: Self, b: Self) -> Self {
                match op {
                    RedOp::Add => a.wrapping_add(b),
                    RedOp::Mul => a.wrapping_mul(b),
                    RedOp::Min => a.min(b),
                    RedOp::Max => a.max(b),
                    RedOp::BitAnd => a & b,
                    RedOp::BitOr => a | b,
                    RedOp::BitXor => a ^ b,
                    RedOp::LogicalAnd => ((a != 0) && (b != 0)) as $t,
                    RedOp::LogicalOr => ((a != 0) || (b != 0)) as $t,
                }
            }

            fn new_cell(v: Self) -> Self::Cell {
                <$atomic>::new(v)
            }

            fn atomic_combine(cell: &Self::Cell, op: RedOp, v: Self) {
                match op {
                    // Native atomic RMW ops, as provided by Zig's @atomicRmw.
                    RedOp::Add => {
                        cell.fetch_add(v, Ordering::AcqRel);
                    }
                    RedOp::Min => {
                        cell.fetch_min(v, Ordering::AcqRel);
                    }
                    RedOp::Max => {
                        cell.fetch_max(v, Ordering::AcqRel);
                    }
                    RedOp::BitAnd => {
                        cell.fetch_and(v, Ordering::AcqRel);
                    }
                    RedOp::BitOr => {
                        cell.fetch_or(v, Ordering::AcqRel);
                    }
                    RedOp::BitXor => {
                        cell.fetch_xor(v, Ordering::AcqRel);
                    }
                    // Missing from the atomic instruction set: CAS loop
                    // (paper Listing 6).
                    RedOp::Mul | RedOp::LogicalAnd | RedOp::LogicalOr => {
                        rmw_cas_loop(
                            || cell.load(Ordering::Acquire),
                            |old, new| {
                                cell.compare_exchange_weak(
                                    old,
                                    new,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                            },
                            |old| Self::combine(op, old, v),
                        );
                    }
                }
            }

            fn load_cell(cell: &Self::Cell) -> Self {
                cell.load(Ordering::Acquire)
            }
        }
    };
}

reduce_int!(i64, AtomicI64);
reduce_int!(i32, AtomicI32);
reduce_int!(u64, AtomicU64);
reduce_int!(u32, AtomicU32);

macro_rules! reduce_float {
    ($t:ty, $cell:ty) => {
        impl Reduce for $t {
            type Cell = $cell;

            fn identity(op: RedOp) -> Self {
                match op {
                    RedOp::Add => 0.0,
                    RedOp::Mul => 1.0,
                    RedOp::Min => <$t>::INFINITY,
                    RedOp::Max => <$t>::NEG_INFINITY,
                    _ => panic!("reduction op {op:?} is not defined for floating point"),
                }
            }

            fn combine(op: RedOp, a: Self, b: Self) -> Self {
                match op {
                    RedOp::Add => a + b,
                    RedOp::Mul => a * b,
                    RedOp::Min => a.min(b),
                    RedOp::Max => a.max(b),
                    _ => panic!("reduction op {op:?} is not defined for floating point"),
                }
            }

            fn new_cell(v: Self) -> Self::Cell {
                <$cell>::new(v)
            }

            fn atomic_combine(cell: &Self::Cell, op: RedOp, v: Self) {
                // No hardware float RMW exists: every operator is a CAS loop.
                match op {
                    RedOp::Add => {
                        cell.fetch_add(v);
                    }
                    RedOp::Mul => {
                        cell.fetch_mul(v);
                    }
                    RedOp::Min => {
                        cell.fetch_min(v);
                    }
                    RedOp::Max => {
                        cell.fetch_max(v);
                    }
                    _ => panic!("reduction op {op:?} is not defined for floating point"),
                }
            }

            fn load_cell(cell: &Self::Cell) -> Self {
                cell.load()
            }
        }
    };
}

reduce_float!(f64, AtomicF64);
reduce_float!(f32, AtomicF32);

impl Reduce for bool {
    type Cell = AtomicBool;

    fn identity(op: RedOp) -> Self {
        match op {
            RedOp::LogicalAnd | RedOp::BitAnd => true,
            RedOp::LogicalOr | RedOp::BitOr | RedOp::BitXor => false,
            _ => panic!("reduction op {op:?} is not defined for bool"),
        }
    }

    fn combine(op: RedOp, a: Self, b: Self) -> Self {
        match op {
            RedOp::LogicalAnd | RedOp::BitAnd => a && b,
            RedOp::LogicalOr | RedOp::BitOr => a || b,
            RedOp::BitXor => a ^ b,
            _ => panic!("reduction op {op:?} is not defined for bool"),
        }
    }

    fn new_cell(v: Self) -> Self::Cell {
        AtomicBool::new(v)
    }

    fn atomic_combine(cell: &Self::Cell, op: RedOp, v: Self) {
        match op {
            RedOp::LogicalAnd | RedOp::BitAnd => {
                cell.fetch_and(v, Ordering::AcqRel);
            }
            RedOp::LogicalOr | RedOp::BitOr => {
                cell.fetch_or(v, Ordering::AcqRel);
            }
            RedOp::BitXor => {
                cell.fetch_xor(v, Ordering::AcqRel);
            }
            _ => panic!("reduction op {op:?} is not defined for bool"),
        }
    }

    fn load_cell(cell: &Self::Cell) -> Self {
        cell.load(Ordering::Acquire)
    }
}

/// A shared reduction cell: the runtime object behind one variable in a
/// `reduction` clause.
///
/// Seeded with the variable's pre-region value; threads call
/// [`RedCell::combine`] with their partials; after the region's barrier the
/// final value is read back with [`RedCell::get`] and stored to the original
/// variable.
#[derive(Debug)]
pub struct RedCell<T: Reduce> {
    cell: T::Cell,
    op: RedOp,
}

impl<T: Reduce> RedCell<T> {
    /// Create a cell for operator `op` seeded with the original value.
    pub fn new(op: RedOp, initial: T) -> Self {
        RedCell {
            cell: T::new_cell(initial),
            op,
        }
    }

    /// The identity each thread's private copy must start from.
    pub fn identity(&self) -> T {
        T::identity(self.op)
    }

    /// The operator.
    pub fn op(&self) -> RedOp {
        self.op
    }

    /// Atomically merge a thread's partial result.
    ///
    /// This is the single funnel every reduction construct drains through
    /// (tree merges fold partials privately and the root calls here once),
    /// so it is where [`crate::trace`] observes `ReductionCombine`.
    pub fn combine(&self, partial: T) {
        let t0 = if crate::trace::mode() == 0 {
            0
        } else {
            crate::trace::now_ns()
        };
        T::atomic_combine(&self.cell, self.op, partial);
        crate::trace::reduction_combine(t0);
    }

    /// Read the combined value (call after the region barrier).
    pub fn get(&self) -> T {
        T::load_cell(&self.cell)
    }
}

/// Combining-tree fan-in for [`ReduceTree`], matching the barrier tree's
/// shape so a team's reduction merge climbs the same‑depth hierarchy.
const RTREE_FANIN: usize = 4;

/// What a tree node folds: a group of per-thread input slots (leaf level)
/// or a group of lower tree nodes.
#[derive(Debug, Clone)]
enum RChildren {
    Inputs(Range<usize>),
    Nodes(Range<usize>),
}

/// One combining node: an arrival counter plus the folded partial of its
/// subtree, written by the node's last arriver before it ascends.
struct RNode<T> {
    arrived: AtomicUsize,
    expect: usize,
    parent: Option<usize>,
    children: RChildren,
    /// Written exactly once, by the node's last arriver; read exactly once,
    /// by the parent's last arriver (ordered through the arrival counters).
    partial: UnsafeCell<Option<T>>,
}

// SAFETY: `partial` is written by the node's last arriver before its
// release-arrival at the parent, and read by the parent's last arriver
// after its acquire-arrival — never concurrently.
unsafe impl<T: Send> Sync for RNode<T> {}

/// Single-shot padded tree reduction for one worksharing construct.
///
/// The contended single-cell merge (`nth` CAS loops on one line) is replaced
/// by: each thread publishes its partial in a cache-line-padded slot, then
/// arrives at its leaf node; the last arriver of each node folds its
/// children *sequentially* and ascends, so partials combine in a log₄(nth)
/// tree. Only the root performs one [`RedCell::combine`] — the paper's
/// Listing 6 CAS-loop leaf combiner — keeping entry-point semantics (cell
/// seeded with the original value, result read after the barrier) intact.
///
/// No thread ever waits here: non-last arrivers return immediately and the
/// construct's closing barrier (or region join) orders the root fold before
/// any [`RedCell::get`].
pub struct ReduceTree<T: Reduce> {
    op: RedOp,
    /// Per-thread partial inputs, padded so publication stores never
    /// false-share.
    inputs: Box<[CachePadded<UnsafeCell<Option<T>>>]>,
    nodes: Box<[CachePadded<RNode<T>>]>,
    leaf_of: Box<[usize]>,
}

// SAFETY: each `inputs[tid]` cell is written only by team thread `tid`
// before its leaf arrival and read only by the leaf's last arriver after
// acquiring that arrival.
unsafe impl<T: Reduce> Sync for ReduceTree<T> {}

impl<T: Reduce> ReduceTree<T> {
    /// Tree for a team of `nth` threads reducing with `op`.
    pub fn new(op: RedOp, nth: usize) -> Self {
        let nth = nth.max(1);
        let mut nodes: Vec<CachePadded<RNode<T>>> = Vec::new();
        let mut level_start = Vec::new();
        let mut width = nth;
        let mut leaf_level = true;
        while width > 1 {
            level_start.push(nodes.len());
            let groups = width.div_ceil(RTREE_FANIN);
            let prev_start = if leaf_level {
                0
            } else {
                level_start[level_start.len() - 2]
            };
            for g in 0..groups {
                let lo = g * RTREE_FANIN;
                let hi = (lo + RTREE_FANIN).min(width);
                let children = if leaf_level {
                    RChildren::Inputs(lo..hi)
                } else {
                    RChildren::Nodes(prev_start + lo..prev_start + hi)
                };
                nodes.push(CachePadded::new(RNode {
                    arrived: AtomicUsize::new(0),
                    expect: hi - lo,
                    parent: None, // patched below
                    children,
                    partial: UnsafeCell::new(None),
                }));
            }
            width = groups;
            leaf_level = false;
        }
        for l in 0..level_start.len().saturating_sub(1) {
            let (start, next) = (level_start[l], level_start[l + 1]);
            for g in 0..next - start {
                nodes[start + g].parent = Some(next + g / RTREE_FANIN);
            }
        }
        ReduceTree {
            op,
            inputs: (0..nth)
                .map(|_| CachePadded::new(UnsafeCell::new(None)))
                .collect(),
            nodes: nodes.into_boxed_slice(),
            leaf_of: (0..nth).map(|tid| tid / RTREE_FANIN).collect(),
        }
    }

    /// Merge thread `tid`'s partial. Every team thread must call this
    /// exactly once; the overall last arriver folds into `cell`.
    pub fn merge(&self, tid: usize, partial: T, cell: &RedCell<T>) {
        if self.nodes.is_empty() {
            // Team of one: no tree to climb.
            cell.combine(partial);
            return;
        }
        // SAFETY: only thread `tid` writes its input slot, before its leaf
        // arrival below publishes it.
        unsafe { *self.inputs[tid].get() = Some(partial) };
        let mut node = self.leaf_of[tid];
        loop {
            let nd = &self.nodes[node];
            // AcqRel: the write end publishes this thread's partial (and,
            // for interior nodes, the subtree fold); the read end of the
            // *last* arrival pulls in every sibling's published partial
            // through the counter's release sequence.
            let pos = nd.arrived.fetch_add(1, Ordering::AcqRel) + 1;
            if pos < nd.expect {
                return;
            }
            // Last arriver: fold this node's children sequentially.
            let folded = self.fold_children(nd);
            match nd.parent {
                Some(p) => {
                    // SAFETY: we are the node's unique last arriver; the
                    // parent's last arriver reads this only after acquiring
                    // our arrival there.
                    unsafe { *nd.partial.get() = Some(folded) };
                    node = p;
                }
                None => {
                    // Root: one contended merge total, via the CAS-loop /
                    // native-RMW leaf combiner (the paper's Listing 6).
                    cell.combine(folded);
                    return;
                }
            }
        }
    }

    fn fold_children(&self, nd: &RNode<T>) -> T {
        let mut acc = T::identity(self.op);
        match &nd.children {
            RChildren::Inputs(r) => {
                for i in r.clone() {
                    // SAFETY: published by thread `i` before its arrival,
                    // which we have acquired.
                    let v = unsafe { (*self.inputs[i].get()).expect("input partial missing") };
                    acc = T::combine(self.op, acc, v);
                }
            }
            RChildren::Nodes(r) => {
                for i in r.clone() {
                    // SAFETY: written by the child node's last arriver
                    // before its arrival here, which we have acquired.
                    let v =
                        unsafe { (*self.nodes[i].partial.get()).expect("child partial missing") };
                    acc = T::combine(self.op, acc, v);
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_ops() {
        assert_eq!(RedOp::parse("+"), Some(RedOp::Add));
        assert_eq!(RedOp::parse("-"), Some(RedOp::Add));
        assert_eq!(RedOp::parse("*"), Some(RedOp::Mul));
        assert_eq!(RedOp::parse("min"), Some(RedOp::Min));
        assert_eq!(RedOp::parse("max"), Some(RedOp::Max));
        assert_eq!(RedOp::parse("&&"), Some(RedOp::LogicalAnd));
        assert_eq!(RedOp::parse("||"), Some(RedOp::LogicalOr));
        assert_eq!(RedOp::parse("nope"), None);
    }

    #[test]
    fn identities_are_neutral_i64() {
        for op in [
            RedOp::Add,
            RedOp::Mul,
            RedOp::Min,
            RedOp::Max,
            RedOp::BitAnd,
            RedOp::BitOr,
            RedOp::BitXor,
            RedOp::LogicalAnd,
            RedOp::LogicalOr,
        ] {
            for v in [-5i64, 0, 1, 42] {
                let vv = match op {
                    // Logical ops only make sense on 0/1 operands.
                    RedOp::LogicalAnd | RedOp::LogicalOr => (v != 0) as i64,
                    _ => v,
                };
                assert_eq!(
                    i64::combine(op, i64::identity(op), vv),
                    vv,
                    "identity not neutral for {op:?}"
                );
            }
        }
    }

    #[test]
    fn identities_are_neutral_f64() {
        for op in [RedOp::Add, RedOp::Mul, RedOp::Min, RedOp::Max] {
            for v in [-2.5f64, 0.0, 7.25] {
                assert_eq!(f64::combine(op, f64::identity(op), v), v);
            }
        }
    }

    #[test]
    fn redcell_seeds_with_original_value() {
        // reduction(+: x) with x starting at 10 and partials 1,2,3 → 16.
        let cell = RedCell::<i64>::new(RedOp::Add, 10);
        cell.combine(1);
        cell.combine(2);
        cell.combine(3);
        assert_eq!(cell.get(), 16);
    }

    #[test]
    fn redcell_mul_uses_cas_loop() {
        let cell = RedCell::<i64>::new(RedOp::Mul, 2);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| cell.combine(3));
            }
        });
        assert_eq!(cell.get(), 2 * 81);
    }

    #[test]
    fn redcell_f64_concurrent_min_max() {
        let minc = RedCell::<f64>::new(RedOp::Min, f64::INFINITY);
        let maxc = RedCell::<f64>::new(RedOp::Max, f64::NEG_INFINITY);
        std::thread::scope(|s| {
            for t in 0..8i64 {
                let (minc, maxc) = (&minc, &maxc);
                s.spawn(move || {
                    minc.combine(t as f64 - 4.0);
                    maxc.combine(t as f64 - 4.0);
                });
            }
        });
        assert_eq!(minc.get(), -4.0);
        assert_eq!(maxc.get(), 3.0);
    }

    #[test]
    fn redcell_bool_logical() {
        let c = RedCell::<bool>::new(RedOp::LogicalAnd, true);
        c.combine(true);
        c.combine(false);
        assert!(!c.get());
        let c = RedCell::<bool>::new(RedOp::LogicalOr, false);
        c.combine(false);
        assert!(!c.get());
        c.combine(true);
        assert!(c.get());
    }

    #[test]
    fn bitwise_identities() {
        let c = RedCell::<u64>::new(RedOp::BitAnd, 0b1111);
        c.combine(0b1010);
        c.combine(0b0110);
        assert_eq!(c.get(), 0b0010);
        let c = RedCell::<u64>::new(RedOp::BitXor, 0);
        c.combine(0b1100);
        c.combine(0b1010);
        assert_eq!(c.get(), 0b0110);
    }

    #[test]
    fn reduce_tree_shape() {
        // 16 threads: 4 leaves + 1 root; leaves fold input groups of 4.
        let t = ReduceTree::<i64>::new(RedOp::Add, 16);
        assert_eq!(t.nodes.len(), 5);
        assert!(matches!(t.nodes[0].children, RChildren::Inputs(_)));
        assert!(matches!(t.nodes[4].children, RChildren::Nodes(_)));
        assert!(t.nodes[4].parent.is_none());
        // 1 thread: no tree at all.
        assert!(ReduceTree::<i64>::new(RedOp::Add, 1).nodes.is_empty());
        // 21 threads: 6 leaves + 2 mid + 1 root.
        assert_eq!(ReduceTree::<i64>::new(RedOp::Add, 21).nodes.len(), 9);
    }

    #[test]
    fn reduce_tree_single_thread_folds_directly() {
        let cell = RedCell::<i64>::new(RedOp::Add, 5);
        ReduceTree::<i64>::new(RedOp::Add, 1).merge(0, 7, &cell);
        assert_eq!(cell.get(), 12);
    }

    fn tree_sum(nth: usize) -> i64 {
        let cell = RedCell::<i64>::new(RedOp::Add, 100);
        let tree = ReduceTree::<i64>::new(RedOp::Add, nth);
        std::thread::scope(|s| {
            for tid in 0..nth {
                let (tree, cell) = (&tree, &cell);
                s.spawn(move || tree.merge(tid, tid as i64 + 1, cell));
            }
        });
        cell.get()
    }

    #[test]
    fn reduce_tree_concurrent_sum_matches_serial() {
        // seed 100 + sum(1..=nth), across team sizes spanning 1–3 levels.
        for nth in [2usize, 4, 5, 8, 13, 16, 21] {
            let want = 100 + (nth * (nth + 1) / 2) as i64;
            assert_eq!(tree_sum(nth), want, "nth={nth}");
        }
    }

    #[test]
    fn reduce_tree_mul_and_float() {
        let cell = RedCell::<f64>::new(RedOp::Mul, 2.0);
        let tree = ReduceTree::<f64>::new(RedOp::Mul, 6);
        std::thread::scope(|s| {
            for tid in 0..6 {
                let (tree, cell) = (&tree, &cell);
                s.spawn(move || tree.merge(tid, 2.0, cell));
            }
        });
        assert_eq!(cell.get(), 2.0 * 64.0);

        let cell = RedCell::<i64>::new(RedOp::Min, i64::MAX);
        let tree = ReduceTree::<i64>::new(RedOp::Min, 9);
        std::thread::scope(|s| {
            for tid in 0..9 {
                let (tree, cell) = (&tree, &cell);
                s.spawn(move || tree.merge(tid, 50 - tid as i64, cell));
            }
        });
        assert_eq!(cell.get(), 42);
    }
}
