//! Cache-line padding for contended per-thread runtime state.
//!
//! The hot dispatch/barrier/reduction paths keep one slot per thread; without
//! padding, neighbouring slots share a cache line and every owner-local
//! update still ping-pongs the line between cores (false sharing). Wrapping
//! each slot in [`CachePadded`] aligns it to its own 64-byte line, the common
//! line size on x86-64 and AArch64 (on machines with 128-byte prefetch pairs
//! this halves, not removes, the benefit — an acceptable trade for a type
//! that stays pointer-light).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to a 64-byte cache line so arrays of per-thread slots
/// never share a line.
#[repr(align(64))]
#[derive(Default)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size_are_line_multiples() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 64);
        // A two-element array puts the elements on distinct lines.
        let arr = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &*arr[0] as *const u64 as usize;
        let b = &*arr[1] as *const u64 as usize;
        assert!(b - a >= 64);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(7i32);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
