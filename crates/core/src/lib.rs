//! # zomp — an OpenMP-style shared-memory parallel runtime
//!
//! This crate is the Rust equivalent of LLVM's `libomp` as used by the paper
//! *"Pragma driven shared memory parallelism in Zig by supporting OpenMP loop
//! directives"* (SC 2024). It provides every runtime entry point the paper's
//! compiler lowers to:
//!
//! * **Parallel regions** via function outlining and [`fork_call`]
//!   (the `__kmpc_fork_call` equivalent), executed on a persistent worker
//!   team ("hot team").
//! * **Worksharing loops** with `static`, `static,chunk`, `dynamic`, `guided`
//!   and `runtime` schedules (`__kmpc_for_static_init` /
//!   `__kmpc_dispatch_init/next` equivalents), with and without the implicit
//!   barrier (`nowait`).
//! * **Reductions** over `+ * min max & | ^ && ||`, implemented with native
//!   atomic RMW operations where the platform provides them and with the
//!   compare-and-swap loop of the paper's Listing 6 where it does not
//!   (multiplication, logical and/or, and all floating point operations).
//! * **Synchronisation**: sense-reversing barriers, `critical`, `master`,
//!   `single`, `atomic` helpers, and the `omp_*` lock API.
//! * **ICVs** and environment handling (`OMP_NUM_THREADS`, `OMP_SCHEDULE`,
//!   `OMP_DYNAMIC`).
//! * The user-facing **`omp` namespace** ([`omp`]) mirroring
//!   `omp_get_thread_num`, `omp_get_wtime`, and friends, as re-exported by the
//!   paper's `std.omp` Zig namespace.
//!
//! Zig's debug/production duality (safety-checked undefined behaviour) is
//! mirrored by [`safety::SafetyMode`]: shared-array wrappers bounds-check and
//! optionally race-check accesses in `Debug`/`Paranoid` modes and elide all
//! checks in `Production`.
//!
//! ## Quickstart
//!
//! ```
//! use zomp::prelude::*;
//!
//! let n = 1 << 14;
//! let x = vec![1.0f64; n];
//! let y = vec![2.0f64; n];
//! let dot = zomp::parallel_reduce(
//!     Parallel::new().num_threads(4),
//!     Schedule::static_default(),
//!     0..n as i64,
//!     0.0f64,
//!     RedOp::Add,
//!     |i, acc| *acc += x[i as usize] * y[i as usize],
//! );
//! assert_eq!(dot, 2.0 * n as f64);
//! ```

pub mod atomic;
pub mod barrier;
pub mod config;
pub mod icv;
pub mod kmpc;
pub mod omp;
pub mod pad;
pub mod profile;
pub mod reduction;
pub mod runtime;
pub mod safety;
pub mod schedule;
pub mod shared;
pub mod sync;
pub mod team;
pub mod threadprivate;
pub mod trace;
pub mod workshare;

pub use config::ExecConfig;
pub use reduction::RedOp;
pub use runtime::{Runtime, RuntimeConfig};
pub use schedule::{LoopBounds, Schedule, ScheduleKind};
pub use team::{fork_call, fork_call_rt, Parallel, ThreadCtx};
pub use trace::MetricsSnapshot;
pub use workshare::{parallel_for, parallel_reduce};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::atomic::{AtomicF32, AtomicF64};
    pub use crate::omp;
    pub use crate::reduction::{RedCell, RedOp};
    pub use crate::safety::SafetyMode;
    pub use crate::schedule::{LoopBounds, Schedule};
    pub use crate::shared::SharedSlice;
    pub use crate::team::{fork_call, Parallel, ThreadCtx};
    pub use crate::workshare::{parallel_for, parallel_reduce};
}
