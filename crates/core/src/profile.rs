//! Region profiling — the paper's future work, implemented.
//!
//! §VI proposes "modifying the compiler to automatically instrument
//! applications" with profiling calls, "providing functionality similar to
//! that of gprof". Here the *runtime* provides it: when profiling is
//! enabled, every parallel region records its wall-clock duration and team
//! size under a label (set with [`crate::team::Parallel::label`], or the
//! default `<parallel>`), with zero overhead on the hot path when disabled
//! (one relaxed atomic load).
//!
//! ```
//! use zomp::prelude::*;
//! zomp::profile::enable();
//! fork_call(Parallel::new().num_threads(2).label("init"), |_| {});
//! fork_call(Parallel::new().num_threads(2).label("init"), |_| {});
//! let report = zomp::profile::report();
//! let init = report.iter().find(|r| r.label == "init").unwrap();
//! assert_eq!(init.invocations, 2);
//! zomp::profile::disable();
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use parking_lot::Mutex;

// Relaxed everywhere: an independent on/off flag; recorded data is guarded
// by the registry mutex, not by this atomic.
static ENABLED: AtomicBool = AtomicBool::new(false);

#[derive(Debug, Clone, Default)]
struct Accum {
    invocations: u64,
    total: Duration,
    max: Duration,
    threads_sum: u64,
}

fn registry() -> &'static Mutex<HashMap<String, Accum>> {
    static REG: OnceLock<Mutex<HashMap<String, Accum>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Turn region instrumentation on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn region instrumentation off (recorded data is kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Is instrumentation currently on?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drop all recorded data.
pub fn reset() {
    registry().lock().clear();
}

pub(crate) fn record(label: &str, threads: usize, elapsed: Duration) {
    let mut reg = registry().lock();
    let a = reg.entry(label.to_string()).or_default();
    a.invocations += 1;
    a.total += elapsed;
    a.max = a.max.max(elapsed);
    a.threads_sum += threads as u64;
}

/// One profiled region label.
#[derive(Debug, Clone)]
pub struct RegionStat {
    pub label: String,
    pub invocations: u64,
    pub total: Duration,
    pub max: Duration,
    /// Mean team size across invocations.
    pub mean_threads: f64,
}

/// Snapshot of all recorded regions, sorted by total time descending
/// (gprof-style "flat profile").
pub fn report() -> Vec<RegionStat> {
    let reg = registry().lock();
    let mut out: Vec<RegionStat> = reg
        .iter()
        .map(|(label, a)| RegionStat {
            label: label.clone(),
            invocations: a.invocations,
            total: a.total,
            max: a.max,
            mean_threads: a.threads_sum as f64 / a.invocations.max(1) as f64,
        })
        .collect();
    out.sort_by_key(|r| std::cmp::Reverse(r.total));
    out
}

/// Render the flat profile as a table.
pub fn render_report() -> String {
    let mut s =
        String::from("region                          calls   total (ms)     max (ms)  threads\n");
    for r in report() {
        s.push_str(&format!(
            "{:<30} {:>6} {:>12.3} {:>12.3} {:>8.1}\n",
            r.label,
            r.invocations,
            r.total.as_secs_f64() * 1e3,
            r.max.as_secs_f64() * 1e3,
            r.mean_threads
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::{fork_call, Parallel};

    #[test]
    fn records_labelled_regions() {
        reset();
        enable();
        for _ in 0..3 {
            fork_call(Parallel::new().num_threads(2).label("test-region"), |ctx| {
                std::hint::black_box(ctx.thread_num());
            });
        }
        disable();
        let report = report();
        let r = report
            .iter()
            .find(|r| r.label == "test-region")
            .expect("region recorded");
        assert_eq!(r.invocations, 3);
        assert!(r.total > Duration::ZERO);
        assert!(r.max <= r.total);
        assert!((r.mean_threads - 2.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_profiling_records_nothing() {
        reset();
        disable();
        fork_call(Parallel::new().num_threads(2).label("ghost"), |_| {});
        assert!(report().iter().all(|r| r.label != "ghost"));
    }

    #[test]
    fn render_contains_header_and_rows() {
        reset();
        enable();
        fork_call(Parallel::new().num_threads(2).label("rendered"), |_| {});
        disable();
        let table = render_report();
        assert!(table.contains("region"));
        assert!(table.contains("rendered"));
    }
}
