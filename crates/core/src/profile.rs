//! Region profiling — the paper's future work, implemented on the event
//! stream.
//!
//! §VI proposes "modifying the compiler to automatically instrument
//! applications" with profiling calls, "providing functionality similar to
//! that of gprof". Here the *runtime* provides it, as a reporting layer
//! over [`crate::trace`]: enabling profiling turns on the per-thread event
//! rings, and [`report`] / [`breakdown`] fold the recorded spans into
//! gprof-style tables. There is no profiling-specific hot path any more —
//! the old implementation took a global registry mutex on every region
//! exit; regions now write one event into their thread's lock-free ring,
//! and aggregation happens once, at report time.
//!
//! [`report`] is the flat profile (per-label invocation counts and wall
//! time, one entry per region). [`breakdown`] goes below the region: using
//! the nested loop/chunk/barrier/reduction spans it splits each region's
//! per-thread busy time into *compute*, *dispatch overhead* (worksharing
//! protocol time not spent in loop bodies), *barrier wait*, *reduction*,
//! and the master's *join* wait — the decomposition that explains where a
//! schedule's time actually goes.
//!
//! ```
//! use zomp::prelude::*;
//! zomp::profile::enable();
//! fork_call(Parallel::new().num_threads(2).label("init"), |_| {});
//! fork_call(Parallel::new().num_threads(2).label("init"), |_| {});
//! let report = zomp::profile::report();
//! let init = report.iter().find(|r| r.label == "init").unwrap();
//! assert_eq!(init.invocations, 2);
//! zomp::profile::disable();
//! ```

use std::collections::HashMap;
use std::time::Duration;

use crate::trace::{self, Event, EventKind};

/// Turn region instrumentation on (event rings + counters).
pub fn enable() {
    trace::enable_events();
    trace::enable_counters();
}

/// Turn region instrumentation off (recorded data is kept).
pub fn disable() {
    trace::disable(trace::EVENTS | trace::COUNTERS);
}

/// Is instrumentation currently on?
#[inline]
pub fn enabled() -> bool {
    trace::mode() & trace::EVENTS != 0
}

/// Drop all recorded data.
pub fn reset() {
    trace::reset();
}

/// Display label for regions recorded without one (tracing enabled
/// mid-region, or a hand-built `Parallel` in a context with no caller
/// location).
const UNLABELLED: &str = "<parallel>";

fn display_label(ev: &Event) -> &str {
    if ev.label.is_empty() {
        UNLABELLED
    } else {
        ev.label
    }
}

/// One profiled region label (flat profile entry).
#[derive(Debug, Clone)]
pub struct RegionStat {
    pub label: String,
    pub invocations: u64,
    pub total: Duration,
    pub max: Duration,
    /// Mean team size across invocations.
    pub mean_threads: f64,
}

/// Snapshot of all recorded regions, sorted by total time descending
/// (gprof-style "flat profile"). Folds the master-side `Parallel` spans,
/// so invocation counts match [`crate::team::fork_call`] calls regardless
/// of team size.
pub fn report() -> Vec<RegionStat> {
    #[derive(Default)]
    struct Accum {
        invocations: u64,
        total_ns: u64,
        max_ns: u64,
        threads_sum: u64,
    }
    let mut acc: HashMap<String, Accum> = HashMap::new();
    for (_seq, _name, events) in trace::all_events() {
        for ev in events {
            if ev.kind != EventKind::Parallel {
                continue;
            }
            let a = acc.entry(display_label(&ev).to_string()).or_default();
            a.invocations += 1;
            a.total_ns += ev.dur_ns;
            a.max_ns = a.max_ns.max(ev.dur_ns);
            a.threads_sum += ev.a;
        }
    }
    let mut out: Vec<RegionStat> = acc
        .into_iter()
        .map(|(label, a)| RegionStat {
            label,
            invocations: a.invocations,
            total: Duration::from_nanos(a.total_ns),
            max: Duration::from_nanos(a.max_ns),
            mean_threads: a.threads_sum as f64 / a.invocations.max(1) as f64,
        })
        .collect();
    out.sort_by_key(|r| std::cmp::Reverse(r.total));
    out
}

/// Per-construct time breakdown of one region label, summed over every
/// participating thread's span (so durations are CPU time across the team,
/// not wall clock).
#[derive(Debug, Clone)]
pub struct BreakdownStat {
    pub label: String,
    /// Region invocations (master spans).
    pub invocations: u64,
    /// Per-thread busy time inside the region's spans.
    pub busy: Duration,
    /// Busy time minus everything attributed below: loop bodies plus any
    /// serial code in the region.
    pub compute: Duration,
    /// Worksharing protocol overhead: loop-construct time not spent
    /// executing claimed chunks (dispatch init, claim/steal traffic).
    pub dispatch: Duration,
    /// Time waiting in barriers.
    pub barrier: Duration,
    /// Time in reduction combines.
    pub reduction: Duration,
    /// The master's join wait on the worker latch.
    pub join: Duration,
}

/// Fold the event stream into a per-region-label breakdown of where
/// thread time went: compute vs dispatch overhead vs barrier wait vs
/// reduction vs join. Sorted by busy time descending.
pub fn breakdown() -> Vec<BreakdownStat> {
    #[derive(Default)]
    struct Accum {
        invocations: u64,
        busy_ns: u64,
        loops_ns: u64,
        chunks_ns: u64,
        barrier_ns: u64,
        reduction_ns: u64,
        join_ns: u64,
    }
    let contains = |outer: &Event, inner: &Event| {
        inner.t_ns >= outer.t_ns && inner.t_ns + inner.dur_ns <= outer.t_ns + outer.dur_ns
    };
    let mut acc: HashMap<String, Accum> = HashMap::new();
    for (_seq, _name, events) in trace::all_events() {
        let regions: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Parallel | EventKind::Implicit))
            .collect();
        for ev in &events {
            // Attribute each sub-span to the innermost enclosing region
            // span on the same thread (max start among those containing
            // it — regions nest, they never partially overlap).
            let region = regions
                .iter()
                .filter(|r| !std::ptr::eq(**r, ev) && contains(r, ev))
                .max_by_key(|r| r.t_ns);
            match ev.kind {
                EventKind::Parallel | EventKind::Implicit => {
                    let a = acc.entry(display_label(ev).to_string()).or_default();
                    if ev.kind == EventKind::Parallel {
                        a.invocations += 1;
                    }
                    a.busy_ns += ev.dur_ns;
                }
                _ => {
                    let Some(region) = region else { continue };
                    let a = acc.entry(display_label(region).to_string()).or_default();
                    match ev.kind {
                        EventKind::LoopDispatch => a.loops_ns += ev.dur_ns,
                        EventKind::ChunkOwned | EventKind::ChunkStolen => a.chunks_ns += ev.dur_ns,
                        EventKind::BarrierWait => a.barrier_ns += ev.dur_ns,
                        EventKind::ReductionCombine => a.reduction_ns += ev.dur_ns,
                        EventKind::TaskWait => a.join_ns += ev.dur_ns,
                        // Tier events (bulk kernels, bails, deopts,
                        // quickens) run *inside* chunk/compute time — they
                        // are folded by `tier_report`, not double-counted
                        // here.
                        EventKind::BulkLoop
                        | EventKind::KernelBail
                        | EventKind::Deopt
                        | EventKind::Quicken => {}
                        EventKind::Parallel | EventKind::Implicit => unreachable!(),
                    }
                }
            }
        }
    }
    let mut out: Vec<BreakdownStat> = acc
        .into_iter()
        .map(|(label, a)| {
            let dispatch_ns = a.loops_ns.saturating_sub(a.chunks_ns);
            let compute_ns = a
                .busy_ns
                .saturating_sub(dispatch_ns + a.barrier_ns + a.reduction_ns + a.join_ns);
            BreakdownStat {
                label,
                invocations: a.invocations,
                busy: Duration::from_nanos(a.busy_ns),
                compute: Duration::from_nanos(compute_ns),
                dispatch: Duration::from_nanos(dispatch_ns),
                barrier: Duration::from_nanos(a.barrier_ns),
                reduction: Duration::from_nanos(a.reduction_ns),
                join: Duration::from_nanos(a.join_ns),
            }
        })
        .collect();
    out.sort_by_key(|r| std::cmp::Reverse(r.busy));
    out
}

/// Per-pragma-loop execution-tier residency: how many iterations of a
/// worksharing loop ran inside native bulk kernels vs through the
/// interpreter, plus the kernel-bail / deopt / quicken activity observed
/// inside the loop's spans. One entry per loop label (the pragma's
/// `unit:line` when the front end supplied one, else the schedule name).
#[derive(Debug, Clone, Default)]
pub struct LoopTier {
    pub label: String,
    /// Loop-construct spans folded in (per thread, per entry).
    pub dispatches: u64,
    /// Iterations executed under this label, all tiers.
    pub total_iters: u64,
    /// Iterations completed inside native bulk kernels.
    pub native_iters: u64,
    /// Kernel runs that bailed back to the interpreter.
    pub bails: u64,
    /// In-place deoptimisations of quickened instructions.
    pub deopts: u64,
    /// Generic instructions quickened to typed variants.
    pub quickens: u64,
}

impl LoopTier {
    /// Fraction of iterations that ran natively, in `[0, 1]`.
    pub fn native_frac(&self) -> f64 {
        if self.total_iters == 0 {
            0.0
        } else {
            self.native_iters as f64 / self.total_iters as f64
        }
    }
}

/// Fold the event stream into per-loop tier residency. Each
/// chunk / bulk-kernel / bail / deopt / quicken event is attributed to the
/// innermost enclosing loop-construct span on the same thread; a loop span
/// with no chunk events nested (the statically partitioned path, which
/// claims no per-chunk spans) contributes its own iteration payload
/// instead. Sorted by total iterations descending.
pub fn tier_report() -> Vec<LoopTier> {
    #[derive(Default)]
    struct SpanAccum {
        chunk_iters: u64,
        has_chunks: bool,
        native: u64,
        bails: u64,
        deopts: u64,
        quickens: u64,
    }
    let contains = |outer: &Event, inner: &Event| {
        inner.t_ns >= outer.t_ns && inner.t_ns + inner.dur_ns <= outer.t_ns + outer.dur_ns
    };
    let mut acc: HashMap<String, LoopTier> = HashMap::new();
    for (_seq, _name, events) in trace::all_events() {
        let loops: Vec<usize> = (0..events.len())
            .filter(|&i| events[i].kind == EventKind::LoopDispatch)
            .collect();
        let mut spans: HashMap<usize, SpanAccum> = HashMap::new();
        for ev in &events {
            let slot = loops
                .iter()
                .filter(|&&i| !std::ptr::eq(&events[i], ev) && contains(&events[i], ev))
                .max_by_key(|&&i| events[i].t_ns);
            let Some(&slot) = slot else { continue };
            let a = spans.entry(slot).or_default();
            match ev.kind {
                EventKind::ChunkOwned | EventKind::ChunkStolen => {
                    a.has_chunks = true;
                    a.chunk_iters += ev.b;
                }
                EventKind::BulkLoop => a.native += ev.a,
                EventKind::KernelBail => a.bails += 1,
                EventKind::Deopt => a.deopts += 1,
                EventKind::Quicken => a.quickens += 1,
                _ => {}
            }
        }
        for &i in &loops {
            let ev = &events[i];
            let span = spans.remove(&i).unwrap_or_default();
            let t = acc.entry(display_label(ev).to_string()).or_default();
            t.label = display_label(ev).to_string();
            t.dispatches += 1;
            // Claimed worksharing iterations, floored by the kernel count:
            // a bulk kernel that subsumes a loop *nested inside* the chunk
            // body (e.g. IS's per-bucket ranking under `static,1`) executes
            // more iterations than the outer loop claims, and those
            // iterations are real work under this label.
            let claimed = if span.has_chunks {
                span.chunk_iters
            } else {
                ev.a
            };
            t.total_iters += claimed.max(span.native);
            t.native_iters += span.native;
            t.bails += span.bails;
            t.deopts += span.deopts;
            t.quickens += span.quickens;
        }
    }
    let mut out: Vec<LoopTier> = acc.into_values().collect();
    out.sort_by_key(|t| std::cmp::Reverse(t.total_iters));
    out
}

/// Render the per-loop tier residency as a table.
pub fn render_tiers() -> String {
    let mut s = String::from(
        "loop                            spans        iters       native  native%   bails  deopts  quickens\n",
    );
    for t in tier_report() {
        s.push_str(&format!(
            "{:<30} {:>6} {:>12} {:>12} {:>8.1} {:>7} {:>7} {:>9}\n",
            t.label,
            t.dispatches,
            t.total_iters,
            t.native_iters,
            100.0 * t.native_frac(),
            t.bails,
            t.deopts,
            t.quickens,
        ));
    }
    s
}

/// Render the flat profile as a table.
pub fn render_report() -> String {
    let mut s =
        String::from("region                          calls   total (ms)     max (ms)  threads\n");
    for r in report() {
        s.push_str(&format!(
            "{:<30} {:>6} {:>12.3} {:>12.3} {:>8.1}\n",
            r.label,
            r.invocations,
            r.total.as_secs_f64() * 1e3,
            r.max.as_secs_f64() * 1e3,
            r.mean_threads
        ));
    }
    s
}

/// Render the per-construct breakdown as a table (all columns in
/// milliseconds of summed per-thread time).
pub fn render_breakdown() -> String {
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut s = String::from(
        "region                          calls    busy (ms) compute (ms) dispatch (ms) barrier (ms)  reduce (ms)    join (ms)\n",
    );
    for r in breakdown() {
        s.push_str(&format!(
            "{:<30} {:>6} {:>12.3} {:>12.3} {:>13.3} {:>12.3} {:>12.3} {:>12.3}\n",
            r.label,
            r.invocations,
            ms(r.busy),
            ms(r.compute),
            ms(r.dispatch),
            ms(r.barrier),
            ms(r.reduction),
            ms(r.join),
        ));
    }
    s
}

/// Render the whole profile — per-construct breakdown joined with the
/// per-loop tier residency — as one JSON object (`zag --profile=json`).
pub fn render_json() -> String {
    fn esc(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                c => vec![c],
            })
            .collect()
    }
    let ns = |d: Duration| d.as_nanos() as u64;
    let mut s = String::from("{\n  \"breakdown\": [\n");
    let rows = breakdown();
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"region\": \"{}\", \"calls\": {}, \"busy_ns\": {}, \"compute_ns\": {}, \
             \"dispatch_ns\": {}, \"barrier_ns\": {}, \"reduction_ns\": {}, \"join_ns\": {}}}{}\n",
            esc(&r.label),
            r.invocations,
            ns(r.busy),
            ns(r.compute),
            ns(r.dispatch),
            ns(r.barrier),
            ns(r.reduction),
            ns(r.join),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n  \"tiers\": [\n");
    let tiers = tier_report();
    for (i, t) in tiers.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"loop\": \"{}\", \"spans\": {}, \"iters\": {}, \"native_iters\": {}, \
             \"native_frac\": {:.4}, \"bails\": {}, \"deopts\": {}, \"quickens\": {}}}{}\n",
            esc(&t.label),
            t.dispatches,
            t.total_iters,
            t.native_iters,
            t.native_frac(),
            t.bails,
            t.deopts,
            t.quickens,
            if i + 1 < tiers.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::{fork_call, Parallel};
    use crate::trace::test_serial;

    #[test]
    fn records_labelled_regions() {
        let _g = test_serial();
        reset();
        enable();
        for _ in 0..3 {
            fork_call(Parallel::new().num_threads(2).label("test-region"), |ctx| {
                std::hint::black_box(ctx.thread_num());
            });
        }
        disable();
        let report = report();
        let r = report
            .iter()
            .find(|r| r.label == "test-region")
            .expect("region recorded");
        assert_eq!(r.invocations, 3);
        assert!(r.total > Duration::ZERO);
        assert!(r.max <= r.total);
        assert!((r.mean_threads - 2.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_profiling_records_nothing() {
        let _g = test_serial();
        reset();
        disable();
        fork_call(Parallel::new().num_threads(2).label("ghost"), |_| {});
        assert!(report().iter().all(|r| r.label != "ghost"));
    }

    #[test]
    fn render_contains_header_and_rows() {
        let _g = test_serial();
        reset();
        enable();
        fork_call(Parallel::new().num_threads(2).label("rendered"), |_| {});
        disable();
        let table = render_report();
        assert!(table.contains("region"));
        assert!(table.contains("rendered"));
    }

    #[test]
    fn unlabelled_regions_get_caller_location() {
        let _g = test_serial();
        reset();
        enable();
        fork_call(Parallel::new().num_threads(2), |_| {});
        disable();
        // #[track_caller] auto-label: this file's name, some line.
        assert!(
            report().iter().any(|r| r.label.contains("profile.rs")),
            "expected a file:line auto-label, got {:?}",
            report().iter().map(|r| r.label.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn breakdown_decomposes_a_loop_region() {
        let _g = test_serial();
        reset();
        enable();
        fork_call(Parallel::new().num_threads(4).label("bd"), |ctx| {
            crate::workshare::for_loop(
                ctx,
                crate::schedule::Schedule::dynamic(Some(8)),
                0..4096i64,
                false,
                |i| {
                    std::hint::black_box(i);
                },
            );
        });
        disable();
        let bd = breakdown();
        let r = bd.iter().find(|r| r.label == "bd").expect("region present");
        assert_eq!(r.invocations, 1);
        assert!(r.busy > Duration::ZERO);
        // The pieces never exceed the busy total.
        assert!(
            r.compute + r.dispatch + r.barrier + r.reduction + r.join
                <= r.busy + Duration::from_micros(1)
        );
        // A dispatched loop must show some loop-protocol activity
        // (dispatch overhead can round to ~0, but chunks ran: compute > 0).
        assert!(r.compute > Duration::ZERO);
    }
}
