//! Loop schedules and iteration-space partitioning.
//!
//! This module contains the *pure* scheduling logic shared between the live
//! runtime ([`crate::workshare`], [`crate::kmpc`]) and the ARCHER2 machine
//! model in the `archer-sim` crate: given a normalised iteration space
//! `0..trip_count`, which iterations does thread `tid` of `nth` execute, and
//! in what chunks?
//!
//! The paper lowers worksharing loops to two families of libomp entry points:
//!
//! * `__kmpc_for_static_init` / `__kmpc_for_static_fini` for `static`
//!   schedules — partitioning is a closed-form function of `(tid, nth)`,
//!   computed here by [`static_block`] and [`StaticChunked`];
//! * `__kmpc_dispatch_init` / `__kmpc_dispatch_next` for `dynamic`, `guided`
//!   and `runtime` schedules — threads repeatedly grab chunks from shared
//!   state, modelled by [`DynamicDispatch`] and [`GuidedDispatch`].
//!
//! Loop bounds are extracted from the source loop exactly as §III-B2
//! describes (lower bound from the init expression, upper bound and
//! comparison operator from the condition, increment from the continuation
//! expression); [`LoopBounds`] normalises all of that to a trip count.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// The schedule kinds supported by the paper's worksharing implementation.
///
/// `runtime` defers the choice to the `run-sched-var` ICV
/// (`OMP_SCHEDULE` / `omp_set_schedule`), mirroring `kmp_sch_runtime`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// `kmp_sch_static` / `kmp_sch_static_chunked`.
    Static,
    /// `kmp_sch_dynamic_chunked`.
    Dynamic,
    /// `kmp_sch_guided_chunked`.
    Guided,
    /// `kmp_sch_runtime`: resolved against the ICVs at loop entry.
    Runtime,
}

/// A schedule clause: kind plus optional chunk size.
///
/// In the paper's AST encoding this is a 3-bit kind and a 29-bit chunk packed
/// into one `u32` of the `extra_data` array, with chunk 0 meaning
/// "unspecified" (chunks must be positive per the OpenMP spec). The front-end
/// crate reproduces that packing; here we keep the decoded form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Schedule {
    pub kind: ScheduleKind,
    /// `None` = no chunk specified. Always `>= 1` when `Some`.
    pub chunk: Option<i64>,
}

impl Schedule {
    /// `schedule(static)`.
    pub const fn static_default() -> Self {
        Schedule {
            kind: ScheduleKind::Static,
            chunk: None,
        }
    }

    /// `schedule(static, chunk)`.
    pub const fn static_chunked(chunk: i64) -> Self {
        Schedule {
            kind: ScheduleKind::Static,
            chunk: Some(chunk),
        }
    }

    /// `schedule(dynamic[, chunk])`.
    pub const fn dynamic(chunk: Option<i64>) -> Self {
        Schedule {
            kind: ScheduleKind::Dynamic,
            chunk,
        }
    }

    /// `schedule(guided[, chunk])`.
    pub const fn guided(chunk: Option<i64>) -> Self {
        Schedule {
            kind: ScheduleKind::Guided,
            chunk,
        }
    }

    /// `schedule(runtime)`.
    pub const fn runtime() -> Self {
        Schedule {
            kind: ScheduleKind::Runtime,
            chunk: None,
        }
    }
}

/// Comparison operator of the source loop condition (taken directly from the
/// Zig `while` condition per §III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopCmp {
    /// `i < ub`
    Lt,
    /// `i <= ub`
    Le,
    /// `i > ub`
    Gt,
    /// `i >= ub`
    Ge,
}

/// Raw loop bounds as extracted from the source loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopBounds {
    /// Initial value of the loop counter.
    pub lb: i64,
    /// Right-hand side of the comparison.
    pub ub: i64,
    /// Signed increment applied by the continuation expression.
    pub incr: i64,
    /// Comparison operator.
    pub cmp: LoopCmp,
}

impl LoopBounds {
    /// An upward, exclusive loop `for i in lb..ub` with unit stride.
    pub const fn upto(lb: i64, ub: i64) -> Self {
        LoopBounds {
            lb,
            ub,
            incr: 1,
            cmp: LoopCmp::Lt,
        }
    }

    /// An upward, exclusive loop with a stride.
    pub const fn upto_by(lb: i64, ub: i64, incr: i64) -> Self {
        LoopBounds {
            lb,
            ub,
            incr,
            cmp: LoopCmp::Lt,
        }
    }

    /// Number of iterations the loop executes ("trip count").
    ///
    /// Returns 0 for loops whose condition is false on entry. Panics on a
    /// zero increment or an increment whose sign cannot make progress (those
    /// are non-conforming loops the compiler would reject).
    pub fn trip_count(&self) -> u64 {
        assert!(self.incr != 0, "worksharing loop increment must be nonzero");
        match self.cmp {
            LoopCmp::Lt | LoopCmp::Le => {
                assert!(
                    self.incr > 0,
                    "upward loop ({:?}) needs a positive increment",
                    self.cmp
                );
                let ub = if self.cmp == LoopCmp::Le {
                    self.ub.checked_add(1).expect("loop bound overflow")
                } else {
                    self.ub
                };
                if self.lb >= ub {
                    0
                } else {
                    let span = (ub as i128) - (self.lb as i128);
                    ((span + self.incr as i128 - 1) / self.incr as i128) as u64
                }
            }
            LoopCmp::Gt | LoopCmp::Ge => {
                assert!(
                    self.incr < 0,
                    "downward loop ({:?}) needs a negative increment",
                    self.cmp
                );
                let ub = if self.cmp == LoopCmp::Ge {
                    self.ub.checked_sub(1).expect("loop bound overflow")
                } else {
                    self.ub
                };
                if self.lb <= ub {
                    0
                } else {
                    let span = (self.lb as i128) - (ub as i128);
                    let step = -(self.incr as i128);
                    ((span + step - 1) / step) as u64
                }
            }
        }
    }

    /// Map a normalised iteration index back to the source loop-variable
    /// value.
    #[inline]
    pub fn iter_value(&self, logical: u64) -> i64 {
        self.lb + (logical as i64) * self.incr
    }
}

impl From<Range<i64>> for LoopBounds {
    fn from(r: Range<i64>) -> Self {
        LoopBounds::upto(r.start, r.end)
    }
}

/// Closed-form block partition used by `schedule(static)` with no chunk.
///
/// Matches libomp's `kmp_sch_static`: iterations are divided into `nth`
/// nearly equal contiguous blocks; the first `trip % nth` threads receive one
/// extra iteration. Returns the normalised range for `tid`.
pub fn static_block(tid: usize, nth: usize, trip: u64) -> Range<u64> {
    assert!(nth >= 1 && tid < nth);
    let nth = nth as u64;
    let tid = tid as u64;
    let small = trip / nth;
    let extras = trip % nth;
    let (start, len) = if tid < extras {
        (tid * (small + 1), small + 1)
    } else {
        (extras * (small + 1) + (tid - extras) * small, small)
    };
    start..start + len
}

/// Iterator over the chunks of `schedule(static, chunk)` for one thread:
/// chunk `k` of the loop goes to thread `k % nth` (round-robin), i.e. thread
/// `tid` executes chunks `tid, tid + nth, tid + 2*nth, ...`.
///
/// This matches the `__kmpc_for_static_init` contract for
/// `kmp_sch_static_chunked`, where the returned stride is `chunk * nth`.
#[derive(Debug, Clone)]
pub struct StaticChunked {
    next_start: u64,
    stride: u64,
    chunk: u64,
    trip: u64,
}

impl StaticChunked {
    pub fn new(tid: usize, nth: usize, trip: u64, chunk: i64) -> Self {
        assert!(chunk >= 1, "chunk sizes must be positive");
        assert!(nth >= 1 && tid < nth);
        let chunk = chunk as u64;
        StaticChunked {
            next_start: tid as u64 * chunk,
            stride: chunk * nth as u64,
            chunk,
            trip,
        }
    }
}

impl Iterator for StaticChunked {
    type Item = Range<u64>;

    fn next(&mut self) -> Option<Range<u64>> {
        if self.next_start >= self.trip {
            return None;
        }
        let start = self.next_start;
        let end = (start + self.chunk).min(self.trip);
        self.next_start = match start.checked_add(self.stride) {
            Some(v) => v,
            None => self.trip,
        };
        Some(start..end)
    }
}

/// Default chunk size for `schedule(dynamic)` with no chunk clause (the
/// OpenMP spec mandates 1).
pub const DYNAMIC_DEFAULT_CHUNK: u64 = 1;

/// Shared dispatch state for `schedule(dynamic[, chunk])`.
///
/// Threads race on a single atomic iteration cursor; each successful
/// fetch-add claims the next `chunk` iterations. This is the
/// `__kmpc_dispatch_next` protocol for `kmp_sch_dynamic_chunked`.
#[derive(Debug)]
pub struct DynamicDispatch {
    cursor: AtomicU64,
    trip: u64,
    chunk: u64,
}

impl DynamicDispatch {
    pub fn new(trip: u64, chunk: Option<i64>) -> Self {
        let chunk = chunk.map(|c| c.max(1) as u64).unwrap_or(DYNAMIC_DEFAULT_CHUNK);
        DynamicDispatch {
            cursor: AtomicU64::new(0),
            trip,
            chunk,
        }
    }

    /// Claim the next chunk, or `None` when the iteration space is exhausted.
    pub fn next(&self) -> Option<Range<u64>> {
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.trip {
            return None;
        }
        Some(start..(start + self.chunk).min(self.trip))
    }

    /// The chunk size in effect.
    pub fn chunk(&self) -> u64 {
        self.chunk
    }
}

/// Shared dispatch state for `schedule(guided[, chunk])`.
///
/// Chunks start large and decay exponentially: each grab takes
/// `ceil(remaining / (2 * nth))` iterations, never less than the clause chunk
/// (default 1). This follows libomp's `kmp_sch_guided_chunked` shape.
#[derive(Debug)]
pub struct GuidedDispatch {
    taken: AtomicU64,
    trip: u64,
    nth: u64,
    min_chunk: u64,
}

impl GuidedDispatch {
    pub fn new(trip: u64, nth: usize, chunk: Option<i64>) -> Self {
        GuidedDispatch {
            taken: AtomicU64::new(0),
            trip,
            nth: nth.max(1) as u64,
            min_chunk: chunk.map(|c| c.max(1) as u64).unwrap_or(1),
        }
    }

    /// Claim the next (decaying) chunk.
    pub fn next(&self) -> Option<Range<u64>> {
        loop {
            let taken = self.taken.load(Ordering::Relaxed);
            if taken >= self.trip {
                return None;
            }
            let remaining = self.trip - taken;
            let chunk = (remaining.div_ceil(2 * self.nth)).max(self.min_chunk);
            let chunk = chunk.min(remaining);
            match self.taken.compare_exchange_weak(
                taken,
                taken + chunk,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(taken..taken + chunk),
                Err(_) => continue,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_count_upward_exclusive() {
        assert_eq!(LoopBounds::upto(0, 10).trip_count(), 10);
        assert_eq!(LoopBounds::upto(3, 10).trip_count(), 7);
        assert_eq!(LoopBounds::upto(10, 10).trip_count(), 0);
        assert_eq!(LoopBounds::upto(11, 10).trip_count(), 0);
        assert_eq!(LoopBounds::upto_by(0, 10, 3).trip_count(), 4); // 0 3 6 9
        assert_eq!(LoopBounds::upto_by(0, 9, 3).trip_count(), 3); // 0 3 6
    }

    #[test]
    fn trip_count_inclusive_fortran_style() {
        // Fortran DO i = 1, n has an inclusive upper bound; the paper notes
        // ports must adjust. The runtime handles it natively via Le.
        let b = LoopBounds {
            lb: 1,
            ub: 10,
            incr: 1,
            cmp: LoopCmp::Le,
        };
        assert_eq!(b.trip_count(), 10);
    }

    #[test]
    fn trip_count_downward() {
        let b = LoopBounds {
            lb: 10,
            ub: 0,
            incr: -1,
            cmp: LoopCmp::Gt,
        };
        assert_eq!(b.trip_count(), 10); // 10,9,...,1
        let b = LoopBounds {
            lb: 10,
            ub: 0,
            incr: -2,
            cmp: LoopCmp::Ge,
        };
        assert_eq!(b.trip_count(), 6); // 10,8,6,4,2,0
    }

    #[test]
    fn iter_value_denormalises() {
        let b = LoopBounds::upto_by(5, 50, 3);
        assert_eq!(b.iter_value(0), 5);
        assert_eq!(b.iter_value(2), 11);
        let b = LoopBounds {
            lb: 10,
            ub: 0,
            incr: -2,
            cmp: LoopCmp::Gt,
        };
        assert_eq!(b.iter_value(3), 4);
    }

    #[test]
    fn static_block_covers_and_balances() {
        for &trip in &[0u64, 1, 7, 64, 100, 12345] {
            for &nth in &[1usize, 2, 3, 7, 128] {
                let mut total = 0;
                let mut prev_end = 0;
                let mut sizes = vec![];
                for tid in 0..nth {
                    let r = static_block(tid, nth, trip);
                    assert_eq!(r.start, prev_end, "blocks must be contiguous");
                    prev_end = r.end;
                    sizes.push(r.end - r.start);
                    total += r.end - r.start;
                }
                assert_eq!(prev_end, trip);
                assert_eq!(total, trip);
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "blocks must be balanced");
            }
        }
    }

    #[test]
    fn static_chunked_round_robin() {
        // trip=10, chunk=2, nth=3: chunks [0,2) [2,4) [4,6) [6,8) [8,10)
        // thread 0: chunks 0,3 -> [0,2),[6,8); thread 1: [2,4),[8,10);
        // thread 2: [4,6).
        let collect = |tid| StaticChunked::new(tid, 3, 10, 2).collect::<Vec<_>>();
        assert_eq!(collect(0), vec![0..2, 6..8]);
        assert_eq!(collect(1), vec![2..4, 8..10]);
        assert_eq!(collect(2), vec![4..6]);
    }

    #[test]
    fn static_chunked_covers_exactly() {
        for &trip in &[0u64, 1, 5, 17, 1000] {
            for &nth in &[1usize, 2, 5, 9] {
                for &chunk in &[1i64, 2, 7, 100] {
                    let mut seen = vec![false; trip as usize];
                    for tid in 0..nth {
                        for r in StaticChunked::new(tid, nth, trip, chunk) {
                            for i in r {
                                assert!(!seen[i as usize], "iteration executed twice");
                                seen[i as usize] = true;
                            }
                        }
                    }
                    assert!(seen.iter().all(|&s| s), "iteration missed");
                }
            }
        }
    }

    #[test]
    fn dynamic_dispatch_covers_exactly() {
        let d = DynamicDispatch::new(103, Some(10));
        let mut seen = [false; 103];
        while let Some(r) = d.next() {
            for i in r {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dynamic_default_chunk_is_one() {
        let d = DynamicDispatch::new(5, None);
        assert_eq!(d.next(), Some(0..1));
        assert_eq!(d.chunk(), 1);
    }

    #[test]
    fn dynamic_empty_loop() {
        let d = DynamicDispatch::new(0, Some(4));
        assert_eq!(d.next(), None);
    }

    #[test]
    fn guided_chunks_decay_and_cover() {
        let g = GuidedDispatch::new(1000, 4, None);
        let mut chunks = vec![];
        let mut covered = 0;
        while let Some(r) = g.next() {
            assert_eq!(r.start, covered, "guided chunks are contiguous");
            covered = r.end;
            chunks.push(r.end - r.start);
        }
        assert_eq!(covered, 1000);
        // First chunk is remaining/(2*nth) = 125; sizes never increase.
        assert_eq!(chunks[0], 125);
        for w in chunks.windows(2) {
            assert!(w[1] <= w[0], "guided chunk sizes must not grow");
        }
        // Tail chunks bottom out at the minimum chunk size (1 here).
        assert_eq!(*chunks.last().unwrap(), 1);
    }

    #[test]
    fn guided_respects_min_chunk() {
        let g = GuidedDispatch::new(100, 8, Some(10));
        let mut sizes = vec![];
        while let Some(r) = g.next() {
            sizes.push(r.end - r.start);
        }
        // All but possibly the final chunk honour the minimum.
        for &s in &sizes[..sizes.len() - 1] {
            assert!(s >= 10);
        }
        assert_eq!(sizes.iter().sum::<u64>(), 100);
    }
}
