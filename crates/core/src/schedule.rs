//! Loop schedules and iteration-space partitioning.
//!
//! This module contains the *pure* scheduling logic shared between the live
//! runtime ([`crate::workshare`], [`crate::kmpc`]) and the ARCHER2 machine
//! model in the `archer-sim` crate: given a normalised iteration space
//! `0..trip_count`, which iterations does thread `tid` of `nth` execute, and
//! in what chunks?
//!
//! The paper lowers worksharing loops to two families of libomp entry points:
//!
//! * `__kmpc_for_static_init` / `__kmpc_for_static_fini` for `static`
//!   schedules — partitioning is a closed-form function of `(tid, nth)`,
//!   computed here by [`static_block`] and [`StaticChunked`];
//! * `__kmpc_dispatch_init` / `__kmpc_dispatch_next` for `dynamic`, `guided`
//!   and `runtime` schedules — threads repeatedly grab chunks from shared
//!   state, modelled by [`DynamicDispatch`] and [`GuidedDispatch`].
//!
//! The dispatch protocol is contention-aware: instead of the textbook single
//! shared cursor (kept in [`legacy`] as fallback and benchmark baseline),
//! the iteration space is carved into per-thread, cache-line-padded ranges
//! up front and threads *steal half* of a victim's remaining range when
//! their own runs dry ([`StealDeck`]). Entry-point semantics are unchanged:
//! `__kmpc_dispatch_next` still hands each caller disjoint chunks until the
//! space is exhausted.
//!
//! Loop bounds are extracted from the source loop exactly as §III-B2
//! describes (lower bound from the init expression, upper bound and
//! comparison operator from the condition, increment from the continuation
//! expression); [`LoopBounds`] normalises all of that to a trip count.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::pad::CachePadded;

/// The schedule kinds supported by the paper's worksharing implementation.
///
/// `runtime` defers the choice to the `run-sched-var` ICV
/// (`OMP_SCHEDULE` / `omp_set_schedule`), mirroring `kmp_sch_runtime`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// `kmp_sch_static` / `kmp_sch_static_chunked`.
    Static,
    /// `kmp_sch_dynamic_chunked`.
    Dynamic,
    /// `kmp_sch_guided_chunked`.
    Guided,
    /// `kmp_sch_runtime`: resolved against the ICVs at loop entry.
    Runtime,
}

/// A schedule clause: kind plus optional chunk size.
///
/// In the paper's AST encoding this is a 3-bit kind and a 29-bit chunk packed
/// into one `u32` of the `extra_data` array, with chunk 0 meaning
/// "unspecified" (chunks must be positive per the OpenMP spec). The front-end
/// crate reproduces that packing; here we keep the decoded form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Schedule {
    pub kind: ScheduleKind,
    /// `None` = no chunk specified. Always `>= 1` when `Some`.
    pub chunk: Option<i64>,
}

impl Schedule {
    /// `schedule(static)`.
    pub const fn static_default() -> Self {
        Schedule {
            kind: ScheduleKind::Static,
            chunk: None,
        }
    }

    /// `schedule(static, chunk)`.
    pub const fn static_chunked(chunk: i64) -> Self {
        Schedule {
            kind: ScheduleKind::Static,
            chunk: Some(chunk),
        }
    }

    /// `schedule(dynamic[, chunk])`.
    pub const fn dynamic(chunk: Option<i64>) -> Self {
        Schedule {
            kind: ScheduleKind::Dynamic,
            chunk,
        }
    }

    /// `schedule(guided[, chunk])`.
    pub const fn guided(chunk: Option<i64>) -> Self {
        Schedule {
            kind: ScheduleKind::Guided,
            chunk,
        }
    }

    /// `schedule(runtime)`.
    pub const fn runtime() -> Self {
        Schedule {
            kind: ScheduleKind::Runtime,
            chunk: None,
        }
    }
}

/// Comparison operator of the source loop condition (taken directly from the
/// Zig `while` condition per §III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopCmp {
    /// `i < ub`
    Lt,
    /// `i <= ub`
    Le,
    /// `i > ub`
    Gt,
    /// `i >= ub`
    Ge,
}

/// Raw loop bounds as extracted from the source loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopBounds {
    /// Initial value of the loop counter.
    pub lb: i64,
    /// Right-hand side of the comparison.
    pub ub: i64,
    /// Signed increment applied by the continuation expression.
    pub incr: i64,
    /// Comparison operator.
    pub cmp: LoopCmp,
}

/// Typed error for non-conforming loop/schedule parameters.
///
/// Returned by the fallible entry points ([`LoopBounds::try_trip_count`],
/// [`StaticChunked::try_new`], [`crate::kmpc::for_static_init`],
/// [`crate::kmpc::dispatch_init`]); the panicking convenience wrappers
/// panic with exactly this error's `Display` text, so both surfaces report
/// identical messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The loop increment is 0: the loop cannot make progress.
    ZeroIncrement,
    /// The increment's sign cannot reach the bound (e.g. a `<` loop with a
    /// negative step).
    WrongDirection { cmp: LoopCmp },
    /// An inclusive bound at the integer domain edge overflowed.
    BoundOverflow,
    /// A chunk size below 1.
    NonPositiveChunk(i64),
    /// `tid`/`nth` do not describe a valid team member.
    BadThread { tid: usize, nth: usize },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::ZeroIncrement => {
                write!(f, "worksharing loop increment must be nonzero")
            }
            ScheduleError::WrongDirection { cmp } => match cmp {
                LoopCmp::Lt | LoopCmp::Le => {
                    write!(f, "upward loop ({cmp:?}) needs a positive increment")
                }
                LoopCmp::Gt | LoopCmp::Ge => {
                    write!(f, "downward loop ({cmp:?}) needs a negative increment")
                }
            },
            ScheduleError::BoundOverflow => write!(f, "loop bound overflow"),
            ScheduleError::NonPositiveChunk(_) => write!(f, "chunk sizes must be positive"),
            ScheduleError::BadThread { tid, nth } => {
                write!(f, "thread id {tid} is not valid for a team of {nth}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl LoopBounds {
    /// An upward, exclusive loop `for i in lb..ub` with unit stride.
    pub const fn upto(lb: i64, ub: i64) -> Self {
        LoopBounds {
            lb,
            ub,
            incr: 1,
            cmp: LoopCmp::Lt,
        }
    }

    /// An upward, exclusive loop with a stride.
    pub const fn upto_by(lb: i64, ub: i64, incr: i64) -> Self {
        LoopBounds {
            lb,
            ub,
            incr,
            cmp: LoopCmp::Lt,
        }
    }

    /// Number of iterations the loop executes ("trip count").
    ///
    /// Returns 0 for loops whose condition is false on entry. Panics on a
    /// zero increment or an increment whose sign cannot make progress (those
    /// are non-conforming loops the compiler would reject); the panic text
    /// is [`ScheduleError`]'s `Display`. Use [`LoopBounds::try_trip_count`]
    /// for the fallible form.
    pub fn trip_count(&self) -> u64 {
        self.try_trip_count().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`LoopBounds::trip_count`]: returns the typed
    /// [`ScheduleError`] instead of panicking on non-conforming loops.
    pub fn try_trip_count(&self) -> Result<u64, ScheduleError> {
        if self.incr == 0 {
            return Err(ScheduleError::ZeroIncrement);
        }
        match self.cmp {
            LoopCmp::Lt | LoopCmp::Le => {
                if self.incr < 0 {
                    return Err(ScheduleError::WrongDirection { cmp: self.cmp });
                }
                let ub = if self.cmp == LoopCmp::Le {
                    self.ub.checked_add(1).ok_or(ScheduleError::BoundOverflow)?
                } else {
                    self.ub
                };
                if self.lb >= ub {
                    Ok(0)
                } else {
                    let span = (ub as i128) - (self.lb as i128);
                    Ok(((span + self.incr as i128 - 1) / self.incr as i128) as u64)
                }
            }
            LoopCmp::Gt | LoopCmp::Ge => {
                if self.incr > 0 {
                    return Err(ScheduleError::WrongDirection { cmp: self.cmp });
                }
                let ub = if self.cmp == LoopCmp::Ge {
                    self.ub.checked_sub(1).ok_or(ScheduleError::BoundOverflow)?
                } else {
                    self.ub
                };
                if self.lb <= ub {
                    Ok(0)
                } else {
                    let span = (self.lb as i128) - (ub as i128);
                    let step = -(self.incr as i128);
                    Ok(((span + step - 1) / step) as u64)
                }
            }
        }
    }

    /// Map a normalised iteration index back to the source loop-variable
    /// value.
    #[inline]
    pub fn iter_value(&self, logical: u64) -> i64 {
        self.lb + (logical as i64) * self.incr
    }
}

impl From<Range<i64>> for LoopBounds {
    fn from(r: Range<i64>) -> Self {
        LoopBounds::upto(r.start, r.end)
    }
}

/// Closed-form block partition used by `schedule(static)` with no chunk.
///
/// Matches libomp's `kmp_sch_static`: iterations are divided into `nth`
/// nearly equal contiguous blocks; the first `trip % nth` threads receive one
/// extra iteration. Returns the normalised range for `tid`.
pub fn static_block(tid: usize, nth: usize, trip: u64) -> Range<u64> {
    assert!(nth >= 1 && tid < nth);
    let nth = nth as u64;
    let tid = tid as u64;
    let small = trip / nth;
    let extras = trip % nth;
    let (start, len) = if tid < extras {
        (tid * (small + 1), small + 1)
    } else {
        (extras * (small + 1) + (tid - extras) * small, small)
    };
    start..start + len
}

/// Iterator over the chunks of `schedule(static, chunk)` for one thread:
/// chunk `k` of the loop goes to thread `k % nth` (round-robin), i.e. thread
/// `tid` executes chunks `tid, tid + nth, tid + 2*nth, ...`.
///
/// This matches the `__kmpc_for_static_init` contract for
/// `kmp_sch_static_chunked`, where the returned stride is `chunk * nth`.
#[derive(Debug, Clone)]
pub struct StaticChunked {
    next_start: u64,
    stride: u64,
    chunk: u64,
    trip: u64,
}

impl StaticChunked {
    /// Panicking constructor; the panic text is [`ScheduleError`]'s
    /// `Display`. Use [`StaticChunked::try_new`] for the fallible form.
    pub fn new(tid: usize, nth: usize, trip: u64, chunk: i64) -> Self {
        Self::try_new(tid, nth, trip, chunk).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects non-positive chunks and invalid
    /// `tid`/`nth` with a typed [`ScheduleError`].
    pub fn try_new(tid: usize, nth: usize, trip: u64, chunk: i64) -> Result<Self, ScheduleError> {
        if chunk < 1 {
            return Err(ScheduleError::NonPositiveChunk(chunk));
        }
        if nth < 1 || tid >= nth {
            return Err(ScheduleError::BadThread { tid, nth });
        }
        let chunk = chunk as u64;
        Ok(StaticChunked {
            next_start: tid as u64 * chunk,
            stride: chunk * nth as u64,
            chunk,
            trip,
        })
    }
}

impl StaticChunked {
    /// Greedy claim for bulk-kernel loops (`ws_begin_bulk`): when this
    /// thread owns *every* remaining chunk — a single-thread team, where
    /// the round-robin stride equals the chunk size so consecutive chunks
    /// are contiguous — coalesce them into one claim instead of paying
    /// the claim protocol and kernel prologue per clause-sized chunk.
    /// With more than one thread the chunks interleave and the static
    /// *mapping* of iterations to threads must not change, so the claim
    /// falls back to the per-chunk iterator.
    pub fn next_bulk(&mut self) -> Option<Range<u64>> {
        if self.stride == self.chunk && self.next_start < self.trip {
            let start = self.next_start;
            self.next_start = self.trip;
            return Some(start..self.trip);
        }
        self.next()
    }
}

impl Iterator for StaticChunked {
    type Item = Range<u64>;

    fn next(&mut self) -> Option<Range<u64>> {
        if self.next_start >= self.trip {
            return None;
        }
        let start = self.next_start;
        let end = (start + self.chunk).min(self.trip);
        self.next_start = match start.checked_add(self.stride) {
            Some(v) => v,
            None => self.trip,
        };
        Some(start..end)
    }
}

/// Default chunk size for `schedule(dynamic)` with no chunk clause (the
/// OpenMP spec mandates 1).
pub const DYNAMIC_DEFAULT_CHUNK: u64 = 1;

/// How a dispatched chunk was obtained — the claim-path provenance reported
/// to [`crate::trace`] (`ompt_dispatch_ws_loop_chunk`-style event payload).
///
/// `Owned` covers claims served from the calling thread's own deck slot or
/// owner-private batch cache (including remainders a previous steal
/// published there — the *claim* itself was local and uncontended), plus
/// every static-schedule chunk and the legacy shared-cursor protocols.
/// `Stolen` marks claims that CAS-carved a range out of a victim's slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkOrigin {
    Owned,
    Stolen,
}

/// Largest trip count the work-stealing deck handles: ranges are packed as
/// two `u32` halves into one `AtomicU64`, and the owner's fetch-add claims
/// need headroom in the low half (see [`StealSlot::range`]). Loops longer
/// than this fall back to the [`legacy`] shared-cursor protocol.
pub const STEAL_MAX_TRIP: u64 = 1 << 31;

/// Owner claims are batched: one atomic RMW claims `chunk * STEAL_BATCH`
/// iterations into an owner-private cache, which then serves `chunk`-sized
/// pieces with no atomics at all. This amortises the per-chunk atomic cost
/// that made the shared cursor the fork/dispatch bottleneck. Public so the
/// analytic simulator's dispatch cost model stays in sync with the runtime.
pub const STEAL_BATCH: u64 = 8;

/// Cap on a single owner batch so `lo + batch` can never carry out of the
/// low `u32` half of the packed range word.
const STEAL_BATCH_CAP: u64 = 1 << 29;

/// Pack a remaining range `[lo, hi)` into one atomic word.
#[inline]
const fn pack(lo: u32, hi: u32) -> u64 {
    ((hi as u64) << 32) | lo as u64
}

/// Unpack `(lo, hi)` from a range word. `lo >= hi` means empty.
#[inline]
const fn unpack(w: u64) -> (u32, u32) {
    (w as u32, (w >> 32) as u32)
}

/// One thread's share of the iteration space, padded to its own cache line.
struct StealSlot {
    /// Remaining owned range packed as `(hi << 32) | lo`. The owner advances
    /// `lo` (a fetch-add on the low half); thieves shrink `hi` by CAS-ing the
    /// whole word. `lo` may overshoot `hi` by at most one batch (the owner
    /// pre-checks emptiness before fetch-adding), so with `hi <= 2^31` and
    /// batches capped at [`STEAL_BATCH_CAP`] the low half never carries into
    /// the high half.
    range: AtomicU64,
    /// Owner-private cache of one claimed batch `(lo, hi, stolen)`, drained
    /// chunk-by-chunk without touching shared state; `stolen` remembers the
    /// batch's [`ChunkOrigin`] for tracing. Never read or written by other
    /// threads (see the `Sync` impl note).
    local: UnsafeCell<(u32, u32, bool)>,
}

// SAFETY: `local` is only ever accessed by the slot's owning thread — the
// `next(tid)` contract says each thread passes its own team id. All
// cross-thread traffic goes through the atomic `range` word.
unsafe impl Sync for StealSlot {}

/// Work-stealing dispatch core shared by [`DynamicDispatch`] and
/// [`GuidedDispatch`].
///
/// The iteration space is carved into `nth` contiguous blocks (the same
/// partition as `schedule(static)`) held in per-thread [`StealSlot`]s. A
/// thread claims from its own slot until it drains, then steals the upper
/// half of a victim's remaining range, keeps one batch, and publishes the
/// rest in its own slot for others to steal in turn.
///
/// All atomics here are `Relaxed`: the claimed bounds travel *inside* the
/// atomic word itself, atomic RMWs guarantee each iteration is claimed
/// exactly once regardless of ordering, and the loop body's user data is
/// ordered by the construct's barriers, not by the dispatch protocol.
pub(crate) struct StealDeck {
    slots: Box<[CachePadded<StealSlot>]>,
    /// Has any thread ever entered the steal path on this deck? Sticky,
    /// set before the victim scan. While false, every slot's remaining
    /// range is untouched by thieves, so bulk claimants
    /// ([`Self::next_dynamic_bulk`]) may take their whole batch in one
    /// claim without starving anyone: a thread that *would* want to
    /// steal flips the flag first, and from then on bulk claims degrade
    /// to the chunk-at-a-time protocol that leaves stealable remainders.
    contended: AtomicBool,
}

impl StealDeck {
    fn new(trip: u64, nth: usize) -> Self {
        debug_assert!(trip <= STEAL_MAX_TRIP);
        let nth = nth.max(1);
        let slots = (0..nth)
            .map(|tid| {
                let r = static_block(tid, nth, trip);
                CachePadded::new(StealSlot {
                    range: AtomicU64::new(pack(r.start as u32, r.end as u32)),
                    local: UnsafeCell::new((0, 0, false)),
                })
            })
            .collect();
        StealDeck {
            slots,
            contended: AtomicBool::new(false),
        }
    }

    /// Claim up to `want` iterations from this thread's own slot.
    #[inline]
    fn claim_local(&self, tid: usize, want: u64) -> Option<(u32, u32)> {
        let slot = &self.slots[tid];
        // Pre-check emptiness so repeated calls on a drained slot never
        // fetch-add: this bounds `lo`'s overshoot past `hi` to one batch,
        // which the packing headroom absorbs.
        let (lo, hi) = unpack(slot.range.load(Ordering::Relaxed));
        if lo >= hi {
            return None;
        }
        let (lo, hi) = unpack(slot.range.fetch_add(want, Ordering::Relaxed));
        if lo >= hi {
            // A thief shrank `hi` below `lo` between the check and the claim.
            return None;
        }
        Some((lo, ((lo as u64 + want).min(hi as u64)) as u32))
    }

    /// Steal roughly half of some other thread's remaining range.
    ///
    /// Scans victims round-robin starting after `tid`; takes the *upper*
    /// half `[mid, hi)` so the victim's owner-side fetch-add on `lo` stays
    /// valid whether the CAS lands before or after it. Ranges shorter than
    /// `2 * min_keep` are stolen whole: splitting them would leave sub-chunk
    /// remnants, and remnants smaller than one iteration's worth of interest
    /// could outlive every active claimant.
    fn steal(&self, tid: usize, min_keep: u64) -> Option<(u32, u32)> {
        // Sticky contention mark, set *before* scanning victims so a bulk
        // claimant racing this thief sees the flag no later than the thief
        // sees the claimant's slot state (both sides are RMW/load on the
        // same slot words; the flag is advisory — see `next_dynamic_bulk`).
        self.contended.store(true, Ordering::Relaxed);
        let n = self.slots.len();
        for off in 1..n {
            let slot = &self.slots[(tid + off) % n];
            loop {
                let w = slot.range.load(Ordering::Relaxed);
                let (lo, hi) = unpack(w);
                if lo >= hi {
                    break;
                }
                let rem = (hi - lo) as u64;
                let mid = if rem < 2 * min_keep.max(1) {
                    lo
                } else {
                    lo + (rem / 2) as u32
                };
                // No ABA hazard despite the plain-store publish in
                // `install`: ranges only ever re-enter a slot with a
                // strictly larger `lo` than any value the slot held before
                // (steals take upper halves, owners only advance `lo`), so a
                // stale `w` can never reappear as the current word.
                if slot
                    .range
                    .compare_exchange_weak(w, pack(lo, mid), Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    return Some((mid, hi));
                }
            }
        }
        // Exhaustion probe: every victim scanned, nothing left to take.
        // Off the claim hot path — reached once per thread per construct.
        crate::trace::steal_failure();
        None
    }

    /// Publish a stolen remainder in this thread's own (drained) slot so
    /// other thieves can find it. Plain store: thieves skip empty slots, so
    /// nothing CASes against the pre-store word.
    fn install(&self, tid: usize, lo: u32, hi: u32) {
        self.slots[tid].range.store(pack(lo, hi), Ordering::Relaxed);
    }

    /// `schedule(dynamic)` claim protocol: fixed `chunk`-sized pieces, with
    /// owner claims batched [`STEAL_BATCH`] chunks at a time.
    #[inline]
    fn next_dynamic(&self, tid: usize, chunk: u64) -> Option<(Range<u64>, ChunkOrigin)> {
        let slot = &self.slots[tid];
        // SAFETY: `local` is owner-private per the `next(tid)` contract.
        let cache = unsafe { &mut *slot.local.get() };
        loop {
            if cache.0 < cache.1 {
                let lo = cache.0;
                let hi = ((lo as u64 + chunk).min(cache.1 as u64)) as u32;
                cache.0 = hi;
                let origin = if cache.2 {
                    ChunkOrigin::Stolen
                } else {
                    ChunkOrigin::Owned
                };
                return Some((lo as u64..hi as u64, origin));
            }
            let batch = (chunk.saturating_mul(STEAL_BATCH)).min(STEAL_BATCH_CAP);
            if let Some((lo, hi)) = self.claim_local(tid, batch) {
                *cache = (lo, hi, false);
                continue;
            }
            match self.steal(tid, 1) {
                Some((lo, hi)) => {
                    // Keep one batch for ourselves, publish the rest.
                    let take = ((lo as u64 + batch).min(hi as u64)) as u32;
                    *cache = (lo, take, true);
                    if take < hi {
                        self.install(tid, take, hi);
                    }
                }
                None => return None,
            }
        }
    }

    /// Bulk variant of [`Self::next_dynamic`] for claimants whose chunk
    /// body is a single native kernel (`--opt=3` `BulkLoop`): while the
    /// deck is uncontended, hand back the *entire* owner batch in one
    /// claim instead of `chunk`-sized pieces, amortising the claim
    /// protocol (and the VM's per-chunk `ws_next`/kernel-entry overhead)
    /// across `chunk * STEAL_BATCH` iterations.
    ///
    /// The contention flag is advisory, not a lock: a thief that races a
    /// bulk claim still operates on the same atomic range words, so every
    /// iteration is claimed exactly once either way — a lost race only
    /// means one oversized chunk that could have been split. Once the
    /// flag is up it stays up, and this degrades to `next_dynamic`
    /// exactly, preserving stealable remainders under real contention.
    #[inline]
    fn next_dynamic_bulk(&self, tid: usize, chunk: u64) -> Option<(Range<u64>, ChunkOrigin)> {
        if self.contended.load(Ordering::Relaxed) {
            return self.next_dynamic(tid, chunk);
        }
        let slot = &self.slots[tid];
        // SAFETY: `local` is owner-private per the `next(tid)` contract.
        let cache = unsafe { &mut *slot.local.get() };
        if cache.0 < cache.1 {
            // Drain whatever a previous chunked claim left cached.
            let (lo, hi) = (cache.0, cache.1);
            cache.0 = hi;
            let origin = if cache.2 {
                ChunkOrigin::Stolen
            } else {
                ChunkOrigin::Owned
            };
            return Some((lo as u64..hi as u64, origin));
        }
        let batch = (chunk.saturating_mul(STEAL_BATCH)).min(STEAL_BATCH_CAP);
        if let Some((lo, hi)) = self.claim_local(tid, batch) {
            return Some((lo as u64..hi as u64, ChunkOrigin::Owned));
        }
        // Own slot drained: fall back to the stealing protocol (which
        // raises the contention flag before touching any victim).
        self.next_dynamic(tid, chunk)
    }

    /// `schedule(guided)` claim protocol: each claim takes half the *local*
    /// remaining range (never less than `min_chunk`). Since each slot starts
    /// with `~trip/nth` iterations, the first chunk is `~trip/(2*nth)` —
    /// the same decay shape as the classic global formula
    /// `ceil(remaining / (2 * nth))`, without the shared CAS hot spot.
    fn next_guided(&self, tid: usize, min_chunk: u64) -> Option<(Range<u64>, ChunkOrigin)> {
        // A claim never leaves a remnant below `min_chunk` behind: the spec
        // allows only final-remainder chunks below the clause minimum.
        let sized = |rem: u64| {
            let take = rem.div_ceil(2).max(min_chunk).min(rem);
            if rem - take < min_chunk {
                rem
            } else {
                take
            }
        };
        let slot = &self.slots[tid];
        loop {
            let w = slot.range.load(Ordering::Relaxed);
            let (lo, hi) = unpack(w);
            if lo < hi {
                let take = sized((hi - lo) as u64);
                if slot
                    .range
                    .compare_exchange_weak(
                        w,
                        pack(lo + take as u32, hi),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return Some((lo as u64..lo as u64 + take, ChunkOrigin::Owned));
                }
                // Raced with a thief; re-read and retry.
                continue;
            }
            match self.steal(tid, min_chunk) {
                Some((slo, shi)) => {
                    let take = sized((shi - slo) as u64);
                    let split = slo + take as u32;
                    if split < shi {
                        self.install(tid, split, shi);
                    }
                    return Some((slo as u64..split as u64, ChunkOrigin::Stolen));
                }
                None => return None,
            }
        }
    }

    /// Sum of remaining iterations across all slots (diagnostics only; racy
    /// by nature).
    fn remaining(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| {
                let (lo, hi) = unpack(s.range.load(Ordering::Relaxed));
                hi.saturating_sub(lo) as u64
            })
            .sum()
    }
}

impl fmt::Debug for StealDeck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StealDeck")
            .field("slots", &self.slots.len())
            .field("remaining", &self.remaining())
            .finish()
    }
}

/// Dispatch state for `schedule(dynamic[, chunk])`: the
/// `__kmpc_dispatch_next` protocol for `kmp_sch_dynamic_chunked`.
///
/// Backed by the work-stealing [`StealDeck`] (per-thread padded ranges,
/// steal-half on drain); loops longer than [`STEAL_MAX_TRIP`] fall back to
/// the [`legacy::SharedCursorDispatch`] single-cursor protocol.
#[derive(Debug)]
pub struct DynamicDispatch {
    core: DynCore,
    chunk: u64,
}

#[derive(Debug)]
enum DynCore {
    Steal(StealDeck),
    Legacy(legacy::SharedCursorDispatch),
}

impl DynamicDispatch {
    pub fn new(trip: u64, nth: usize, chunk: Option<i64>) -> Self {
        let chunk = chunk
            .map(|c| c.max(1) as u64)
            .unwrap_or(DYNAMIC_DEFAULT_CHUNK);
        let core = if trip <= STEAL_MAX_TRIP {
            DynCore::Steal(StealDeck::new(trip, nth))
        } else {
            DynCore::Legacy(legacy::SharedCursorDispatch::new(trip, chunk))
        };
        DynamicDispatch { core, chunk }
    }

    /// Claim the next chunk for thread `tid`, or `None` when this thread's
    /// range has drained and no victim has work left to steal.
    ///
    /// Each thread must pass its own team id: per-thread state keyed by
    /// `tid` is accessed without locks.
    #[inline]
    pub fn next(&self, tid: usize) -> Option<Range<u64>> {
        self.next_with_origin(tid).map(|(r, _)| r)
    }

    /// [`next`](Self::next) plus the chunk's claim-path provenance, for the
    /// observability layer.
    #[inline]
    pub fn next_with_origin(&self, tid: usize) -> Option<(Range<u64>, ChunkOrigin)> {
        match &self.core {
            DynCore::Steal(deck) => deck.next_dynamic(tid, self.chunk),
            DynCore::Legacy(d) => d.next().map(|r| (r, ChunkOrigin::Owned)),
        }
    }

    /// Bulk claim for single-kernel chunk bodies: whole owner batches
    /// while the deck is uncontended, [`Self::next_with_origin`]'s
    /// chunk-at-a-time protocol once any thread has entered the steal
    /// path. The legacy shared-cursor core has no per-thread slots to
    /// coarsen, so it dispatches unchanged.
    #[inline]
    pub fn next_bulk_with_origin(&self, tid: usize) -> Option<(Range<u64>, ChunkOrigin)> {
        match &self.core {
            DynCore::Steal(deck) => deck.next_dynamic_bulk(tid, self.chunk),
            DynCore::Legacy(d) => d.next().map(|r| (r, ChunkOrigin::Owned)),
        }
    }

    /// [`Self::next_bulk_with_origin`] without the provenance payload.
    #[inline]
    pub fn next_bulk(&self, tid: usize) -> Option<Range<u64>> {
        self.next_bulk_with_origin(tid).map(|(r, _)| r)
    }

    /// The chunk size in effect.
    pub fn chunk(&self) -> u64 {
        self.chunk
    }
}

/// Dispatch state for `schedule(guided[, chunk])`.
///
/// Chunks start large and decay exponentially, following libomp's
/// `kmp_sch_guided_chunked` shape: the first chunk is `~trip/(2*nth)` and
/// each subsequent claim halves a thread's remaining share, never dropping
/// below the clause chunk (default 1). Backed by the same work-stealing
/// deck as [`DynamicDispatch`].
#[derive(Debug)]
pub struct GuidedDispatch {
    core: GuidedCore,
    min_chunk: u64,
}

#[derive(Debug)]
enum GuidedCore {
    Steal(StealDeck),
    Legacy(legacy::SharedGuidedDispatch),
}

impl GuidedDispatch {
    pub fn new(trip: u64, nth: usize, chunk: Option<i64>) -> Self {
        let min_chunk = chunk.map(|c| c.max(1) as u64).unwrap_or(1);
        let core = if trip <= STEAL_MAX_TRIP {
            GuidedCore::Steal(StealDeck::new(trip, nth))
        } else {
            GuidedCore::Legacy(legacy::SharedGuidedDispatch::new(trip, nth, chunk))
        };
        GuidedDispatch { core, min_chunk }
    }

    /// Claim the next (decaying) chunk for thread `tid`. Same `tid` contract
    /// as [`DynamicDispatch::next`].
    #[inline]
    pub fn next(&self, tid: usize) -> Option<Range<u64>> {
        self.next_with_origin(tid).map(|(r, _)| r)
    }

    /// [`next`](Self::next) plus the chunk's claim-path provenance, for the
    /// observability layer.
    #[inline]
    pub fn next_with_origin(&self, tid: usize) -> Option<(Range<u64>, ChunkOrigin)> {
        match &self.core {
            GuidedCore::Steal(deck) => deck.next_guided(tid, self.min_chunk),
            GuidedCore::Legacy(g) => g.next().map(|r| (r, ChunkOrigin::Owned)),
        }
    }
}

/// The pre-stealing shared-state dispatch protocols.
///
/// Kept for two reasons: loops longer than [`STEAL_MAX_TRIP`] (whose ranges
/// don't fit the packed-`u32` steal words), and as the baseline the
/// `zomp-bench` crate measures the work-stealing protocol against.
pub mod legacy {
    use super::*;

    /// Single shared atomic cursor; every chunk claim is one contended
    /// fetch-add on the same cache line.
    #[derive(Debug)]
    pub struct SharedCursorDispatch {
        cursor: AtomicU64,
        trip: u64,
        chunk: u64,
    }

    impl SharedCursorDispatch {
        pub fn new(trip: u64, chunk: u64) -> Self {
            SharedCursorDispatch {
                cursor: AtomicU64::new(0),
                trip,
                chunk: chunk.max(1),
            }
        }

        /// Claim the next chunk, or `None` once the space is exhausted.
        #[inline]
        pub fn next(&self) -> Option<Range<u64>> {
            // Relaxed: the claimed start travels in the RMW result itself
            // and user data is ordered by the construct barriers.
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.trip {
                return None;
            }
            Some(start..(start + self.chunk).min(self.trip))
        }
    }

    /// Single shared `taken` cell claimed with a CAS loop; chunk sizes
    /// follow the classic global `ceil(remaining / (2 * nth))` formula.
    #[derive(Debug)]
    pub struct SharedGuidedDispatch {
        taken: AtomicU64,
        trip: u64,
        nth: u64,
        min_chunk: u64,
    }

    impl SharedGuidedDispatch {
        pub fn new(trip: u64, nth: usize, chunk: Option<i64>) -> Self {
            SharedGuidedDispatch {
                taken: AtomicU64::new(0),
                trip,
                nth: nth.max(1) as u64,
                min_chunk: chunk.map(|c| c.max(1) as u64).unwrap_or(1),
            }
        }

        /// Claim the next (decaying) chunk.
        pub fn next(&self) -> Option<Range<u64>> {
            loop {
                // Relaxed load/CAS: value-only protocol, same as above.
                let taken = self.taken.load(Ordering::Relaxed);
                if taken >= self.trip {
                    return None;
                }
                let remaining = self.trip - taken;
                let chunk = (remaining.div_ceil(2 * self.nth)).max(self.min_chunk);
                let chunk = chunk.min(remaining);
                match self.taken.compare_exchange_weak(
                    taken,
                    taken + chunk,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return Some(taken..taken + chunk),
                    Err(_) => continue,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_count_upward_exclusive() {
        assert_eq!(LoopBounds::upto(0, 10).trip_count(), 10);
        assert_eq!(LoopBounds::upto(3, 10).trip_count(), 7);
        assert_eq!(LoopBounds::upto(10, 10).trip_count(), 0);
        assert_eq!(LoopBounds::upto(11, 10).trip_count(), 0);
        assert_eq!(LoopBounds::upto_by(0, 10, 3).trip_count(), 4); // 0 3 6 9
        assert_eq!(LoopBounds::upto_by(0, 9, 3).trip_count(), 3); // 0 3 6
    }

    #[test]
    fn trip_count_inclusive_fortran_style() {
        // Fortran DO i = 1, n has an inclusive upper bound; the paper notes
        // ports must adjust. The runtime handles it natively via Le.
        let b = LoopBounds {
            lb: 1,
            ub: 10,
            incr: 1,
            cmp: LoopCmp::Le,
        };
        assert_eq!(b.trip_count(), 10);
    }

    #[test]
    fn trip_count_downward() {
        let b = LoopBounds {
            lb: 10,
            ub: 0,
            incr: -1,
            cmp: LoopCmp::Gt,
        };
        assert_eq!(b.trip_count(), 10); // 10,9,...,1
        let b = LoopBounds {
            lb: 10,
            ub: 0,
            incr: -2,
            cmp: LoopCmp::Ge,
        };
        assert_eq!(b.trip_count(), 6); // 10,8,6,4,2,0
    }

    #[test]
    fn iter_value_denormalises() {
        let b = LoopBounds::upto_by(5, 50, 3);
        assert_eq!(b.iter_value(0), 5);
        assert_eq!(b.iter_value(2), 11);
        let b = LoopBounds {
            lb: 10,
            ub: 0,
            incr: -2,
            cmp: LoopCmp::Gt,
        };
        assert_eq!(b.iter_value(3), 4);
    }

    #[test]
    fn static_block_covers_and_balances() {
        for &trip in &[0u64, 1, 7, 64, 100, 12345] {
            for &nth in &[1usize, 2, 3, 7, 128] {
                let mut total = 0;
                let mut prev_end = 0;
                let mut sizes = vec![];
                for tid in 0..nth {
                    let r = static_block(tid, nth, trip);
                    assert_eq!(r.start, prev_end, "blocks must be contiguous");
                    prev_end = r.end;
                    sizes.push(r.end - r.start);
                    total += r.end - r.start;
                }
                assert_eq!(prev_end, trip);
                assert_eq!(total, trip);
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max - min <= 1, "blocks must be balanced");
            }
        }
    }

    #[test]
    fn static_chunked_round_robin() {
        // trip=10, chunk=2, nth=3: chunks [0,2) [2,4) [4,6) [6,8) [8,10)
        // thread 0: chunks 0,3 -> [0,2),[6,8); thread 1: [2,4),[8,10);
        // thread 2: [4,6).
        let collect = |tid| StaticChunked::new(tid, 3, 10, 2).collect::<Vec<_>>();
        assert_eq!(collect(0), vec![0..2, 6..8]);
        assert_eq!(collect(1), vec![2..4, 8..10]);
        assert_eq!(collect(2), vec![4..6]);
    }

    #[test]
    fn static_chunked_covers_exactly() {
        for &trip in &[0u64, 1, 5, 17, 1000] {
            for &nth in &[1usize, 2, 5, 9] {
                for &chunk in &[1i64, 2, 7, 100] {
                    let mut seen = vec![false; trip as usize];
                    for tid in 0..nth {
                        for r in StaticChunked::new(tid, nth, trip, chunk) {
                            for i in r {
                                assert!(!seen[i as usize], "iteration executed twice");
                                seen[i as usize] = true;
                            }
                        }
                    }
                    assert!(seen.iter().all(|&s| s), "iteration missed");
                }
            }
        }
    }

    #[test]
    fn dynamic_dispatch_covers_exactly() {
        let d = DynamicDispatch::new(103, 1, Some(10));
        let mut seen = [false; 103];
        while let Some(r) = d.next(0) {
            assert!(r.end - r.start <= 10, "chunk granularity exceeded");
            for i in r {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dynamic_single_caller_drains_all_slots_by_stealing() {
        // With a 4-way deck but only thread 0 pulling, the other threads'
        // ranges must be reached via the steal path.
        let d = DynamicDispatch::new(1000, 4, Some(7));
        let mut seen = [false; 1000];
        while let Some(r) = d.next(0) {
            assert!(r.end - r.start <= 7);
            for i in r {
                assert!(!seen[i as usize], "iteration {i} executed twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "steal path missed iterations");
    }

    #[test]
    fn dynamic_concurrent_exactly_once() {
        use std::sync::atomic::AtomicU8;
        const TRIP: usize = 50_000;
        const NTH: usize = 4;
        let d = DynamicDispatch::new(TRIP as u64, NTH, Some(3));
        let hits: Vec<AtomicU8> = (0..TRIP).map(|_| AtomicU8::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..NTH {
                let d = &d;
                let hits = &hits;
                s.spawn(move || {
                    while let Some(r) = d.next(tid) {
                        for i in r {
                            hits[i as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn origins_distinguish_owned_and_stolen() {
        // Thread 0 draining a 4-way deck alone must claim its own block
        // (Owned) and reach the other blocks through steals (Stolen).
        let d = DynamicDispatch::new(1000, 4, Some(7));
        let (mut owned, mut stolen) = (0u64, 0u64);
        let mut total = 0u64;
        while let Some((r, o)) = d.next_with_origin(0) {
            total += r.end - r.start;
            match o {
                ChunkOrigin::Owned => owned += 1,
                ChunkOrigin::Stolen => stolen += 1,
            }
        }
        assert_eq!(total, 1000);
        assert!(owned > 0, "own block must be claimed locally");
        assert!(stolen > 0, "other blocks must be reached by stealing");
        // Legacy fallback reports everything as Owned.
        let d = DynamicDispatch::new(STEAL_MAX_TRIP + 10, 4, Some(1 << 20));
        assert_eq!(d.next_with_origin(2).unwrap().1, ChunkOrigin::Owned);
    }

    #[test]
    fn dynamic_default_chunk_is_one() {
        let d = DynamicDispatch::new(5, 1, None);
        assert_eq!(d.next(0), Some(0..1));
        assert_eq!(d.chunk(), 1);
    }

    #[test]
    fn dynamic_empty_loop() {
        let d = DynamicDispatch::new(0, 4, Some(4));
        for tid in 0..4 {
            assert_eq!(d.next(tid), None);
        }
    }

    #[test]
    fn guided_chunks_decay_and_cover() {
        // Single-threaded deck: one slot holding the whole space, so the
        // classic decay shape is exactly reproduced (first chunk trip/2).
        let g = GuidedDispatch::new(1000, 1, None);
        let mut chunks = vec![];
        let mut covered = 0;
        while let Some(r) = g.next(0) {
            assert_eq!(r.start, covered, "guided chunks are contiguous");
            covered = r.end;
            chunks.push(r.end - r.start);
        }
        assert_eq!(covered, 1000);
        assert_eq!(chunks[0], 500);
        for w in chunks.windows(2) {
            assert!(w[1] <= w[0], "guided chunk sizes must not grow");
        }
        // Tail chunks bottom out at the minimum chunk size (1 here).
        assert_eq!(*chunks.last().unwrap(), 1);
    }

    #[test]
    fn guided_first_chunk_matches_global_formula() {
        // 4 slots of 250 each; the first claim halves the local share:
        // 125 = trip / (2 * nth), the paper's guided first-chunk size.
        let g = GuidedDispatch::new(1000, 4, None);
        let r = g.next(0).unwrap();
        assert_eq!(r.end - r.start, 125);
    }

    #[test]
    fn guided_single_caller_drains_all_slots_by_stealing() {
        let g = GuidedDispatch::new(997, 8, Some(5));
        let mut seen = [false; 997];
        while let Some(r) = g.next(3) {
            for i in r {
                assert!(!seen[i as usize], "iteration {i} executed twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn guided_respects_min_chunk() {
        let g = GuidedDispatch::new(100, 8, Some(10));
        let mut sizes = vec![];
        let mut total = 0u64;
        while let Some(r) = g.next(0) {
            sizes.push(r.end - r.start);
            total += r.end - r.start;
        }
        // Claims honour the minimum except where a range fragment (slot or
        // steal split) runs out below it.
        let below_min = sizes.iter().filter(|&&s| s < 10).count();
        assert!(below_min <= 24, "too many sub-minimum claims: {sizes:?}");
        assert_eq!(total, 100);
    }

    #[test]
    fn legacy_shared_cursor_matches_old_protocol() {
        let d = legacy::SharedCursorDispatch::new(103, 10);
        let mut covered = 0;
        while let Some(r) = d.next() {
            assert_eq!(r.start, covered, "shared cursor chunks are sequential");
            covered = r.end;
        }
        assert_eq!(covered, 103);
    }

    #[test]
    fn legacy_guided_first_chunk_is_global_formula() {
        let g = legacy::SharedGuidedDispatch::new(1000, 4, None);
        let mut covered = 0;
        let mut first = None;
        while let Some(r) = g.next() {
            assert_eq!(r.start, covered);
            covered = r.end;
            first.get_or_insert(r.end - r.start);
        }
        assert_eq!(covered, 1000);
        assert_eq!(first, Some(125)); // remaining / (2 * nth)
    }

    #[test]
    fn huge_trip_falls_back_to_legacy() {
        let d = DynamicDispatch::new(STEAL_MAX_TRIP + 10, 4, Some(1 << 20));
        assert!(matches!(d.core, DynCore::Legacy(_)));
        // First chunks are sequential from 0 (shared-cursor behaviour).
        assert_eq!(d.next(2), Some(0..(1 << 20)));
        let g = GuidedDispatch::new(STEAL_MAX_TRIP + 10, 4, None);
        assert!(matches!(g.core, GuidedCore::Legacy(_)));
        assert!(g.next(1).unwrap().start == 0);
    }
}
