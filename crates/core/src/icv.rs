//! Internal control variables (ICVs) and OpenMP environment handling.
//!
//! The OpenMP specification defines a set of *internal control variables*
//! that govern the behaviour of the runtime: the default team size
//! (`nthreads-var`), the schedule applied by `schedule(runtime)`
//! (`run-sched-var`), whether the implementation may adjust team sizes
//! (`dyn-var`), and so on. Each [`crate::runtime::Runtime`] owns one
//! [`Icvs`] block, seeded from [`crate::runtime::RuntimeConfig`] (the
//! environment, for [`crate::runtime::Runtime::new`]) at construction and
//! subsequently modified through the [`crate::omp`] functions
//! (`set_num_threads`, `set_schedule`, ...).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};

use crate::schedule::{Schedule, ScheduleKind};

/// Hard cap on team size. OpenMP permits oversubscription (more threads than
/// cores); the paper's experiments run up to 128 threads. We allow generous
/// oversubscription so strong-scaling tests work on small hosts.
pub const MAX_THREADS_LIMIT: usize = 512;

/// One ICV block (one per [`crate::runtime::Runtime`]).
///
/// All fields are atomics so that the `omp_set_*` API can be called from any
/// thread without locking, mirroring libomp's global ICV handling for the
/// host device. All accesses are `Relaxed`: each ICV is an independent
/// scalar consulted at construct entry, with no data published through it —
/// the fork that reads it already synchronises the team.
pub struct Icvs {
    /// `nthreads-var`: team size used when a `parallel` region does not carry
    /// a `num_threads` clause.
    nthreads: AtomicUsize,
    /// `dyn-var`: whether the implementation may deliver fewer threads than
    /// requested.
    dynamic: AtomicBool,
    /// `run-sched-var` kind, encoded; see [`encode_sched`].
    run_sched_kind: AtomicUsize,
    /// `run-sched-var` chunk (0 = unspecified).
    run_sched_chunk: AtomicI64,
    /// Detected hardware concurrency (`omp_get_num_procs`).
    num_procs: usize,
}

pub(crate) fn parse_env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

pub(crate) fn parse_env_bool(name: &str) -> Option<bool> {
    let v = std::env::var(name).ok()?;
    match v.trim().to_ascii_lowercase().as_str() {
        "true" | "1" | "yes" | "on" => Some(true),
        "false" | "0" | "no" | "off" => Some(false),
        _ => None,
    }
}

/// Parse an `OMP_SCHEDULE`-style string: `kind[,chunk]`, e.g. `"guided,4"`.
///
/// Unknown kinds fall back to `static` (the behaviour libomp warns about and
/// then adopts). A `monotonic:`/`nonmonotonic:` modifier prefix is accepted
/// and ignored, as the paper's runtime does not distinguish them.
pub fn parse_omp_schedule(s: &str) -> Schedule {
    let s = s.trim().to_ascii_lowercase();
    let s = s
        .strip_prefix("monotonic:")
        .or_else(|| s.strip_prefix("nonmonotonic:"))
        .unwrap_or(&s);
    let (kind, chunk) = match s.split_once(',') {
        Some((k, c)) => (k.trim(), c.trim().parse::<i64>().ok().filter(|&c| c > 0)),
        None => (s, None),
    };
    match kind {
        "dynamic" => Schedule {
            kind: ScheduleKind::Dynamic,
            chunk,
        },
        "guided" => Schedule {
            kind: ScheduleKind::Guided,
            chunk,
        },
        "auto" => Schedule {
            kind: ScheduleKind::Static,
            chunk: None,
        },
        // "static" and anything unrecognised.
        _ => Schedule {
            kind: ScheduleKind::Static,
            chunk,
        },
    }
}

pub(crate) fn encode_sched(kind: ScheduleKind) -> usize {
    match kind {
        ScheduleKind::Static => 0,
        ScheduleKind::Dynamic => 1,
        ScheduleKind::Guided => 2,
        ScheduleKind::Runtime => 3,
    }
}

pub(crate) fn decode_sched(v: usize) -> ScheduleKind {
    match v {
        1 => ScheduleKind::Dynamic,
        2 => ScheduleKind::Guided,
        3 => ScheduleKind::Runtime,
        _ => ScheduleKind::Static,
    }
}

impl Default for Icvs {
    fn default() -> Self {
        Icvs::with_overrides(None, None, None)
    }
}

impl Icvs {
    /// Construct an ICV block with explicit overrides; `None` fields take
    /// the OpenMP defaults (team size = detected hardware concurrency,
    /// `dyn-var` = false, `run-sched-var` = static). Environment handling
    /// lives in [`crate::runtime::RuntimeConfig::from_env`] so nothing here
    /// is latched per process.
    pub fn with_overrides(
        nthreads: Option<usize>,
        dynamic: Option<bool>,
        run_schedule: Option<Schedule>,
    ) -> Self {
        let num_procs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let nthreads = nthreads
            .filter(|&n| n >= 1)
            .unwrap_or(num_procs)
            .min(MAX_THREADS_LIMIT);
        let sched = run_schedule.unwrap_or(Schedule {
            kind: ScheduleKind::Static,
            chunk: None,
        });
        Icvs {
            nthreads: AtomicUsize::new(nthreads),
            dynamic: AtomicBool::new(dynamic.unwrap_or(false)),
            run_sched_kind: AtomicUsize::new(encode_sched(sched.kind)),
            run_sched_chunk: AtomicI64::new(sched.chunk.unwrap_or(0)),
            num_procs,
        }
    }

    /// The default runtime's ICV block.
    #[deprecated(note = "process-global ICVs cannot isolate concurrent programs; \
                use `Runtime::global().icvs()` or a per-instance `Runtime`")]
    pub fn global() -> &'static Icvs {
        crate::runtime::Runtime::global().icvs()
    }

    /// `nthreads-var`.
    pub fn num_threads(&self) -> usize {
        self.nthreads.load(Ordering::Relaxed)
    }

    /// Set `nthreads-var` (`omp_set_num_threads`). Values are clamped to
    /// `1..=MAX_THREADS_LIMIT`.
    pub fn set_num_threads(&self, n: usize) {
        self.nthreads
            .store(n.clamp(1, MAX_THREADS_LIMIT), Ordering::Relaxed);
    }

    /// `dyn-var`.
    pub fn dynamic(&self) -> bool {
        self.dynamic.load(Ordering::Relaxed)
    }

    /// Set `dyn-var` (`omp_set_dynamic`).
    pub fn set_dynamic(&self, v: bool) {
        self.dynamic.store(v, Ordering::Relaxed);
    }

    /// `run-sched-var`, consulted by `schedule(runtime)` loops.
    pub fn run_schedule(&self) -> Schedule {
        let kind = decode_sched(self.run_sched_kind.load(Ordering::Relaxed));
        // `runtime` inside run-sched-var would recurse; normalise to static.
        let kind = if kind == ScheduleKind::Runtime {
            ScheduleKind::Static
        } else {
            kind
        };
        let chunk = self.run_sched_chunk.load(Ordering::Relaxed);
        Schedule {
            kind,
            chunk: (chunk > 0).then_some(chunk),
        }
    }

    /// Set `run-sched-var` (`omp_set_schedule`).
    pub fn set_run_schedule(&self, sched: Schedule) {
        self.run_sched_kind
            .store(encode_sched(sched.kind), Ordering::Relaxed);
        self.run_sched_chunk
            .store(sched.chunk.unwrap_or(0), Ordering::Relaxed);
    }

    /// Detected hardware concurrency (`omp_get_num_procs`).
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_kinds() {
        assert_eq!(parse_omp_schedule("static").kind, ScheduleKind::Static);
        assert_eq!(parse_omp_schedule("dynamic").kind, ScheduleKind::Dynamic);
        assert_eq!(parse_omp_schedule("guided").kind, ScheduleKind::Guided);
        assert_eq!(parse_omp_schedule("static").chunk, None);
    }

    #[test]
    fn parses_chunks() {
        let s = parse_omp_schedule("dynamic,16");
        assert_eq!(s.kind, ScheduleKind::Dynamic);
        assert_eq!(s.chunk, Some(16));
        let s = parse_omp_schedule(" GUIDED , 7 ");
        assert_eq!(s.kind, ScheduleKind::Guided);
        assert_eq!(s.chunk, Some(7));
    }

    #[test]
    fn rejects_nonpositive_chunks() {
        assert_eq!(parse_omp_schedule("dynamic,0").chunk, None);
        assert_eq!(parse_omp_schedule("dynamic,-3").chunk, None);
    }

    #[test]
    fn modifier_prefixes_are_ignored() {
        let s = parse_omp_schedule("monotonic:dynamic,2");
        assert_eq!(s.kind, ScheduleKind::Dynamic);
        assert_eq!(s.chunk, Some(2));
        let s = parse_omp_schedule("nonmonotonic:guided");
        assert_eq!(s.kind, ScheduleKind::Guided);
    }

    #[test]
    fn unknown_kind_falls_back_to_static() {
        assert_eq!(parse_omp_schedule("bogus").kind, ScheduleKind::Static);
    }

    #[test]
    fn global_icvs_are_sane() {
        let icvs = crate::runtime::Runtime::global().icvs();
        assert!(icvs.num_threads() >= 1);
        assert!(icvs.num_procs() >= 1);
    }

    #[test]
    fn overrides_apply_and_clamp() {
        let icvs = Icvs::with_overrides(Some(3), Some(true), Some(Schedule::dynamic(Some(2))));
        assert_eq!(icvs.num_threads(), 3);
        assert!(icvs.dynamic());
        assert_eq!(icvs.run_schedule().kind, ScheduleKind::Dynamic);
        // A zero override is invalid and falls back to the default.
        let icvs = Icvs::with_overrides(Some(0), None, None);
        assert!(icvs.num_threads() >= 1);
        let icvs = Icvs::with_overrides(Some(usize::MAX), None, None);
        assert_eq!(icvs.num_threads(), MAX_THREADS_LIMIT);
    }

    #[test]
    fn set_num_threads_clamps() {
        let icvs = Icvs::default();
        icvs.set_num_threads(0);
        assert_eq!(icvs.num_threads(), 1);
        icvs.set_num_threads(usize::MAX);
        assert_eq!(icvs.num_threads(), MAX_THREADS_LIMIT);
    }

    #[test]
    fn run_schedule_roundtrip() {
        let icvs = Icvs::default();
        icvs.set_run_schedule(Schedule {
            kind: ScheduleKind::Guided,
            chunk: Some(5),
        });
        let s = icvs.run_schedule();
        assert_eq!(s.kind, ScheduleKind::Guided);
        assert_eq!(s.chunk, Some(5));
    }

    #[test]
    fn runtime_in_run_sched_normalises_to_static() {
        let icvs = Icvs::default();
        icvs.set_run_schedule(Schedule {
            kind: ScheduleKind::Runtime,
            chunk: None,
        });
        assert_eq!(icvs.run_schedule().kind, ScheduleKind::Static);
    }
}
