//! Parallel regions: function outlining, the hot worker team, and fork/join.
//!
//! The paper lowers a `parallel` pragma by *outlining* the region body into a
//! function and passing it to `__kmpc_fork_call`, which runs it on every
//! thread of the team (§III-B1). [`fork_call`] is that entry point: the
//! outlined function is any `Fn(&ThreadCtx) + Sync` closure, and the three
//! argument groups the paper passes through the variadic `__kmpc_fork_call`
//! (firstprivate values, pointers to shared variables, reduction cells) are
//! simply the closure's captures — by value, by `&`, and by
//! [`crate::reduction::RedCell`] respectively.
//!
//! Threads come from a process-wide, persistent pool (libomp's "hot team"):
//! workers are created on first use, parked between regions and re-used, so
//! repeated region entry costs two condvar signals rather than a
//! pthread_create.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::barrier::{Barrier, Latch};
use crate::icv::Icvs;
use crate::runtime::Runtime;
use crate::schedule::{ChunkOrigin, DynamicDispatch, GuidedDispatch};
use crate::trace;

/// Number of in-flight worksharing-construct buffers per team. Threads may
/// drift up to this many `nowait` constructs apart without blocking; libomp
/// uses 7 dispatch buffers for the same purpose.
pub(crate) const NUM_CONSTRUCT_SLOTS: usize = 16;

/// Shared dispatch state of one dynamic/guided worksharing loop (or a
/// `sections` construct, which reuses the dynamic dispatcher with chunk 1).
#[derive(Debug)]
pub(crate) enum Dispatcher {
    Dynamic(DynamicDispatch),
    Guided(GuidedDispatch),
}

impl Dispatcher {
    /// Claim the next chunk for team thread `tid`, plus claim-path
    /// provenance for the observability layer (the work-stealing decks key
    /// per-thread state by team id, so callers pass their own).
    pub(crate) fn next_with_origin(
        &self,
        tid: usize,
    ) -> Option<(std::ops::Range<u64>, ChunkOrigin)> {
        match self {
            Dispatcher::Dynamic(d) => d.next_with_origin(tid),
            Dispatcher::Guided(g) => g.next_with_origin(tid),
        }
    }

    /// Bulk claim for chunk bodies that are a single native kernel: the
    /// dynamic deck hands out whole owner batches while uncontended (see
    /// [`DynamicDispatch::next_bulk_with_origin`]); guided chunks already
    /// start at `~trip/(2*nth)`, so they dispatch unchanged.
    pub(crate) fn next_bulk_with_origin(
        &self,
        tid: usize,
    ) -> Option<(std::ops::Range<u64>, ChunkOrigin)> {
        match self {
            Dispatcher::Dynamic(d) => d.next_bulk_with_origin(tid),
            Dispatcher::Guided(g) => g.next_with_origin(tid),
        }
    }
}

#[derive(Default)]
struct SlotState {
    dispatch: Option<Arc<Dispatcher>>,
    /// `single` construct: has some thread already claimed the body?
    claimed: bool,
    /// Construct-scoped shared payload (e.g. a worksharing-loop reduction
    /// cell created by the first arriving thread), used by pragma-lowered
    /// code via [`ThreadCtx::construct_shared`].
    shared_payload: Option<Arc<dyn std::any::Any + Send + Sync>>,
}

impl std::fmt::Debug for SlotState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotState")
            .field("claimed", &self.claimed)
            .field("has_dispatch", &self.dispatch.is_some())
            .field("has_payload", &self.shared_payload.is_some())
            .finish()
    }
}

/// One entry of the construct ring: serves construct numbers
/// `slot_index, slot_index + N, slot_index + 2N, ...` in turn.
#[derive(Debug)]
pub(crate) struct ConstructSlot {
    /// Construct number this slot currently serves.
    gen: AtomicU64,
    state: Mutex<SlotState>,
    /// Threads that have finished this construct instance.
    finished: AtomicUsize,
}

/// State shared by every thread of one team for the duration of a region.
#[derive(Debug)]
pub struct TeamShared {
    nthreads: usize,
    barrier: Barrier,
    slots: Box<[ConstructSlot]>,
    /// Region label (pragma `file:line` or `.label()`), carried so worker
    /// threads can tag their implicit-task trace spans.
    label: &'static str,
    /// The runtime this team is bound to: workers enter it so ICV queries,
    /// `schedule(runtime)` resolution, and `critical` sections inside the
    /// region all resolve against the forking runtime, not a process global.
    runtime: Arc<Runtime>,
    /// First panic payload raised inside the region, re-thrown by the master.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl TeamShared {
    fn new(nthreads: usize, label: &'static str, runtime: Arc<Runtime>) -> Self {
        let slots = (0..NUM_CONSTRUCT_SLOTS)
            .map(|k| ConstructSlot {
                gen: AtomicU64::new(k as u64),
                state: Mutex::new(SlotState::default()),
                finished: AtomicUsize::new(0),
            })
            .collect();
        TeamShared {
            nthreads,
            barrier: Barrier::new(nthreads),
            slots,
            label,
            runtime,
            panic_payload: Mutex::new(None),
        }
    }

    pub fn num_threads(&self) -> usize {
        self.nthreads
    }

    /// The runtime this team was forked from.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// Wait until the ring slot for construct `c` is available and return it.
    fn acquire_slot(&self, c: u64) -> &ConstructSlot {
        let slot = &self.slots[(c as usize) % NUM_CONSTRUCT_SLOTS];
        // Acquire: pairs with the Release `gen` bump in `release_slot` so the
        // recycled slot's cleared state is visible before we reuse it.
        while slot.gen.load(Ordering::Acquire) != c {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        slot
    }

    /// Mark the calling thread done with `slot`; the last finisher recycles
    /// it for the construct `N` positions later.
    fn release_slot(&self, slot: &ConstructSlot) {
        // AcqRel: Release publishes this thread's use of the slot payload;
        // Acquire lets the last finisher observe every earlier finisher's use
        // before it wipes the slot.
        if slot.finished.fetch_add(1, Ordering::AcqRel) + 1 == self.nthreads {
            // Release (with the `gen` bump below): the reset counter and
            // cleared state must be visible to whoever Acquires the new gen.
            slot.finished.store(0, Ordering::Release);
            {
                let mut st = slot.state.lock();
                *st = SlotState::default();
            }
            slot.gen
                .fetch_add(NUM_CONSTRUCT_SLOTS as u64, Ordering::Release);
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut g = self.panic_payload.lock();
        if g.is_none() {
            *g = Some(payload);
        }
    }
}

/// Per-thread handle inside a parallel region: the first argument of every
/// outlined function.
///
/// Carries the thread's id, the team, and the thread's private
/// construct counter (threads of a team must encounter worksharing
/// constructs in the same order; the counter pairs each encounter with its
/// team-shared ring slot).
pub struct ThreadCtx<'a> {
    tid: usize,
    team: &'a TeamShared,
    construct_counter: Cell<u64>,
}

impl<'a> ThreadCtx<'a> {
    fn new(tid: usize, team: &'a TeamShared) -> Self {
        ThreadCtx {
            tid,
            team,
            construct_counter: Cell::new(0),
        }
    }

    /// `omp_get_thread_num`.
    #[inline]
    pub fn thread_num(&self) -> usize {
        self.tid
    }

    /// `omp_get_num_threads`.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.team.nthreads
    }

    /// Is this the master (thread 0)?
    #[inline]
    pub fn is_master(&self) -> bool {
        self.tid == 0
    }

    /// The [`Runtime`] this thread's team is bound to.
    #[inline]
    pub fn runtime(&self) -> &Arc<Runtime> {
        self.team.runtime()
    }

    /// Explicit `omp barrier`.
    pub fn barrier(&self) {
        // `wait_as` routes this thread straight to its tree leaf without
        // consuming an arrival ticket.
        self.team.barrier.wait_as(self.tid);
    }

    /// `omp master`: run `f` on thread 0 only. No implied barrier.
    pub fn master<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        self.is_master().then(f)
    }

    /// `omp single [nowait]`: exactly one thread (the first to arrive) runs
    /// `f`. Unless `nowait`, all threads synchronise afterwards.
    pub fn single<R>(&self, nowait: bool, f: impl FnOnce() -> R) -> Option<R> {
        let (slot, _c) = self.enter_construct();
        let claimed = {
            let mut st = slot.state.lock();
            if st.claimed {
                false
            } else {
                st.claimed = true;
                true
            }
        };
        let out = claimed.then(f);
        self.team.release_slot(slot);
        if !nowait {
            self.barrier();
        }
        out
    }

    /// `omp sections`: distribute the given section bodies across the team
    /// (each runs exactly once). Implied barrier unless `nowait`.
    pub fn sections(&self, nowait: bool, sections: &[&(dyn Fn() + Sync)]) {
        let (slot, _c) = self.enter_construct();
        let nth = self.num_threads();
        let t_construct = trace::dispatch_begin_ts(true);
        let dispatcher = self.slot_dispatcher(slot, || {
            Dispatcher::Dynamic(DynamicDispatch::new(sections.len() as u64, nth, Some(1)))
        });
        while let Some((r, origin)) = dispatcher.next_with_origin(self.thread_num()) {
            let t0 = trace::chunk_begin_ts();
            for s in r.clone() {
                sections[s as usize]();
            }
            trace::chunk(origin, r.start, r.end - r.start, t0);
        }
        drop(dispatcher);
        trace::dispatch_end("sections", sections.len() as u64, true, t_construct);
        self.team.release_slot(slot);
        if !nowait {
            self.barrier();
        }
    }

    /// Internal: advance this thread's construct counter and acquire the
    /// matching team slot.
    pub(crate) fn enter_construct(&self) -> (&'a ConstructSlot, u64) {
        let c = self.construct_counter.get();
        self.construct_counter.set(c + 1);
        (self.team.acquire_slot(c), c)
    }

    /// Internal: fetch (initialising exactly once) the dispatcher of a slot.
    pub(crate) fn slot_dispatcher(
        &self,
        slot: &ConstructSlot,
        make: impl FnOnce() -> Dispatcher,
    ) -> Arc<Dispatcher> {
        let mut st = slot.state.lock();
        if st.dispatch.is_none() {
            st.dispatch = Some(Arc::new(make()));
        }
        Arc::clone(st.dispatch.as_ref().unwrap())
    }

    /// Internal: thread is done with the construct served by `slot`.
    pub(crate) fn finish_construct(&self, slot: &ConstructSlot) {
        self.team.release_slot(slot);
    }

    /// A construct-scoped shared value: the first thread to arrive creates
    /// it, every thread receives the same `Arc`. Pass the returned token to
    /// [`ThreadCtx::construct_done`] when finished with the construct.
    pub fn construct_shared(
        &self,
        make: impl FnOnce() -> Arc<dyn std::any::Any + Send + Sync>,
    ) -> (Arc<dyn std::any::Any + Send + Sync>, ConstructToken) {
        let (slot, c) = self.enter_construct();
        let payload = {
            let mut st = slot.state.lock();
            if st.shared_payload.is_none() {
                st.shared_payload = Some(make());
            }
            Arc::clone(st.shared_payload.as_ref().unwrap())
        };
        (payload, ConstructToken { construct: c })
    }

    /// Finish a construct entered via [`ThreadCtx::construct_shared`].
    pub fn construct_done(&self, token: ConstructToken) {
        let slot = &self.team.slots[(token.construct as usize) % NUM_CONSTRUCT_SLOTS];
        self.team.release_slot(slot);
    }

    // -- Split-phase construct APIs ----------------------------------------
    //
    // The closure-based `single`/`for_loop` APIs cannot serve a lowering
    // target where the construct body is inline code (the paper's
    // preprocessor output, executed by the `zomp-vm` interpreter). These
    // split-phase equivalents expose the same team machinery as begin/next/
    // end calls. Contract: a handle must be used by the thread and region
    // that created it, and every thread of the team must reach the same
    // constructs in the same order — the usual OpenMP rules.

    /// Begin a dynamically scheduled worksharing loop (`__kmpc_dispatch_init`
    /// shape, handle-based). `runtime` schedules are resolved against the
    /// ICVs here.
    pub fn dispatch_begin(&self, sched: crate::schedule::Schedule, trip: u64) -> WsDispatch {
        self.dispatch_begin_labelled(sched, trip, None)
    }

    /// [`ThreadCtx::dispatch_begin`] with an explicit construct label for
    /// the `LoopDispatch` trace span — the pragma's `unit:line` when the
    /// front end supplied one; `None` falls back to the schedule name.
    pub fn dispatch_begin_labelled(
        &self,
        sched: crate::schedule::Schedule,
        trip: u64,
        label: Option<&'static str>,
    ) -> WsDispatch {
        use crate::schedule::{DynamicDispatch, GuidedDispatch, ScheduleKind};
        let sched = if sched.kind == ScheduleKind::Runtime {
            self.team.runtime.icvs().run_schedule()
        } else {
            sched
        };
        let (slot, c) = self.enter_construct();
        let nth = self.num_threads();
        let t0 = trace::dispatch_begin_ts(true);
        let label = label.unwrap_or(match sched.kind {
            ScheduleKind::Guided => "guided",
            _ => "dynamic",
        });
        let dispatcher = self.slot_dispatcher(slot, || match sched.kind {
            ScheduleKind::Guided => Dispatcher::Guided(GuidedDispatch::new(trip, nth, sched.chunk)),
            _ => Dispatcher::Dynamic(DynamicDispatch::new(trip, nth, sched.chunk)),
        });
        WsDispatch {
            construct: c,
            dispatcher,
            finished: std::cell::Cell::new(false),
            label,
            t0,
            pending: std::cell::Cell::new(None),
            claimed: std::cell::Cell::new(0),
        }
    }

    /// Claim the next chunk from a split-phase dispatch; releases the
    /// construct slot on exhaustion. Returns normalised iteration bounds.
    ///
    /// A split-phase claim's body runs *between* `dispatch_next` calls, so
    /// each call closes out the previous chunk's trace span before opening
    /// the next one (the handle's `pending` cell carries it over).
    pub fn dispatch_next(&self, d: &WsDispatch) -> Option<std::ops::Range<u64>> {
        self.dispatch_next_inner(d, false)
    }

    /// [`ThreadCtx::dispatch_next`] claiming bulk ranges: whole owner
    /// batches while the deck is uncontended. For chunk bodies that are a
    /// single `--opt=3` native kernel, where per-chunk claim/loop-entry
    /// overhead dominates and the kernel handles any chunk length.
    pub fn dispatch_next_bulk(&self, d: &WsDispatch) -> Option<std::ops::Range<u64>> {
        self.dispatch_next_inner(d, true)
    }

    fn dispatch_next_inner(&self, d: &WsDispatch, bulk: bool) -> Option<std::ops::Range<u64>> {
        if d.finished.get() {
            return None;
        }
        if let Some(p) = d.pending.take() {
            trace::chunk(p.origin, p.start, p.len, p.t0);
        }
        let claim = if bulk {
            d.dispatcher.next_bulk_with_origin(self.thread_num())
        } else {
            d.dispatcher.next_with_origin(self.thread_num())
        };
        match claim {
            Some((r, origin)) => {
                if trace::active() {
                    d.claimed.set(d.claimed.get() + (r.end - r.start));
                    d.pending.set(Some(PendingChunk {
                        origin,
                        start: r.start,
                        len: r.end - r.start,
                        t0: trace::chunk_begin_ts(),
                    }));
                }
                Some(r)
            }
            None => {
                self.dispatch_end(d);
                None
            }
        }
    }

    /// Explicitly finish a split-phase dispatch (idempotent).
    pub fn dispatch_end(&self, d: &WsDispatch) {
        if !d.finished.get() {
            d.finished.set(true);
            if let Some(p) = d.pending.take() {
                trace::chunk(p.origin, p.start, p.len, p.t0);
            }
            // The span reports this thread's claimed share, not the full
            // trip: per-thread spans must sum to the loop's iteration
            // count when the profiler folds them.
            trace::dispatch_end(d.label, d.claimed.get(), true, d.t0);
            let slot = &self.team.slots[(d.construct as usize) % NUM_CONSTRUCT_SLOTS];
            self.team.release_slot(slot);
        }
    }

    /// Split-phase `single`: returns a token saying whether this thread won
    /// the body. Pass the token to [`ThreadCtx::single_end`] after the body.
    pub fn single_begin(&self) -> SingleToken {
        let (slot, c) = self.enter_construct();
        let chosen = {
            let mut st = slot.state.lock();
            if st.claimed {
                false
            } else {
                st.claimed = true;
                true
            }
        };
        SingleToken {
            construct: c,
            chosen,
        }
    }

    /// Finish a split-phase `single`; synchronises unless `nowait`.
    pub fn single_end(&self, token: SingleToken, nowait: bool) {
        let slot = &self.team.slots[(token.construct as usize) % NUM_CONSTRUCT_SLOTS];
        self.team.release_slot(slot);
        if !nowait {
            self.barrier();
        }
    }
}

/// A claimed-but-unclosed chunk carried between split-phase
/// `dispatch_next` calls so its body execution can be spanned.
#[derive(Clone, Copy)]
struct PendingChunk {
    origin: ChunkOrigin,
    start: u64,
    len: u64,
    t0: u64,
}

/// Split-phase dispatch handle for pragma-lowered worksharing loops. See
/// [`ThreadCtx::dispatch_begin`].
pub struct WsDispatch {
    construct: u64,
    dispatcher: Arc<Dispatcher>,
    finished: std::cell::Cell<bool>,
    /// Schedule label reported on the construct's `LoopDispatch` span.
    label: &'static str,
    /// Construct-entry timestamp (0 when tracing was off at entry).
    t0: u64,
    pending: std::cell::Cell<Option<PendingChunk>>,
    /// Iterations this thread actually claimed — reported on its
    /// `LoopDispatch` span so per-thread spans sum to the loop's trip
    /// (the tier profiler folds them; a thread that claimed nothing
    /// must not report the whole trip).
    claimed: std::cell::Cell<u64>,
}

/// Token of a split-phase `single` construct. See
/// [`ThreadCtx::single_begin`].
#[derive(Debug, Clone, Copy)]
pub struct SingleToken {
    construct: u64,
    /// Did this thread win the `single` body?
    pub chosen: bool,
}

/// Token of a construct entered via [`ThreadCtx::construct_shared`].
#[derive(Debug, Clone, Copy)]
pub struct ConstructToken {
    construct: u64,
}

// ---------------------------------------------------------------------------
// Worker pool ("hot team")
// ---------------------------------------------------------------------------

/// The outlined function pointer smuggled to workers. Soundness: the master
/// does not return from [`fork_call`] until every worker has signalled the
/// join latch, so the borrow outlives all uses.
#[derive(Clone, Copy)]
struct RawTask(*const (dyn for<'x> Fn(&ThreadCtx<'x>) + Sync));

unsafe impl Send for RawTask {}

struct Job {
    task: RawTask,
    team: Arc<TeamShared>,
    tid: usize,
    latch: Arc<Latch>,
}

#[derive(Default)]
struct WorkerSlot {
    inbox: Mutex<Option<Job>>,
    cv: Condvar,
}

impl WorkerSlot {
    fn assign(&self, job: Job) {
        let mut g = self.inbox.lock();
        debug_assert!(g.is_none(), "worker already has a job");
        *g = Some(job);
        self.cv.notify_one();
    }

    fn take(&self) -> Job {
        let mut g = self.inbox.lock();
        loop {
            if let Some(j) = g.take() {
                return j;
            }
            self.cv.wait(&mut g);
        }
    }
}

fn worker_loop(slot: Arc<WorkerSlot>) {
    loop {
        let job = slot.take();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let ctx = ThreadCtx::new(job.tid, &job.team);
            // Bind the forking runtime on this pool thread for the region's
            // duration: the pool is shared by all runtimes, so the binding
            // must travel with the job, not live on the thread.
            let _rt = job.team.runtime.enter();
            with_region_state(job.tid, job.team.nthreads, || {
                let t0 = trace::stamp();
                // SAFETY: the master blocks on `job.latch` until we count
                // down, so the closure behind the raw pointer is alive.
                let f = unsafe { &*job.task.0 };
                f(&ctx);
                // Implicit-task span: this worker's slice of the region.
                trace::region_end(job.team.label, job.team.nthreads, false, t0);
            });
        }));
        if let Err(payload) = result {
            job.team.record_panic(payload);
        }
        job.latch.count_down();
    }
}

struct Pool {
    free: Mutex<Vec<Arc<WorkerSlot>>>,
    spawned: AtomicUsize,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: std::sync::OnceLock<Pool> = std::sync::OnceLock::new();
        POOL.get_or_init(|| Pool {
            free: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
        })
    }

    fn checkout(&self, n: usize) -> Vec<Arc<WorkerSlot>> {
        let mut out = {
            let mut free = self.free.lock();
            let take = free.len().min(n);
            let at = free.len() - take;
            free.split_off(at)
        };
        while out.len() < n {
            let slot = Arc::new(WorkerSlot::default());
            // Relaxed: the counter only names worker threads; no data rides
            // on it.
            let id = self.spawned.fetch_add(1, Ordering::Relaxed);
            let s = Arc::clone(&slot);
            std::thread::Builder::new()
                .name(format!("zomp-worker-{id}"))
                .spawn(move || worker_loop(s))
                .expect("failed to spawn zomp worker thread");
            out.push(slot);
        }
        out
    }

    fn checkin(&self, slots: Vec<Arc<WorkerSlot>>) {
        self.free.lock().extend(slots);
    }
}

// ---------------------------------------------------------------------------
// Per-thread region bookkeeping (backs the omp_* query API)
// ---------------------------------------------------------------------------

thread_local! {
    /// Stack of (tid, team size) for nested region queries.
    static REGION_STACK: std::cell::RefCell<Vec<(usize, usize)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

fn with_region_state<R>(tid: usize, nthreads: usize, f: impl FnOnce() -> R) -> R {
    REGION_STACK.with(|s| s.borrow_mut().push((tid, nthreads)));
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            REGION_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    let _guard = PopGuard;
    f()
}

/// (tid, team size) of the innermost active region on this thread, if any.
pub(crate) fn current_region() -> Option<(usize, usize)> {
    REGION_STACK.with(|s| s.borrow().last().copied())
}

/// Nesting depth of active parallel regions on this thread
/// (`omp_get_level`).
pub(crate) fn region_level() -> usize {
    REGION_STACK.with(|s| s.borrow().len())
}

// ---------------------------------------------------------------------------
// fork_call
// ---------------------------------------------------------------------------

/// Builder for a `parallel` pragma's clauses that affect team formation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Parallel {
    num_threads: Option<usize>,
    if_clause: bool,
    if_set: bool,
    label: Option<&'static str>,
}

impl Parallel {
    pub fn new() -> Self {
        Parallel {
            num_threads: None,
            if_clause: true,
            if_set: false,
            label: None,
        }
    }

    /// Label this region for [`crate::profile`] reports.
    pub fn label(mut self, label: &'static str) -> Self {
        self.label = Some(label);
        self
    }

    /// `num_threads(n)` clause.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n.max(1));
        self
    }

    /// `if(expr)` clause: when false the region executes on one thread.
    pub fn when(mut self, cond: bool) -> Self {
        self.if_clause = cond;
        self.if_set = true;
        self
    }

    fn resolve_team_size(&self, icvs: &Icvs) -> usize {
        if !self.if_clause {
            return 1;
        }
        self.num_threads
            .unwrap_or_else(|| icvs.num_threads())
            .clamp(1, crate::icv::MAX_THREADS_LIMIT)
    }
}

/// Execute `f` on a team of threads — the `__kmpc_fork_call` equivalent.
///
/// The calling thread becomes the master (thread 0) and participates; the
/// region carries an implicit barrier at its end by construction (the join).
/// Nested invocations serialise onto a team of one, matching the default
/// `OMP_NESTED=false` behaviour used throughout the paper.
///
/// Panics raised inside the region are captured and re-raised on the master
/// once all threads have joined.
///
/// When observability is on ([`crate::trace`]) and the region has no
/// explicit [`Parallel::label`], it is auto-labelled with the caller's
/// `file:line` (`#[track_caller]`) — the Rust-side equivalent of the
/// front end stamping outlined regions with their pragma location.
#[track_caller]
pub fn fork_call<F>(par: Parallel, f: F)
where
    F: for<'x> Fn(&ThreadCtx<'x>) + Sync,
{
    fork_call_rt(&Runtime::current(), par, f)
}

/// [`fork_call`] against an explicit [`Runtime`] instance: the team's ICVs,
/// `critical` registries, and `schedule(runtime)` resolution all come from
/// `rt`, and every team thread has `rt` as [`Runtime::current`] for the
/// region's duration. This is the entry point a multi-tenant host (`zagd`)
/// uses to run concurrent programs with isolated runtime state over one
/// shared worker pool.
#[track_caller]
pub fn fork_call_rt<F>(rt: &Arc<Runtime>, par: Parallel, f: F)
where
    F: for<'x> Fn(&ThreadCtx<'x>) + Sync,
{
    let caller = std::panic::Location::caller();
    rt.init_sinks_from_env();
    let nested = current_region().is_some();
    let n = if nested {
        1
    } else {
        par.resolve_team_size(rt.icvs())
    };

    // Region instrumentation (the paper's proposed profiling support):
    // one relaxed load when disabled, label resolution only when on.
    let label = match par.label {
        Some(l) => l,
        None if trace::active() => trace::location_label(caller),
        None => "",
    };
    // Close the master's region span on every exit path (incl. panic
    // propagation after join); it covers the body *and* the join wait.
    struct RegionGuard {
        label: &'static str,
        threads: usize,
        t0: u64,
    }
    impl Drop for RegionGuard {
        fn drop(&mut self) {
            trace::region_end(self.label, self.threads, true, self.t0);
        }
    }
    let _region = RegionGuard {
        label,
        threads: n,
        t0: trace::region_begin(label, n),
    };

    if n == 1 {
        let team = TeamShared::new(1, label, Arc::clone(rt));
        let ctx = ThreadCtx::new(0, &team);
        let _rt = rt.enter();
        with_region_state(0, 1, || f(&ctx));
        return;
    }

    let team = Arc::new(TeamShared::new(n, label, Arc::clone(rt)));
    let latch = Arc::new(Latch::new(n - 1));
    let fref: &(dyn for<'x> Fn(&ThreadCtx<'x>) + Sync) = &f;
    // SAFETY: we erase the lifetime, then guarantee liveness by not
    // returning until `latch.wait()` confirms every worker is done.
    let task = RawTask(unsafe {
        std::mem::transmute::<
            *const (dyn for<'x> Fn(&ThreadCtx<'x>) + Sync + '_),
            *const (dyn for<'x> Fn(&ThreadCtx<'x>) + Sync + 'static),
        >(fref as *const _)
    });

    let workers = Pool::global().checkout(n - 1);
    for (i, w) in workers.iter().enumerate() {
        w.assign(Job {
            task,
            team: Arc::clone(&team),
            tid: i + 1,
            latch: Arc::clone(&latch),
        });
    }

    let master_result = panic::catch_unwind(AssertUnwindSafe(|| {
        let ctx = ThreadCtx::new(0, &team);
        let _rt = rt.enter();
        with_region_state(0, n, || f(&ctx));
    }));

    let t_join = trace::stamp();
    latch.wait();
    trace::task_wait(t_join);
    Pool::global().checkin(workers);

    if let Err(payload) = master_result {
        panic::resume_unwind(payload);
    }
    let worker_panic = team.panic_payload.lock().take();
    if let Some(payload) = worker_panic {
        panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_thread_runs_once() {
        let hits = AtomicUsize::new(0);
        fork_call(Parallel::new().num_threads(4), |ctx| {
            assert!(ctx.thread_num() < 4);
            assert_eq!(ctx.num_threads(), 4);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn thread_ids_are_distinct() {
        let seen: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        fork_call(Parallel::new().num_threads(8), |ctx| {
            seen[ctx.thread_num()].fetch_add(1, Ordering::SeqCst);
        });
        for s in &seen {
            assert_eq!(s.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn if_clause_serialises() {
        fork_call(Parallel::new().num_threads(8).when(false), |ctx| {
            assert_eq!(ctx.num_threads(), 1);
            assert_eq!(ctx.thread_num(), 0);
        });
    }

    #[test]
    fn nested_regions_serialise() {
        fork_call(Parallel::new().num_threads(2), |outer| {
            let outer_n = outer.num_threads();
            assert_eq!(outer_n, 2);
            fork_call(Parallel::new().num_threads(4), |inner| {
                assert_eq!(inner.num_threads(), 1);
            });
        });
    }

    #[test]
    fn master_only_runs_on_thread_zero() {
        let count = AtomicUsize::new(0);
        fork_call(Parallel::new().num_threads(4), |ctx| {
            ctx.master(|| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn single_runs_exactly_once_and_synchronises() {
        let count = AtomicUsize::new(0);
        fork_call(Parallel::new().num_threads(4), |ctx| {
            ctx.single(false, || {
                count.fetch_add(1, Ordering::SeqCst);
            });
            // After the single's implied barrier everyone sees the effect.
            assert_eq!(count.load(Ordering::SeqCst), 1);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn repeated_singles_rotate_through_slot_ring() {
        // More singles than ring slots exercises slot recycling.
        let count = AtomicUsize::new(0);
        fork_call(Parallel::new().num_threads(3), |ctx| {
            for _ in 0..(NUM_CONSTRUCT_SLOTS * 3) {
                ctx.single(false, || {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), NUM_CONSTRUCT_SLOTS * 3);
    }

    #[test]
    fn sections_each_run_once() {
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        let c = AtomicUsize::new(0);
        let fa = || {
            a.fetch_add(1, Ordering::SeqCst);
        };
        let fb = || {
            b.fetch_add(1, Ordering::SeqCst);
        };
        let fc = || {
            c.fetch_add(1, Ordering::SeqCst);
        };
        fork_call(Parallel::new().num_threads(2), |ctx| {
            ctx.sections(false, &[&fa, &fb, &fc]);
        });
        assert_eq!(a.load(Ordering::SeqCst), 1);
        assert_eq!(b.load(Ordering::SeqCst), 1);
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn barrier_inside_region() {
        let before = AtomicUsize::new(0);
        fork_call(Parallel::new().num_threads(4), |ctx| {
            before.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            assert_eq!(before.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn region_reuses_hot_team() {
        // Run many regions back to back: worker count must not grow past
        // what one region needs (checked indirectly via correctness).
        for round in 0..50usize {
            let sum = AtomicUsize::new(0);
            fork_call(Parallel::new().num_threads(4), |ctx| {
                sum.fetch_add(ctx.thread_num() + round, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 6 + 4 * round);
        }
    }

    #[test]
    fn closure_borrows_stack_data() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total = AtomicUsize::new(0);
        fork_call(Parallel::new().num_threads(4), |ctx| {
            let tid = ctx.thread_num();
            let per = data.len() / ctx.num_threads();
            let mine: u64 = data[tid * per..(tid + 1) * per].iter().sum();
            total.fetch_add(mine as usize, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 36);
    }

    #[test]
    fn worker_panic_propagates_to_master() {
        let result = panic::catch_unwind(|| {
            fork_call(Parallel::new().num_threads(3), |ctx| {
                if ctx.thread_num() == 2 {
                    panic!("boom from worker");
                }
            });
        });
        assert!(result.is_err());
    }
}

#[cfg(test)]
mod split_phase_tests {
    use super::*;
    use crate::schedule::Schedule;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn split_dispatch_covers_all_iterations() {
        const N: u64 = 173;
        let hits: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        fork_call(Parallel::new().num_threads(4), |ctx| {
            let d = ctx.dispatch_begin(Schedule::dynamic(Some(5)), N);
            while let Some(r) = ctx.dispatch_next(&d) {
                for i in r {
                    hits[i as usize].fetch_add(1, Ordering::SeqCst);
                }
            }
            ctx.barrier();
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn split_single_chooses_exactly_one() {
        let wins = AtomicUsize::new(0);
        fork_call(Parallel::new().num_threads(4), |ctx| {
            for _ in 0..10 {
                let tok = ctx.single_begin();
                if tok.chosen {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
                ctx.single_end(tok, false);
            }
        });
        assert_eq!(wins.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn split_dispatch_explicit_end_without_exhaustion() {
        fork_call(Parallel::new().num_threads(2), |ctx| {
            let d = ctx.dispatch_begin(Schedule::dynamic(Some(1)), 6);
            let _ = ctx.dispatch_next(&d);
            ctx.dispatch_end(&d);
            ctx.barrier();
            // Team machinery must still be usable afterwards.
            let tok = ctx.single_begin();
            ctx.single_end(tok, false);
        });
    }
}
