//! The `omp` facade: the paper's `std.omp` namespace for Rust embedders.
//!
//! The paper re-exports the OpenMP runtime-library routines into a Zig
//! namespace with the redundant `omp_` prefix stripped (§III-C, Listing 7):
//!
//! ```text
//! const omp = @import("std").omp;
//! const thread_id = omp.get_thread_num();
//! ```
//!
//! This module is the same surface for Rust: `zomp::omp::get_thread_num()`,
//! plus the user-facing [`Schedule`] type so `omp::set_schedule(
//! omp::Schedule::dynamic(Some(4)))` needs one import. Functions follow
//! the OpenMP 5.2 definitions; outside a parallel region the querying
//! functions return the sequential values (thread 0 of a team of 1).
//!
//! Every ICV-touching function here is a thin wrapper over
//! [`Runtime::current`]: inside a region (or an explicit [`Runtime::enter`]
//! scope) it reads and writes *that* runtime's ICVs; everywhere else it
//! falls back to the default global instance, so standalone callers behave
//! exactly as before the per-instance redesign.

use std::sync::OnceLock;
use std::time::Instant;

use crate::runtime::Runtime;
use crate::team;

pub use crate::schedule::{Schedule, ScheduleKind};

/// `omp_get_thread_num`: this thread's id within the innermost team.
pub fn get_thread_num() -> usize {
    team::current_region().map(|(tid, _)| tid).unwrap_or(0)
}

/// `omp_get_num_threads`: size of the innermost team (1 outside regions).
pub fn get_num_threads() -> usize {
    team::current_region().map(|(_, n)| n).unwrap_or(1)
}

/// `omp_get_max_threads`: team size the next region would get.
pub fn get_max_threads() -> usize {
    Runtime::current().icvs().num_threads()
}

/// `omp_set_num_threads`.
pub fn set_num_threads(n: usize) {
    Runtime::current().icvs().set_num_threads(n);
}

/// `omp_get_num_procs`.
pub fn get_num_procs() -> usize {
    Runtime::current().icvs().num_procs()
}

/// `omp_in_parallel`.
pub fn in_parallel() -> bool {
    team::current_region().map(|(_, n)| n > 1).unwrap_or(false)
}

/// `omp_get_level`: nesting depth of active regions.
pub fn get_level() -> usize {
    team::region_level()
}

/// `omp_get_dynamic`.
pub fn get_dynamic() -> bool {
    Runtime::current().icvs().dynamic()
}

/// `omp_set_dynamic`.
pub fn set_dynamic(v: bool) {
    Runtime::current().icvs().set_dynamic(v);
}

/// `omp_get_schedule`: the `run-sched-var` consulted by `schedule(runtime)`.
pub fn get_schedule() -> Schedule {
    Runtime::current().icvs().run_schedule()
}

/// `omp_set_schedule`.
pub fn set_schedule(s: Schedule) {
    Runtime::current().icvs().set_run_schedule(s);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// `omp_get_wtime`: elapsed wall-clock seconds since an arbitrary fixed
/// point (first call in this process).
pub fn get_wtime() -> f64 {
    epoch().elapsed().as_secs_f64()
}

/// `omp_get_wtick`: timer resolution in seconds.
pub fn get_wtick() -> f64 {
    // Instant is nanosecond-granular on the platforms we target.
    1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::{fork_call, Parallel};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_defaults() {
        assert_eq!(get_thread_num(), 0);
        assert_eq!(get_num_threads(), 1);
        assert!(!in_parallel());
        assert_eq!(get_level(), 0);
    }

    #[test]
    fn queries_track_region() {
        let checks = AtomicUsize::new(0);
        fork_call(Parallel::new().num_threads(3), |ctx| {
            assert_eq!(get_thread_num(), ctx.thread_num());
            assert_eq!(get_num_threads(), 3);
            assert!(in_parallel());
            assert_eq!(get_level(), 1);
            checks.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(checks.load(Ordering::SeqCst), 3);
        assert_eq!(get_level(), 0);
    }

    #[test]
    fn wtime_is_monotonic() {
        let t0 = get_wtime();
        let t1 = get_wtime();
        assert!(t1 >= t0);
        assert!(get_wtick() > 0.0);
    }

    #[test]
    fn max_threads_roundtrip() {
        let prev = get_max_threads();
        set_num_threads(5);
        assert_eq!(get_max_threads(), 5);
        set_num_threads(prev);
    }

    #[test]
    fn facade_follows_entered_runtime() {
        use crate::runtime::{Runtime, RuntimeConfig};
        let rt = Runtime::with_config(&RuntimeConfig::default().num_threads(2));
        {
            let _g = rt.enter();
            assert_eq!(get_max_threads(), 2);
            // 129 is a value no other test (and no plausible host) uses, so
            // the cross-check below cannot race with parallel tests that
            // legitimately mutate the global ICVs.
            set_num_threads(129);
            assert_eq!(get_max_threads(), 129);
        }
        // The entered runtime absorbed the write; the global one did not.
        assert_eq!(rt.icvs().num_threads(), 129);
        assert_ne!(Runtime::global().icvs().num_threads(), 129);
    }
}
