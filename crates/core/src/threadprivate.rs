//! `threadprivate` storage.
//!
//! The EP benchmark uses the `threadprivate` directive (§V-B): a global
//! variable gets one instance per thread, persisting across parallel regions
//! executed by the same thread. [`ThreadPrivate`] reproduces that: values are
//! keyed by OS thread, created on first touch from an init closure, and
//! survive between regions because the worker pool is persistent (the hot
//! team re-uses the same OS threads).

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::Mutex;

/// Per-thread persistent storage for one `threadprivate` variable.
///
/// Access hands out a clone of the per-thread `Arc`; interior mutability of
/// the payload is the user's choice (`Cell`, `RefCell`, `Mutex`, plain read).
/// For the common POD case prefer [`ThreadPrivate::with_mut`], which provides
/// scoped mutable access without nested locking.
pub struct ThreadPrivate<T> {
    init: Box<dyn Fn() -> T + Send + Sync>,
    slots: Mutex<HashMap<ThreadId, Arc<Mutex<T>>>>,
}

impl<T: Send + 'static> ThreadPrivate<T> {
    /// Declare a threadprivate variable with a per-thread initialiser (the
    /// `copyin`-free case; for `copyin`, pass a closure capturing the master
    /// value).
    pub fn new(init: impl Fn() -> T + Send + Sync + 'static) -> Self {
        ThreadPrivate {
            init: Box::new(init),
            slots: Mutex::new(HashMap::new()),
        }
    }

    fn slot(&self) -> Arc<Mutex<T>> {
        let id = std::thread::current().id();
        let mut slots = self.slots.lock();
        Arc::clone(
            slots
                .entry(id)
                .or_insert_with(|| Arc::new(Mutex::new((self.init)()))),
        )
    }

    /// Scoped access to this thread's instance.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let slot = self.slot();
        let g = slot.lock();
        f(&g)
    }

    /// Scoped mutable access to this thread's instance.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let slot = self.slot();
        let mut g = slot.lock();
        f(&mut g)
    }

    /// Number of threads that have touched the variable (diagnostic).
    pub fn instances(&self) -> usize {
        self.slots.lock().len()
    }
}

impl<T: Send + Clone + 'static> ThreadPrivate<T> {
    /// Read a copy of this thread's instance.
    pub fn get(&self) -> T {
        self.with(|v| v.clone())
    }

    /// Overwrite this thread's instance.
    pub fn set(&self, v: T) {
        self.with_mut(|slot| *slot = v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::team::{fork_call, Parallel};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn each_thread_gets_its_own_instance() {
        let tp = ThreadPrivate::new(|| 0usize);
        fork_call(Parallel::new().num_threads(4), |ctx| {
            tp.set(ctx.thread_num() + 100);
            assert_eq!(tp.get(), ctx.thread_num() + 100);
        });
        assert!(tp.instances() >= 4);
    }

    #[test]
    fn values_persist_across_regions_on_same_thread() {
        // The hot team reuses OS threads, so threadprivate state persists
        // between regions — the property EP relies on.
        let tp = ThreadPrivate::new(|| 0usize);
        let mismatches = AtomicUsize::new(0);
        fork_call(Parallel::new().num_threads(4), |ctx| {
            tp.set(ctx.thread_num() * 7 + 1);
        });
        fork_call(Parallel::new().num_threads(4), |_ctx| {
            // Whatever thread id we have now, the value must be one written
            // by *some* thread in the previous region (nonzero).
            if tp.get() == 0 {
                mismatches.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(mismatches.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn with_mut_accumulates() {
        let tp = ThreadPrivate::new(|| 0i64);
        fork_call(Parallel::new().num_threads(3), |_| {
            for _ in 0..10 {
                tp.with_mut(|v| *v += 1);
            }
            assert_eq!(tp.get(), 10);
        });
    }
}
