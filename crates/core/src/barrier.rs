//! Team barriers.
//!
//! Every parallel region carries an implicit barrier at its end, every
//! worksharing loop without `nowait` carries one too, and the programmer can
//! insert explicit ones (`omp barrier`).
//!
//! Two implementations sit behind [`Barrier`], selected by team size:
//!
//! * **Central** (small teams): a generation-counting central barrier
//!   (equivalent to the classic sense-reversing design, with the generation
//!   counter playing the role of the sense flag). All arrivals hit one
//!   atomic counter — cheapest possible at low thread counts.
//! * **Tree** (teams above [`TREE_THRESHOLD`]): a combining tree with fan-in
//!   [`TREE_FANIN`] and cache-line-padded per-node arrival counters. Each
//!   thread contends only with its ≤ 4 siblings instead of the whole team,
//!   turning the O(n)-contention central counter into O(log₄ n) quiet
//!   levels.
//!
//! Both spin briefly and then block on a condition variable — appropriate
//! for dedicated cores (spin wins) and for the oversubscribed case
//! (blocking avoids burning the timeslice).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

use crate::pad::CachePadded;

/// How many pause/yield rounds to spin before blocking. Kept deliberately
/// small: on an oversubscribed host (more threads than cores) long spins are
/// pure waste.
const SPIN_ROUNDS: usize = 64;

/// Combining-tree fan-in: each node accepts at most this many arrivals.
/// 4 keeps the tree shallow (log₄) while each node's counter stays
/// low-contention; libomp's hyper barrier uses branching factors in the
/// same 2–8 range.
const TREE_FANIN: usize = 4;

/// Teams up to this size use the central barrier: with few threads the
/// single counter is both cheaper and simpler, and a tree of ≤ 2 levels
/// would add pure overhead.
const TREE_THRESHOLD: usize = 8;

/// A reusable barrier for a fixed-size team.
///
/// [`Barrier::wait_as`] is the hot entry point (the caller supplies its team
/// id, letting the tree route it to its leaf without shared state);
/// [`Barrier::wait`] keeps the id-less API by handing out arrival tickets
/// from one extra atomic.
#[derive(Debug)]
pub struct Barrier {
    n: usize,
    /// Ticket dispenser for the id-less [`Barrier::wait`] entry point.
    tickets: AtomicU64,
    core: BarrierCore,
}

#[derive(Debug)]
enum BarrierCore {
    Central(CentralBarrier),
    Tree(TreeBarrier),
}

impl Barrier {
    /// Barrier for `n` threads. `n == 0` is treated as 1. Teams larger than
    /// [`TREE_THRESHOLD`] get the combining-tree implementation.
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        let core = if n <= TREE_THRESHOLD {
            BarrierCore::Central(CentralBarrier::new(n))
        } else {
            BarrierCore::Tree(TreeBarrier::new(n))
        };
        Barrier {
            n,
            tickets: AtomicU64::new(0),
            core,
        }
    }

    /// Force the central implementation regardless of team size — for
    /// benchmarking the crossover; [`Barrier::new`] is the production entry.
    pub fn new_central(n: usize) -> Self {
        let n = n.max(1);
        Barrier {
            n,
            tickets: AtomicU64::new(0),
            core: BarrierCore::Central(CentralBarrier::new(n)),
        }
    }

    /// Force the combining-tree implementation regardless of team size —
    /// for benchmarking the crossover.
    pub fn new_tree(n: usize) -> Self {
        let n = n.max(1);
        Barrier {
            n,
            tickets: AtomicU64::new(0),
            core: BarrierCore::Tree(TreeBarrier::new(n)),
        }
    }

    /// Team size this barrier synchronises.
    pub fn team_size(&self) -> usize {
        self.n
    }

    /// Block until all `n` threads have arrived, as team thread `tid`
    /// (`tid < n`, each id arriving exactly once per cycle). Returns `true`
    /// in exactly one thread per cycle (the overall last arriver), mirroring
    /// `std::sync::Barrier`'s leader flag.
    pub fn wait_as(&self, tid: usize) -> bool {
        if self.n == 1 {
            return true;
        }
        let t0 = crate::trace::barrier_begin();
        let (leader, parked) = match &self.core {
            BarrierCore::Central(c) => c.wait(),
            BarrierCore::Tree(t) => t.wait(tid),
        };
        crate::trace::barrier_end(t0, parked);
        leader
    }

    /// Id-less [`Barrier::wait_as`]: derives a per-cycle id from an arrival
    /// ticket. Tickets can't tangle across cycles — a thread cannot start
    /// cycle `k+1` before all `n` tickets of cycle `k` were claimed.
    pub fn wait(&self) -> bool {
        if self.n == 1 {
            return true;
        }
        // Relaxed: the ticket value itself is the only payload, and the
        // barrier's own acquire/release edges order everything else.
        let ticket = self.tickets.fetch_add(1, Ordering::Relaxed) as usize % self.n;
        self.wait_as(ticket)
    }
}

/// Generation-counting central barrier (one shared arrival counter).
#[derive(Debug)]
struct CentralBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
    mutex: Mutex<()>,
    cvar: Condvar,
}

impl CentralBarrier {
    fn new(n: usize) -> Self {
        CentralBarrier {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            mutex: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Returns `(leader, parked)`: whether this arrival was the releasing
    /// last arriver, and whether its wait fell through to a condvar park.
    fn wait(&self) -> (bool, bool) {
        let gen = self.generation.load(Ordering::Acquire);
        // AcqRel: the last arriver's read end of this RMW pulls in every
        // earlier thread's pre-barrier writes; the write end publishes ours.
        let pos = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if pos == self.n {
            // Last arriver: reset the counter for the next cycle *before*
            // releasing the others (they cannot re-arrive until the
            // generation advances).
            self.arrived.store(0, Ordering::Release);
            let _g = self.mutex.lock();
            // Release: publishes the whole cycle (including the reset) to
            // the waiters' acquire loads below.
            self.generation.fetch_add(1, Ordering::Release);
            self.cvar.notify_all();
            (true, false)
        } else {
            let parked = spin_then_park(&self.mutex, &self.cvar, || {
                self.generation.load(Ordering::Acquire) != gen
            });
            (false, parked)
        }
    }
}

/// One combining-tree node: an arrival counter expecting `expect` children
/// (threads at leaves, child nodes above), padded to its own cache line so
/// sibling nodes never false-share.
#[derive(Debug)]
struct TreeNode {
    arrived: AtomicUsize,
    expect: usize,
    /// Parent node index, or `None` for the root.
    parent: Option<usize>,
}

/// Combining-tree barrier: leaves fan threads in groups of [`TREE_FANIN`];
/// the last arriver of each node resets it and ascends. The root's last
/// arriver bumps the (single) generation word that all waiters watch.
///
/// Waiting on one global generation instead of per-node flags keeps the
/// release broadcast a single store + notify; the contention win of the
/// tree is on the *arrival* side, which is where every thread writes.
#[derive(Debug)]
struct TreeBarrier {
    nodes: Box<[CachePadded<TreeNode>]>,
    /// Leaf node index of each team thread.
    leaf_of: Box<[usize]>,
    generation: AtomicU64,
    mutex: Mutex<()>,
    cvar: Condvar,
}

impl TreeBarrier {
    fn new(n: usize) -> Self {
        debug_assert!(n > 1);
        // Build level by level: level 0 nodes group threads, higher levels
        // group the nodes below. `widths[l]` = element count entering level l.
        let mut nodes: Vec<CachePadded<TreeNode>> = Vec::new();
        let mut level_start = Vec::new(); // first node index of each level
        let mut width = n; // elements feeding the current level
        while width > 1 {
            level_start.push(nodes.len());
            let groups = width.div_ceil(TREE_FANIN);
            for g in 0..groups {
                let expect = TREE_FANIN.min(width - g * TREE_FANIN);
                nodes.push(CachePadded::new(TreeNode {
                    arrived: AtomicUsize::new(0),
                    expect,
                    parent: None, // patched below
                }));
            }
            width = groups;
        }
        // Patch parents: node `g` of level `l` is child `g % FANIN` of node
        // `g / FANIN` in level `l + 1`.
        for l in 0..level_start.len().saturating_sub(1) {
            let (start, next) = (level_start[l], level_start[l + 1]);
            let count = next - start;
            for g in 0..count {
                nodes[start + g].parent = Some(next + g / TREE_FANIN);
            }
        }
        let leaf_of = (0..n).map(|tid| tid / TREE_FANIN).collect();
        TreeBarrier {
            nodes: nodes.into_boxed_slice(),
            leaf_of,
            generation: AtomicU64::new(0),
            mutex: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Returns `(leader, parked)` — see [`CentralBarrier::wait`].
    fn wait(&self, tid: usize) -> (bool, bool) {
        let gen = self.generation.load(Ordering::Acquire);
        let mut node = self.leaf_of[tid];
        loop {
            let nd = &self.nodes[node];
            // AcqRel: the node's last arriver reads (acquires) every
            // sibling's pre-barrier writes through this counter's release
            // sequence, then carries them upward with its own write end.
            let pos = nd.arrived.fetch_add(1, Ordering::AcqRel) + 1;
            if pos < nd.expect {
                // Not last at this node: wait for the root release.
                let parked = spin_then_park(&self.mutex, &self.cvar, || {
                    self.generation.load(Ordering::Acquire) != gen
                });
                return (false, parked);
            }
            // Last arriver: reset for the next cycle, then ascend. Relaxed
            // is enough — the reset is published to next-cycle arrivers by
            // the release chain through the parent counters and the
            // generation word (no thread re-arrives before acquiring those).
            nd.arrived.store(0, Ordering::Relaxed);
            match nd.parent {
                Some(p) => node = p,
                None => {
                    let _g = self.mutex.lock();
                    // Release: publishes the whole team's cycle to the
                    // waiters' acquire loads.
                    self.generation.fetch_add(1, Ordering::Release);
                    self.cvar.notify_all();
                    return (true, false);
                }
            }
        }
    }
}

/// Spin for [`SPIN_ROUNDS`], then block on the condvar until `done()`.
/// Returns `true` if the wait gave up spinning and parked — the
/// spin-vs-park transition the observability counters report.
fn spin_then_park(mutex: &Mutex<()>, cvar: &Condvar, done: impl Fn() -> bool) -> bool {
    for _ in 0..SPIN_ROUNDS {
        if done() {
            return false;
        }
        std::hint::spin_loop();
        std::thread::yield_now();
    }
    let mut g = mutex.lock();
    while !done() {
        cvar.wait(&mut g);
    }
    true
}

/// A one-shot countdown latch used for region join: the master waits until
/// every worker has finished executing the outlined function.
#[derive(Debug)]
pub struct Latch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    cvar: Condvar,
}

impl Latch {
    pub fn new(count: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(count),
            mutex: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Signal one completion.
    pub fn count_down(&self) {
        // AcqRel: the final count-down collects every worker's writes so
        // the waiter's acquire load sees the fully joined region.
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.mutex.lock();
            self.cvar.notify_all();
        }
    }

    /// Block until the count reaches zero.
    pub fn wait(&self) {
        for _ in 0..SPIN_ROUNDS {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let mut g = self.mutex.lock();
        while self.remaining.load(Ordering::Acquire) != 0 {
            self.cvar.wait(&mut g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_barrier_is_noop() {
        let b = Barrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn small_teams_use_central_large_use_tree() {
        assert!(matches!(Barrier::new(8).core, BarrierCore::Central(_)));
        assert!(matches!(Barrier::new(9).core, BarrierCore::Tree(_)));
    }

    #[test]
    fn tree_shape_fan_in_4() {
        // 16 threads: 4 leaves + 1 root.
        let t = TreeBarrier::new(16);
        assert_eq!(t.nodes.len(), 5);
        assert!(t.nodes[..4].iter().all(|n| n.expect == 4));
        assert_eq!(t.nodes[4].expect, 4);
        assert!(t.nodes[4].parent.is_none());
        assert!(t.nodes[..4].iter().all(|n| n.parent == Some(4)));
        // 13 threads: leaves expect 4,4,4,1; root expects 4.
        let t = TreeBarrier::new(13);
        assert_eq!(t.nodes.len(), 5);
        assert_eq!(
            t.nodes[..4].iter().map(|n| n.expect).collect::<Vec<_>>(),
            vec![4, 4, 4, 1]
        );
        // 100 threads: 25 leaves, 7 mid nodes, 2 upper, 1 root.
        let t = TreeBarrier::new(100);
        assert_eq!(t.nodes.len(), 25 + 7 + 2 + 1);
    }

    fn exercise_barrier(n: usize, phases: usize) {
        let b = Barrier::new(n);
        let counters: Vec<AtomicUsize> = (0..phases).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..n {
                let b = &b;
                let counters = &counters;
                s.spawn(move || {
                    for counter in counters.iter() {
                        counter.fetch_add(1, Ordering::SeqCst);
                        b.wait_as(tid);
                        assert_eq!(counter.load(Ordering::SeqCst), n);
                        b.wait_as(tid);
                    }
                });
            }
        });
    }

    #[test]
    fn barrier_synchronises_phases() {
        exercise_barrier(4, 20);
    }

    #[test]
    fn tree_barrier_synchronises_phases() {
        // Above TREE_THRESHOLD: exercises multi-level arrival and reset.
        exercise_barrier(16, 10);
        exercise_barrier(13, 10);
    }

    fn count_leaders(n: usize, cycles: usize) -> usize {
        let b = Barrier::new(n);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for tid in 0..n {
                let b = &b;
                let leaders = &leaders;
                s.spawn(move || {
                    for _ in 0..cycles {
                        if b.wait_as(tid) {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        leaders.load(Ordering::SeqCst)
    }

    #[test]
    fn exactly_one_leader_per_cycle() {
        assert_eq!(count_leaders(8, 50), 50);
    }

    #[test]
    fn tree_exactly_one_leader_per_cycle() {
        assert_eq!(count_leaders(12, 30), 30);
    }

    #[test]
    fn ticketed_wait_still_works() {
        // The id-less entry point on a tree-sized team.
        const N: usize = 10;
        let b = Barrier::new(N);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                let b = &b;
                let hits = &hits;
                s.spawn(move || {
                    for _ in 0..5 {
                        hits.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), N * 5);
    }

    #[test]
    fn latch_releases_waiter() {
        let l = Latch::new(3);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| l.count_down());
            }
            l.wait();
        });
    }

    #[test]
    fn latch_zero_is_immediate() {
        Latch::new(0).wait();
    }
}
