//! Team barriers.
//!
//! Every parallel region carries an implicit barrier at its end, every
//! worksharing loop without `nowait` carries one too, and the programmer can
//! insert explicit ones (`omp barrier`). The implementation is a
//! generation-counting central barrier (equivalent to the classic
//! sense-reversing design, with the generation counter playing the role of
//! the sense flag) that spins briefly and then blocks on a condition
//! variable — appropriate both for dedicated cores (spin wins) and for the
//! oversubscribed case (blocking avoids burning the timeslice).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

/// How many pause/yield rounds to spin before blocking. Kept deliberately
/// small: on an oversubscribed host (more threads than cores) long spins are
/// pure waste.
const SPIN_ROUNDS: usize = 64;

/// A reusable barrier for a fixed-size team.
#[derive(Debug)]
pub struct Barrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
    mutex: Mutex<()>,
    cvar: Condvar,
}

impl Barrier {
    /// Barrier for `n` threads. `n == 0` is treated as 1.
    pub fn new(n: usize) -> Self {
        Barrier {
            n: n.max(1),
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            mutex: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Team size this barrier synchronises.
    pub fn team_size(&self) -> usize {
        self.n
    }

    /// Block until all `n` threads have arrived. Returns `true` in exactly
    /// one thread per cycle (the last arriver), mirroring
    /// `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        if self.n == 1 {
            return true;
        }
        let gen = self.generation.load(Ordering::Acquire);
        let pos = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if pos == self.n {
            // Last arriver: reset the counter for the next cycle *before*
            // releasing the others (they cannot re-arrive until the
            // generation advances).
            self.arrived.store(0, Ordering::Release);
            let _g = self.mutex.lock();
            self.generation.fetch_add(1, Ordering::Release);
            self.cvar.notify_all();
            true
        } else {
            for _ in 0..SPIN_ROUNDS {
                if self.generation.load(Ordering::Acquire) != gen {
                    return false;
                }
                std::hint::spin_loop();
                std::thread::yield_now();
            }
            let mut g = self.mutex.lock();
            while self.generation.load(Ordering::Acquire) == gen {
                self.cvar.wait(&mut g);
            }
            false
        }
    }
}

/// A one-shot countdown latch used for region join: the master waits until
/// every worker has finished executing the outlined function.
#[derive(Debug)]
pub struct Latch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    cvar: Condvar,
}

impl Latch {
    pub fn new(count: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(count),
            mutex: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Signal one completion.
    pub fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.mutex.lock();
            self.cvar.notify_all();
        }
    }

    /// Block until the count reaches zero.
    pub fn wait(&self) {
        for _ in 0..SPIN_ROUNDS {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let mut g = self.mutex.lock();
        while self.remaining.load(Ordering::Acquire) != 0 {
            self.cvar.wait(&mut g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_barrier_is_noop() {
        let b = Barrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn barrier_synchronises_phases() {
        // Each thread increments a phase counter; after the barrier, every
        // thread must observe the full count of the previous phase.
        const N: usize = 4;
        const PHASES: usize = 20;
        let b = Barrier::new(N);
        let counters: Vec<AtomicUsize> = (0..PHASES).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for counter in counters.iter().take(PHASES) {
                        counter.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        assert_eq!(counter.load(Ordering::SeqCst), N);
                        b.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn exactly_one_leader_per_cycle() {
        const N: usize = 8;
        const CYCLES: usize = 50;
        let b = Barrier::new(N);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..N {
                s.spawn(|| {
                    for _ in 0..CYCLES {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), CYCLES);
    }

    #[test]
    fn latch_releases_waiter() {
        let l = Latch::new(3);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| l.count_down());
            }
            l.wait();
        });
    }

    #[test]
    fn latch_zero_is_immediate() {
        Latch::new(0).wait();
    }
}
