//! Corner cases of the static type-inference pass ([`zomp_vm::typeck`])
//! and the native bulk-kernel tier ([`zomp_vm::kernels`]).
//!
//! The differential suite proves whole-program agreement; these tests pin
//! the *mechanism*: which instructions the specializer rewrites statically,
//! which slots it must leave `Dynamic` (so runtime quickening keeps the
//! deopt safety net), and that a bulk kernel's mid-loop bail reproduces
//! the interpreter's exact error.

use zomp_vm::bytecode::disasm_fn;
use zomp_vm::typeck::{infer_image, Ty};
use zomp_vm::{Backend, OptLevel, Vm};

fn build(src: &str, opt: OptLevel) -> Vm {
    Vm::build(src, None, Backend::Bytecode, opt).unwrap_or_else(|e| panic!("{}", e.render(src)))
}

fn run(src: &str, backend: Backend, opt: OptLevel) -> Result<Vec<String>, String> {
    let vm = Vm::build(src, None, backend, opt).unwrap_or_else(|e| panic!("{}", e.render(src)));
    match vm.call_function("main", Vec::new()) {
        Ok(_) => Ok(vm.output.into_inner()),
        Err(e) => Err(e.to_string()),
    }
}

/// A monomorphic integer loop specializes *statically*: the compiled
/// image already holds `cjfii`/`addii` before the first instruction runs
/// (quickening would only get there after a warm-up execution).
#[test]
fn int_loop_specializes_before_execution() {
    let src = r#"fn main() void {
    var s: i64 = 0;
    var i: i64 = 0;
    while (i < 10) : (i += 1) { s = s + i; }
    print(s);
}"#;
    let vm = build(src, OptLevel::O2);
    let dis = disasm_fn(vm.program.code.get("main").unwrap());
    assert!(
        dis.contains("cjfii"),
        "loop compare not specialized:\n{dis}"
    );
    assert!(dis.contains("addii"), "int add not specialized:\n{dis}");
}

/// A slot reassigned from Int to Float joins to `Dynamic`: the add on it
/// must stay generic so runtime quickening (and its deopt) still owns it,
/// and the program must keep matching the oracle through the type flip.
#[test]
fn mixed_reassignment_stays_dynamic_and_deopts() {
    let src = r#"fn main() void {
    var x: any = undefined;
    x = 1;
    var i: i64 = 0;
    while (i < 6) : (i += 1) {
        x = x + x;
        if (i == 2) { x = 0.5; }
    }
    print(x);
}"#;
    let vm = build(src, OptLevel::O2);
    let dis = disasm_fn(vm.program.code.get("main").unwrap());
    assert!(
        dis.contains("add        r"),
        "the Int/Float-flipping add must stay generic:\n{dis}"
    );
    assert!(
        !dis.contains("addii") && !dis.contains("addff"),
        "a Dynamic slot must not be statically specialized:\n{dis}"
    );
    let ast = run(src, Backend::Ast, OptLevel::O0);
    for opt in [OptLevel::O2, OptLevel::O3] {
        assert_eq!(
            run(src, Backend::Bytecode, opt),
            ast,
            "quickening deopt diverged at --opt={opt}"
        );
    }
}

/// `&x` boxes the local: inference types its register as a cell pointer
/// at every block boundary after the `newcell` (the pointee-typed
/// `ptr.i64` when the seed is provably Int, the generic `*any`
/// otherwise).
#[test]
fn address_taken_local_is_ptr() {
    let src = r#"fn main() void {
    var x: i64 = 1;
    var p: any = &x;
    var i: i64 = 0;
    while (i < 3) : (i += 1) { p.* = x + 1; }
    print(x);
}"#;
    let vm = build(src, OptLevel::O2);
    let f = vm.program.code.get("main").unwrap();
    let dis = disasm_fn(f);
    assert!(dis.contains("newcell"), "local `x` should be boxed:\n{dis}");
    let &(xreg, _, addr_taken) = f
        .locals
        .iter()
        .find(|(_, name, _)| name == "x")
        .expect("local x");
    assert!(addr_taken, "local `x` should be flagged address-taken");
    let idx = vm.program.code.by_name["main"];
    let types = infer_image(&vm.program.code);
    let saw_ptr = types.fns[idx]
        .entry
        .iter()
        .flatten()
        .any(|env| matches!(env[xreg as usize], Ty::Ptr | Ty::PtrI | Ty::PtrF));
    assert!(
        saw_ptr,
        "boxed local never inferred as Ptr at a block entry"
    );
}

/// An array allocated inside a `parallel` body keeps a stable element
/// type across the whole outlined function: its index/index-set sites
/// specialize statically to the `F` forms inside `__omp_outlined_0`.
#[test]
fn private_array_elem_type_stable_across_parallel_body() {
    let src = r#"fn main() void {
    var t: i64 = 0;
    //$omp parallel num_threads(2) reduction(+: t)
    {
        var a: f64 = @allocF(8);
        var j: i64 = 0;
        while (j < 8) : (j += 1) { a[j] = 1.5; }
        var s: f64 = 0.0;
        var k: i64 = 0;
        while (k < 8) : (k += 1) { s = s + a[k]; }
        t += @floatToInt(s);
    }
    print(t);
}"#;
    let vm = build(src, OptLevel::O2);
    let dis = disasm_fn(vm.program.code.get("__omp_outlined_0").unwrap());
    assert!(
        dis.contains("indexsetf"),
        "array store not specialized in outlined fn:\n{dis}"
    );
    assert!(
        dis.contains("indexf"),
        "array load not specialized in outlined fn:\n{dis}"
    );
    assert_eq!(
        run(src, Backend::Bytecode, OptLevel::O2),
        Ok(vec!["24".to_string()])
    );
}

/// At `--opt=3` the work-shared fill loop becomes a bulk kernel; when the
/// loop runs out of bounds mid-flight the kernel must bail back to the
/// interpreter and surface the *exact* error the oracle produces.
#[test]
fn bulk_kernel_bails_with_oracle_error() {
    let src = r#"fn main() void {
    var a: f64 = @allocF(10);
    //$omp parallel num_threads(1) shared(a)
    {
        var i: i64 = 0;
        //$omp while schedule(static)
        while (i < 20) : (i += 1) { a[i] = 0.5; }
    }
    print(a[0]);
}"#;
    let vm = build(src, OptLevel::O3);
    assert!(
        vm.program.code.funcs.iter().any(|f| !f.kernels.is_empty()),
        "expected a bulk kernel to install for the fill loop"
    );
    let ast = run(src, Backend::Ast, OptLevel::O0);
    assert!(ast.is_err(), "expected an out-of-bounds error");
    assert_eq!(run(src, Backend::Bytecode, OptLevel::O3), ast);
    assert_eq!(run(src, Backend::Native, OptLevel::O2), ast);
}

/// The happy path of the same kernel: in-bounds fill at `--opt=3` agrees
/// with the oracle and still installs the kernel (i.e. the agreement is
/// exercising the bulk path, not a failed match).
#[test]
fn bulk_kernel_fill_agrees_in_bounds() {
    let src = r#"fn main() void {
    var a: f64 = @allocF(16);
    //$omp parallel num_threads(2) shared(a)
    {
        var i: i64 = 0;
        //$omp while schedule(static)
        while (i < 16) : (i += 1) { a[i] = 2.5; }
    }
    print(a[0], a[15]);
}"#;
    let vm = build(src, OptLevel::O3);
    assert!(vm.program.code.funcs.iter().any(|f| !f.kernels.is_empty()));
    let ast = run(src, Backend::Ast, OptLevel::O0);
    assert_eq!(run(src, Backend::Bytecode, OptLevel::O3), ast);
}
