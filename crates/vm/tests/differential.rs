//! Differential testing: the bytecode VM against the tree-walking oracle.
//!
//! Every program here runs on both backends; outputs (or error messages)
//! must match exactly. The corner programs are deterministic by
//! construction — parallel ones only print aggregates that do not depend
//! on scheduling. The shipped example programs may print genuinely racy
//! values (e.g. which thread won a `single`), so for those we compare the
//! lines proven stable under a single backend across repeated runs.

use zomp_vm::{Backend, OptLevel, Value, Vm};

/// Every optimization level the bytecode backend must stay faithful at:
/// `O0` is the raw stream, `O1` adds folding/copy-prop/DSE, `O2` adds
/// superinstruction fusion, static type specialization, and runtime
/// quickening, `O3` adds native bulk-kernel installation for hot loops.
const OPT_LEVELS: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

/// The opt levels this process actually exercises: all of [`OPT_LEVELS`]
/// by default, or just the one named by `ZAG_TEST_OPT=0|1|2|3` — the hook
/// the CI opt-level matrix uses to run each level as a separate step with
/// its own pass/fail line.
fn opt_levels() -> Vec<OptLevel> {
    match std::env::var("ZAG_TEST_OPT") {
        Ok(s) => {
            let opt = OptLevel::parse(&s)
                .unwrap_or_else(|| panic!("ZAG_TEST_OPT must be 0|1|2|3, got {s:?}"));
            vec![opt]
        }
        Err(_) => OPT_LEVELS.to_vec(),
    }
}

fn run_on(src: &str, backend: Backend, opt: OptLevel) -> Result<Vec<String>, String> {
    let vm = Vm::build(src, None, backend, opt).unwrap_or_else(|e| panic!("{}", e.render(src)));
    match vm.call_function("main", Vec::new()) {
        Ok(_) => Ok(vm.output.into_inner()),
        Err(e) => Err(e.to_string()),
    }
}

/// The bytecode backend, at every opt level, must agree with the
/// tree-walking oracle on output lines *and* on error messages; the
/// native backend (which forces `--opt=3`) must agree too.
fn assert_backends_agree(name: &str, src: &str) {
    let ast = run_on(src, Backend::Ast, OptLevel::O0);
    for opt in opt_levels() {
        let bc = run_on(src, Backend::Bytecode, opt);
        assert_eq!(bc, ast, "{name}: backends diverged at --opt={opt}");
    }
    let native = run_on(src, Backend::Native, OptLevel::O2);
    assert_eq!(native, ast, "{name}: native backend diverged");
}

#[test]
fn serial_language_corners() {
    for (name, src) in [
        (
            "arith_and_precedence",
            r#"fn main() void {
    var i: i64 = 7;
    var f: f64 = 2.5;
    print(i + 2 * 3, i % 3, i / 2, -i);
    print(f * 2.0, f - 0.5, f / 0.5, -f);
    print(1 < 2, 2 <= 2, 3 > 4, 4 >= 5, 1 == 1, 1 != 1);
    print("a" == "a", "a" != "b", true == true);
}"#,
        ),
        (
            "nan_comparisons",
            r#"fn main() void {
    var nan: f64 = 0.0 / 0.0;
    print(nan < 1.0, nan <= 1.0, nan > 1.0, nan >= 1.0);
    print(nan == nan, nan != nan);
}"#,
        ),
        (
            "short_circuit_side_effects",
            r#"fn side(x: i64) bool {
    print("side", x);
    return x > 0;
}
fn main() void {
    print(side(1) and side(-1));
    print(side(-2) and side(2));
    print(side(3) or side(4));
    print(side(-5) or side(5));
    print(!side(6));
}"#,
        ),
        (
            "pointers_and_aliasing",
            r#"fn bump(p: *i64) void { p.* += 1; }
fn main() void {
    var x: i64 = 10;
    var p: *i64 = &x;
    bump(p);
    bump(&x);
    p.* = p.* * 2;
    print(x, p.*);
}"#,
        ),
        (
            "arrays_and_compound_assign",
            r#"fn main() void {
    var a: f64 = @allocF(4);
    var n: i64 = @allocI(4);
    var i: i64 = 0;
    while (i < 4) : (i += 1) {
        a[i] = @intToFloat(i);
        n[i] = i * i;
    }
    a[2] += 10.0;
    a[2] *= 2.0;
    n[3] -= 5;
    var p: *f64 = &a[1];
    p.* += 100.0;
    print(a[0], a[1], a[2], a[3], @len(a));
    print(n[0], n[1], n[2], n[3], @len(n));
}"#,
        ),
        (
            "shadowing_and_scopes",
            r#"fn main() void {
    var x: i64 = 1;
    {
        var x: i64 = x + 10;
        print(x);
        {
            var x: i64 = x * 2;
            print(x);
        }
        print(x);
    }
    print(x);
}"#,
        ),
        (
            "break_continue_nested",
            r#"fn main() void {
    var total: i64 = 0;
    var i: i64 = 0;
    while (i < 10) : (i += 1) {
        if (i == 7) { break; }
        var j: i64 = 0;
        while (j < 10) : (j += 1) {
            if (j == 3) { continue; }
            if (j > 5) { break; }
            total += i * 10 + j;
        }
    }
    print(total, i);
}"#,
        ),
        (
            "downward_and_strided_loops",
            r#"fn main() void {
    var s: i64 = 0;
    var i: i64 = 10;
    while (i > 0) : (i -= 2) { s += i; }
    var j: i64 = 0;
    while (j < 20) : (j += 3) { s += 1; }
    print(s, i, j);
}"#,
        ),
        (
            "recursion_and_function_values",
            r#"fn fib(n: i64) i64 {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
fn main() void {
    print(fib(15));
    const f = fib;
    print(f(10));
}"#,
        ),
        (
            "builtins_typed_and_mixed",
            r#"fn main() void {
    print(@sqrt(2.0), @log(@exp(1.0)), @sin(0.0), @cos(0.0));
    print(@pow(2.0, 10.0), @abs(-3.5), @abs(-7));
    print(@max(2.0, 3.0), @max(9, 4), @min(2.0, 3.0), @min(9, 4));
    print(@floatToInt(3.9), @intToFloat(4));
}"#,
        ),
        (
            "string_escapes_and_print",
            r#"fn main() void {
    print("quote: \" and newline:\nend");
    print("a", 1, 2.5, true, "b");
}"#,
        ),
        (
            "var_decl_without_init",
            r#"fn main() void {
    var x: any = undefined;
    x = 41;
    x += 1;
    print(x);
}"#,
        ),
        (
            "condition_shapes",
            r#"fn main() void {
    var i: i64 = 3;
    if (i > 1 and i < 10) { print("band"); }
    if (i > 5 or i == 3) { print("bor"); }
    if (!(i == 4)) { print("bnot"); }
    var b: bool = i > 2;
    if (b) { print("bval"); }
    while (b) { b = false; print("bloop"); }
}"#,
        ),
    ] {
        assert_backends_agree(name, src);
    }
}

#[test]
fn runtime_errors_match_exactly() {
    for (name, src) in [
        (
            "division_by_zero",
            r#"fn main() void { var z: i64 = 0; print(1 / z); }"#,
        ),
        (
            "remainder_by_zero",
            r#"fn main() void { var z: i64 = 0; print(1 % z); }"#,
        ),
        ("unknown_variable", r#"fn main() void { print(nope); }"#),
        ("unknown_variable_assign", r#"fn main() void { nope = 3; }"#),
        (
            "index_out_of_bounds",
            r#"fn main() void { var a: f64 = @allocF(2); print(a[5]); }"#,
        ),
        (
            "type_mismatch_arith",
            r#"fn main() void { print(1 + 2.0); }"#,
        ),
        (
            "type_mismatch_compound",
            r#"fn main() void { var x: i64 = 1; x += 2.0; print(x); }"#,
        ),
        ("cannot_compare", r#"fn main() void { print("a" < "b"); }"#),
        (
            "not_callable",
            r#"fn main() void { var x: i64 = 3; x(1); }"#,
        ),
        ("unknown_builtin", r#"fn main() void { print(@sqrt(4)); }"#),
        ("cannot_negate", r#"fn main() void { print(-"s"); }"#),
        (
            "cannot_deref",
            r#"fn main() void { var x: i64 = 1; print(x.*); }"#,
        ),
        (
            "cannot_index",
            r#"fn main() void { var x: i64 = 1; print(x[0]); }"#,
        ),
        (
            "not_a_condition",
            r#"fn main() void { if ("s") { print(1); } }"#,
        ),
        (
            "arity_mismatch",
            r#"fn f(a: i64) void { print(a); }
fn main() void { f(1, 2); }"#,
        ),
        (
            "error_after_output",
            r#"fn main() void {
    print("before");
    var z: i64 = 0;
    print(1 / z);
    print("after");
}"#,
        ),
    ] {
        let ast = run_on(src, Backend::Ast, OptLevel::O0);
        assert!(ast.is_err(), "{name}: expected a runtime error");
        for opt in opt_levels() {
            let bc = run_on(src, Backend::Bytecode, opt);
            assert_eq!(bc, ast, "{name}: backends diverged at --opt={opt}");
        }
    }
}

/// Error corners aimed at the optimizer itself: each program's hot shape
/// gets fused or quickened at `--opt=2`, and the fused/quickened arm's
/// slow path must reproduce the walker's error text and ordering.
#[test]
fn fused_and_quickened_errors_match_exactly() {
    for (name, src) in [
        (
            // `a[k] * p[...]` with an i64 array: the FmaIdx chain must
            // fail with the walker's multiply type-mismatch text.
            "fma_chain_type_mismatch",
            r#"fn main() void {
    var a: i64 = @allocI(4);
    var p: f64 = @allocF(4);
    var s: f64 = 0.0;
    var k: i64 = 0;
    while (k < 4) : (k += 1) {
        s = s + a[k] * p[k];
    }
    print(s);
}"#,
        ),
        (
            // `h[i] = h[i] + 1` fuses to IncElemK; the OOB index must
            // report the walker's bounds text.
            "incelem_out_of_bounds",
            r#"fn main() void {
    var h: i64 = @allocI(4);
    var i: i64 = 2;
    h[i + 3] = h[i + 3] + 1;
    print(h[0]);
}"#,
        ),
        (
            // `rowstr[j + 1]` fuses to IndexOff; out-of-bounds offset.
            "indexoff_out_of_bounds",
            r#"fn main() void {
    var rowstr: i64 = @allocI(4);
    var j: i64 = 3;
    print(rowstr[j + 1]);
}"#,
        ),
        (
            // Arith+IndexSet fuses to ArithStore; the division error must
            // fire before any store is observable.
            "arithstore_div_by_zero",
            r#"fn main() void {
    var a: i64 = @allocI(2);
    var z: i64 = 0;
    var i: i64 = 0;
    a[i] = 7 / z;
    print(a[0]);
}"#,
        ),
        (
            // Mixed-type element update: IncElemK's slow path must load,
            // fail in the arithmetic, and leave the walker's message.
            "incelem_type_mismatch",
            r#"fn main() void {
    var h: f64 = @allocF(2);
    var i: i64 = 0;
    h[i] = h[i] + 1;
    print(h[0]);
}"#,
        ),
        (
            // Constant folding must refuse to evaluate an erroring op.
            "const_div_zero_not_folded",
            r#"fn main() void { print(1 / 0); }"#,
        ),
        (
            // IndexOff with a *negative* offset spelled as subtraction:
            // the slow path reconstructs `j - 1` for the error text.
            "indexoff_negative_oob",
            r#"fn main() void {
    var a: i64 = @allocI(4);
    var j: i64 = 0;
    print(a[j - 1]);
}"#,
        ),
    ] {
        let ast = run_on(src, Backend::Ast, OptLevel::O0);
        assert!(ast.is_err(), "{name}: expected a runtime error");
        for opt in opt_levels() {
            let bc = run_on(src, Backend::Bytecode, opt);
            assert_eq!(bc, ast, "{name}: backends diverged at --opt={opt}");
        }
    }
}

/// Quickening specializes `Arith`/`Cmp`/`Index` on first execution; these
/// programs flip a slot's type mid-loop so the specialized instruction
/// must deopt back to the generic form and keep producing oracle output.
#[test]
fn quickening_deopt_agrees() {
    for (name, src) in [
        (
            "scalar_int_to_float_flip",
            r#"fn main() void {
    var x: any = undefined;
    x = 1;
    var i: i64 = 0;
    while (i < 6) : (i += 1) {
        x = x + x;
        if (i == 2) {
            x = 0.5;
        }
    }
    print(x);
}"#,
        ),
        (
            "cmp_operand_type_flip",
            r#"fn main() void {
    var x: any = undefined;
    var y: any = undefined;
    x = 1;
    y = 10;
    var i: i64 = 0;
    var hits: i64 = 0;
    while (i < 8) : (i += 1) {
        if (x < y) { hits += 1; }
        if (i == 3) { x = 0.5; y = 2.5; }
    }
    print(hits);
}"#,
        ),
        (
            "array_int_to_float_swap",
            r#"fn main() void {
    var a: any = undefined;
    a = @allocI(3);
    var total: f64 = 0.0;
    var i: i64 = 0;
    while (i < 6) : (i += 1) {
        var j: i64 = 0;
        while (j < 3) : (j += 1) {
            a[j] = a[j];
        }
        if (i == 2) {
            a = @allocF(3);
            a[0] = 1.5;
        }
    }
    print(a[0], total);
}"#,
        ),
    ] {
        assert_backends_agree(name, src);
    }
}

#[test]
fn parallel_aggregates_agree() {
    for (name, src) in [
        (
            "static_reduction",
            r#"fn main() void {
    var total: i64 = 0;
    //$omp parallel num_threads(4) reduction(+: total)
    {
        var i: i64 = 0;
        //$omp while schedule(static)
        while (i < 10000) : (i += 1) { total += i; }
    }
    print(total);
}"#,
        ),
        (
            "dynamic_schedule_exactly_once",
            r#"fn main() void {
    var hits: i64 = @allocI(1000);
    //$omp parallel num_threads(4)
    {
        var i: i64 = 0;
        //$omp while schedule(dynamic, 7)
        while (i < 1000) : (i += 1) {
            //$omp atomic
            hits[i] += 1;
        }
    }
    var bad: i64 = 0;
    var j: i64 = 0;
    while (j < 1000) : (j += 1) {
        if (hits[j] != 1) { bad += 1; }
    }
    print(bad);
}"#,
        ),
        (
            "firstprivate_and_barriers",
            r#"fn main() void {
    var base: i64 = 5;
    var total: i64 = 0;
    //$omp parallel num_threads(3) firstprivate(base) reduction(+: total)
    {
        base += omp.get_thread_num();
        omp.internal.barrier();
        total += base;
    }
    print(total);
}"#,
        ),
        (
            "pi_quadrature",
            r#"fn main() void {
    const n: i64 = 100000;
    var pi: f64 = 0.0;
    const w: f64 = 1.0 / @intToFloat(n);
    //$omp parallel num_threads(4) reduction(+: pi)
    {
        var i: i64 = 0;
        //$omp while schedule(static)
        while (i < n) : (i += 1) {
            const x: f64 = (@intToFloat(i) + 0.5) * w;
            pi += 4.0 / (1.0 + x * x);
        }
    }
    pi = pi * w;
    print(pi > 3.14159, pi < 3.14160);
}"#,
        ),
    ] {
        assert_backends_agree(name, src);
    }
}

/// Tokenwise equality with a relative tolerance for floats: reduction
/// combine order depends on thread arrival, so float sums jitter in the
/// last bits run-to-run on *both* backends.
fn lines_equivalent(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    let (ta, tb): (Vec<&str>, Vec<&str>) = (a.split(' ').collect(), b.split(' ').collect());
    ta.len() == tb.len()
        && ta.iter().zip(&tb).all(|(x, y)| {
            x == y
                || matches!((x.parse::<f64>(), y.parse::<f64>()), (Ok(fx), Ok(fy))
                    if (fx - fy).abs() <= 1e-9 * fx.abs().max(fy.abs()))
        })
}

/// Example programs may print racy values (which thread won `single`): a
/// line is only compared when two runs of the *same* backend produce it
/// identically, and float tokens get reduction-order tolerance.
#[test]
fn example_programs_stable_lines_agree() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/zag");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("examples/zag exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "zag") {
            continue;
        }
        seen += 1;
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&path).unwrap();
        let ast1 =
            run_on(&src, Backend::Ast, OptLevel::O0).unwrap_or_else(|e| panic!("{name}: {e}"));
        let ast2 = run_on(&src, Backend::Ast, OptLevel::O0).unwrap();
        for opt in opt_levels() {
            let bc1 = run_on(&src, Backend::Bytecode, opt)
                .unwrap_or_else(|e| panic!("{name} at --opt={opt}: {e}"));
            let bc2 = run_on(&src, Backend::Bytecode, opt).unwrap();
            assert_eq!(
                bc1.len(),
                ast1.len(),
                "{name}: line counts diverged at --opt={opt}"
            );
            for (i, line) in bc1.iter().enumerate() {
                let stable =
                    lines_equivalent(line, &bc2[i]) && lines_equivalent(&ast1[i], &ast2[i]);
                if stable {
                    assert!(
                        lines_equivalent(line, &ast1[i]),
                        "{name}: line {i} diverged at --opt={opt}:\n  bytecode: {line}\n  ast:      {}",
                        ast1[i]
                    );
                }
            }
        }
    }
    assert!(seen >= 3, "expected the shipped sample programs");
}

/// PR 2's pragma labels (`unit:line` from `preprocess_named`) must reach
/// the runtime's `ParallelBegin` probe when regions are entered through
/// compiled bytecode, so Chrome traces keep source-pragma names.
#[test]
fn bytecode_fork_call_keeps_pragma_labels() {
    use std::sync::{Mutex, OnceLock};
    static LABELS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    let labels = LABELS.get_or_init(|| Mutex::new(Vec::new()));
    zomp::trace::register_callback(|probe| {
        if let zomp::trace::Probe::ParallelBegin { label, .. } = probe {
            LABELS
                .get()
                .unwrap()
                .lock()
                .unwrap()
                .push(label.to_string());
        }
    });
    let src = r#"fn main() void {
    var s: i64 = 0;
    //$omp parallel num_threads(2) reduction(+: s)
    {
        s += 1;
    }
    print(s);
}"#;
    for opt in opt_levels() {
        labels.lock().unwrap().clear();
        let vm = Vm::build(src, Some("label_demo.zag"), Backend::Bytecode, opt).unwrap();
        assert!(matches!(
            vm.call_function("main", Vec::new()).unwrap(),
            Value::Void
        ));
        assert_eq!(vm.output.into_inner(), vec!["2"]);
        let got = labels.lock().unwrap();
        assert!(
            got.iter().any(|l| l == "label_demo.zag:3"),
            "pragma label missing from ParallelBegin probes at --opt={opt}: {got:?}"
        );
    }
}
