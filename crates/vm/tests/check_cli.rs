//! `zag --check` / `--check=deny` end-to-end through the real binary.

use std::path::Path;
use std::process::{Command, Output};

fn zag(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_zag"))
        .args(args)
        .output()
        .expect("zag runs")
}

fn repo(rel: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
        .display()
        .to_string()
}

#[test]
fn check_on_clean_example_exits_zero_and_reports_clean() {
    let path = repo("examples/zag/pi.zag");
    let out = zag(&["--check", &path]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(stderr.contains("check clean"), "stderr: {stderr}");
}

#[test]
fn check_reports_findings_but_exits_zero() {
    let path = repo("crates/integration/fixtures/racy/race-shared-write.zag");
    let out = zag(&["--check", &path]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(stderr.contains("race-shared-write"), "stderr: {stderr}");
    assert!(stderr.contains("pragma at"), "stderr: {stderr}");
}

#[test]
fn check_deny_refuses_racy_input() {
    let path = repo("crates/integration/fixtures/racy/race-shared-write.zag");
    let out = zag(&["--check=deny", &path]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains("race-shared-write"), "stderr: {stderr}");
    assert!(stderr.contains("refusing to compile"), "stderr: {stderr}");
}

#[test]
fn check_deny_passes_clean_input() {
    let path = repo("crates/integration/fixtures/clean/reduction-pi.zag");
    let out = zag(&["--check=deny", &path]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(stderr.contains("check clean"), "stderr: {stderr}");
}

#[test]
fn default_run_prints_lint_warnings_but_still_executes() {
    let path = repo("crates/integration/fixtures/racy/clause-conflict.zag");
    let out = zag(&[&path]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The clause conflict is a warning, not an error: the program runs.
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(stderr.contains("clause-conflict"), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains('0'), "stdout: {stdout}");
}

#[test]
fn front_end_errors_render_through_the_same_formatter() {
    let dir = std::env::temp_dir().join("zag_check_cli_bad.zag");
    std::fs::write(&dir, "fn main() void {\n    var x i64 = 0;\n}\n").unwrap();
    let out = zag(&[dir.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    // `zag: <path>:<line>:<col>: <message>` — the unified Diag rendering.
    assert!(stderr.contains("zag: "), "stderr: {stderr}");
    assert!(stderr.contains(":2:"), "stderr: {stderr}");
}
