//! End-to-end tests of the full pipeline: pragma-annotated Zag source →
//! tokenizer → parser → multi-pass preprocessor → interpreter → real
//! threads on the zomp runtime.

use zomp_vm::Vm;

fn run(src: &str) -> Vec<String> {
    Vm::run(src)
        .map_err(|e| panic!("{e}\n--- source ---\n{src}"))
        .unwrap()
}

// -- sequential language basics ----------------------------------------------

#[test]
fn arithmetic_and_control_flow() {
    let out = run(r#"
fn main() void {
    var x: i64 = 0;
    var i: i64 = 0;
    while (i < 10) : (i += 1) {
        if (i % 2 == 0) {
            x += i;
        }
    }
    print(x);
}
"#);
    assert_eq!(out, vec!["20"]);
}

#[test]
fn functions_and_recursion() {
    let out = run(r#"
fn fib(n: i64) i64 {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
fn main() void {
    print(fib(15));
}
"#);
    assert_eq!(out, vec!["610"]);
}

#[test]
fn arrays_and_builtins() {
    let out = run(r#"
fn main() void {
    var a: []f64 = @allocF(5);
    var i: i64 = 0;
    while (i < @len(a)) : (i += 1) {
        a[i] = @intToFloat(i * i);
    }
    print(a[4], @sqrt(a[4]));
}
"#);
    assert_eq!(out, vec!["16.0 4.0"]);
}

#[test]
fn pointers_and_deref() {
    let out = run(r#"
fn bump(p: *i64) void {
    p.* += 5;
}
fn main() void {
    var x: i64 = 10;
    bump(&x);
    bump(&x);
    print(x);
}
"#);
    assert_eq!(out, vec!["20"]);
}

#[test]
fn break_and_continue() {
    let out = run(r#"
fn main() void {
    var s: i64 = 0;
    var i: i64 = 0;
    while (i < 100) : (i += 1) {
        if (i == 7) {
            break;
        }
        if (i % 2 == 1) {
            continue;
        }
        s += i;
    }
    print(s, i);
}
"#);
    // 0+2+4+6 = 12, stopped at 7.
    assert_eq!(out, vec!["12 7"]);
}

#[test]
fn openmp_names_remain_usable_identifiers() {
    let out = run(r#"
fn main() void {
    var parallel: i64 = 2;
    var shared: i64 = 3;
    print(parallel * shared);
}
"#);
    assert_eq!(out, vec!["6"]);
}

// -- parallel regions ---------------------------------------------------------

#[test]
fn parallel_region_runs_every_thread() {
    let out = run(r#"
fn main() void {
    var count: i64 = 0;
    //$omp parallel num_threads(4) reduction(+: count)
    {
        count += 1;
    }
    print(count);
}
"#);
    assert_eq!(out, vec!["4"]);
}

#[test]
fn thread_ids_are_live_inside_region() {
    let out = run(r#"
fn main() void {
    var max_tid: i64 = 0;
    var nthreads: i64 = 0;
    //$omp parallel num_threads(3) reduction(max: max_tid) shared(nthreads)
    {
        max_tid = omp.get_thread_num();
        nthreads = omp.get_num_threads();
    }
    print(max_tid, nthreads, omp.in_parallel());
}
"#);
    assert_eq!(out, vec!["2 3 false"]);
}

#[test]
fn firstprivate_copies_value_in() {
    let out = run(r#"
fn main() void {
    var base: i64 = 100;
    var total: i64 = 0;
    //$omp parallel num_threads(4) firstprivate(base) reduction(+: total)
    {
        base += omp.get_thread_num();
        total += base;
    }
    print(base, total);
}
"#);
    // Each thread starts from 100; 4*100 + (0+1+2+3) = 406; outer unchanged.
    assert_eq!(out, vec!["100 406"]);
}

#[test]
fn shared_scalar_through_pointer_rewrite() {
    let out = run(r#"
fn main() void {
    var flag: i64 = 0;
    //$omp parallel num_threads(4) shared(flag)
    {
        //$omp master
        {
            flag = 42;
        }
    }
    print(flag);
}
"#);
    assert_eq!(out, vec!["42"]);
}

#[test]
fn if_clause_serialises_region() {
    let out = run(r#"
fn main() void {
    var n: i64 = 0;
    //$omp parallel num_threads(8) if(false) reduction(+: n)
    {
        n += omp.get_num_threads();
    }
    print(n);
}
"#);
    assert_eq!(out, vec!["1"]);
}

#[test]
fn region_reduction_mul_uses_cas_loop() {
    let out = run(r#"
fn main() void {
    var p: i64 = 3;
    //$omp parallel num_threads(5) reduction(*: p)
    {
        p *= 2;
    }
    print(p);
}
"#);
    // Seed 3 times 2^5.
    assert_eq!(out, vec!["96"]);
}

#[test]
fn float_reduction_region() {
    let out = run(r#"
fn main() void {
    var s: f64 = 0.5;
    //$omp parallel num_threads(4) reduction(+: s)
    {
        s += 1.0;
    }
    print(s);
}
"#);
    assert_eq!(out, vec!["4.5"]);
}

// -- worksharing loops ----------------------------------------------------------

fn fill_program(schedule: &str) -> String {
    format!(
        r#"
fn main() void {{
    var a: []i64 = @allocI(100);
    //$omp parallel num_threads(4) shared(a)
    {{
        var i: i64 = 0;
        //$omp while {schedule}
        while (i < 100) : (i += 1) {{
            a[i] = a[i] + i;
        }}
    }}
    var check: i64 = 0;
    var j: i64 = 0;
    while (j < 100) : (j += 1) {{
        check += a[j];
    }}
    print(check);
}}
"#
    )
}

#[test]
fn worksharing_covers_each_iteration_exactly_once_all_schedules() {
    for sched in [
        "",
        "schedule(static)",
        "schedule(static, 7)",
        "schedule(dynamic)",
        "schedule(dynamic, 5)",
        "schedule(guided)",
        "schedule(runtime)",
    ] {
        let out = run(&fill_program(sched));
        assert_eq!(out, vec!["4950"], "schedule {sched}");
    }
}

#[test]
fn loop_reduction_inside_region() {
    // The CG pattern: reduction into a shared scalar of the enclosing
    // region, lowered across two preprocessor passes.
    let out = run(r#"
fn main() void {
    var rho: f64 = 0.0;
    var n: i64 = 1000;
    //$omp parallel num_threads(4) shared(rho) firstprivate(n)
    {
        var j: i64 = 0;
        //$omp while reduction(+: rho)
        while (j < n) : (j += 1) {
            rho = rho + 1.0;
        }
    }
    print(rho);
}
"#);
    assert_eq!(out, vec!["1000.0"]);
}

#[test]
fn two_nowait_loops_then_barrier() {
    let out = run(r#"
fn main() void {
    var a: []i64 = @allocI(50);
    var b: []i64 = @allocI(50);
    //$omp parallel num_threads(3) shared(a, b)
    {
        var i: i64 = 0;
        //$omp while nowait
        while (i < 50) : (i += 1) {
            a[i] = 1;
        }
        var j: i64 = 0;
        //$omp while schedule(dynamic, 3) nowait
        while (j < 50) : (j += 1) {
            b[j] = 2;
        }
        //$omp barrier
    }
    var s: i64 = 0;
    var k: i64 = 0;
    while (k < 50) : (k += 1) {
        s += a[k] + b[k];
    }
    print(s);
}
"#);
    assert_eq!(out, vec!["150"]);
}

#[test]
fn strided_and_downward_loops() {
    let out = run(r#"
fn main() void {
    var up: i64 = 0;
    var down: i64 = 0;
    //$omp parallel num_threads(2) reduction(+: up, down)
    {
        var i: i64 = 0;
        //$omp while schedule(static)
        while (i < 20) : (i += 4) {
            up += i;
        }
        var j: i64 = 20;
        //$omp while schedule(dynamic)
        while (j > 0) : (j -= 5) {
            down += j;
        }
    }
    print(up, down);
}
"#);
    // up: 0+4+8+12+16 = 40; down: 20+15+10+5 = 50.
    assert_eq!(out, vec!["40 50"]);
}

#[test]
fn firstprivate_on_loop() {
    let out = run(r#"
fn main() void {
    var scale: i64 = 10;
    var total: i64 = 0;
    //$omp parallel num_threads(2) firstprivate(scale) reduction(+: total)
    {
        var i: i64 = 0;
        //$omp while firstprivate(scale)
        while (i < 10) : (i += 1) {
            total += scale;
        }
    }
    print(total);
}
"#);
    assert_eq!(out, vec!["100"]);
}

// -- synchronisation directives ---------------------------------------------------

#[test]
fn single_runs_once_and_synchronises() {
    let out = run(r#"
fn main() void {
    var winner_count: i64 = 0;
    //$omp parallel num_threads(4) reduction(+: winner_count)
    {
        //$omp single
        {
            winner_count += 1;
        }
    }
    print(winner_count);
}
"#);
    assert_eq!(out, vec!["1"]);
}

#[test]
fn critical_protects_shared_updates() {
    let out = run(r#"
fn main() void {
    var counter: i64 = 0;
    //$omp parallel num_threads(4) shared(counter)
    {
        var k: i64 = 0;
        while (k < 100) : (k += 1) {
            //$omp critical (c1)
            {
                counter = counter + 1;
            }
        }
    }
    print(counter);
}
"#);
    assert_eq!(out, vec!["400"]);
}

#[test]
fn atomic_updates_shared_scalar() {
    let out = run(r#"
fn main() void {
    var hits: i64 = 0;
    //$omp parallel num_threads(4) shared(hits)
    {
        var k: i64 = 0;
        while (k < 250) : (k += 1) {
            //$omp atomic
            hits += 1;
        }
    }
    print(hits);
}
"#);
    assert_eq!(out, vec!["1000"]);
}

#[test]
fn atomic_on_array_elements() {
    let out = run(r#"
fn main() void {
    var q: []i64 = @allocI(2);
    //$omp parallel num_threads(4) shared(q)
    {
        var k: i64 = 0;
        while (k < 100) : (k += 1) {
            //$omp atomic
            q[k % 2] += 1;
        }
    }
    print(q[0], q[1]);
}
"#);
    assert_eq!(out, vec!["200 200"]);
}

// -- errors and safety -------------------------------------------------------------

#[test]
fn out_of_bounds_is_caught_in_debug_mode() {
    zomp::safety::with_safety_mode(zomp::safety::SafetyMode::Debug, || {
        let err = Vm::run(
            r#"
fn main() void {
    var a: []f64 = @allocF(3);
    a[3] = 1.0;
}
"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
    });
}

#[test]
fn runtime_error_inside_region_propagates() {
    let err = Vm::run(
        r#"
fn main() void {
    //$omp parallel num_threads(3)
    {
        var x: i64 = 1 / 0;
        _ = x;
    }
}
"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
}

#[test]
fn unknown_variable_reports_error() {
    let err = Vm::run("fn main() void { print(nope); }").unwrap_err();
    assert!(err.to_string().contains("unknown variable"), "{err}");
}

// -- a miniature NPB-style kernel through the whole pipeline -----------------------

#[test]
fn mini_dot_product_matches_serial() {
    // A miniature CG building block: dot product with region + loop
    // reduction, verified against the serial loop in the same program.
    let out = run(r#"
fn main() void {
    var n: i64 = 512;
    var x: []f64 = @allocF(512);
    var y: []f64 = @allocF(512);
    var init: i64 = 0;
    while (init < n) : (init += 1) {
        x[init] = @intToFloat(init);
        y[init] = 2.0;
    }

    var serial: f64 = 0.0;
    var i: i64 = 0;
    while (i < n) : (i += 1) {
        serial = serial + x[i] * y[i];
    }

    var dot: f64 = 0.0;
    //$omp parallel num_threads(4) shared(x, y, dot) firstprivate(n)
    {
        var j: i64 = 0;
        //$omp while schedule(guided) reduction(+: dot)
        while (j < n) : (j += 1) {
            dot = dot + x[j] * y[j];
        }
    }

    if (dot == serial) {
        print("match", dot);
    } else {
        print("MISMATCH", dot, serial);
    }
}
"#);
    assert_eq!(out, vec!["match 261632.0"]);
}

// -- orphaned constructs (outside any parallel region) -------------------------

#[test]
fn worksharing_outside_region_runs_serially() {
    // OpenMP: a worksharing construct outside a parallel region binds to an
    // implicit team of one.
    let out = run(r#"
fn main() void {
    var s: i64 = 0;
    var i: i64 = 0;
    //$omp while schedule(dynamic, 4)
    while (i < 50) : (i += 1) {
        s += i;
    }
    print(s, omp.in_parallel());
}
"#);
    assert_eq!(out, vec!["1225 false"]);
}

#[test]
fn orphaned_single_and_master_run() {
    let out = run(r#"
fn main() void {
    var x: i64 = 0;
    //$omp master
    { x += 1; }
    //$omp single
    { x += 10; }
    //$omp barrier
    print(x);
}
"#);
    assert_eq!(out, vec!["11"]);
}

#[test]
fn wtime_is_available_in_zag() {
    let out = run(r#"
fn main() void {
    var t0: f64 = omp.get_wtime();
    var spin: i64 = 0;
    while (spin < 1000) : (spin += 1) {
        _ = spin;
    }
    var t1: f64 = omp.get_wtime();
    print(t1 >= t0);
}
"#);
    assert_eq!(out, vec!["true"]);
}

#[test]
fn reduction_min_over_loop() {
    let out = run(r#"
fn main() void {
    var lo: i64 = 1000000;
    //$omp parallel num_threads(3) reduction(min: lo)
    {
        var i: i64 = 0;
        //$omp while schedule(dynamic, 5)
        while (i < 100) : (i += 1) {
            var v: i64 = (i - 40) * (i - 40);
            if (v < lo) {
                lo = v;
            }
        }
    }
    print(lo);
}
"#);
    assert_eq!(out, vec!["0"]);
}

#[test]
fn nested_parallel_serialises_in_zag() {
    let out = run(r#"
fn main() void {
    var outer_n: i64 = 0;
    var inner_n: i64 = 0;
    //$omp parallel num_threads(2) reduction(+: outer_n, inner_n)
    {
        outer_n += omp.get_num_threads();
        //$omp parallel num_threads(8) reduction(+: inner_n)
        {
            inner_n += omp.get_num_threads();
        }
    }
    print(outer_n, inner_n);
}
"#);
    // 2 threads each seeing team size 2; inner regions serialise to 1.
    assert_eq!(out, vec!["4 2"]);
}

// -- collapse(2) ---------------------------------------------------------------

#[test]
fn collapse2_covers_2d_space_exactly() {
    let out = run(r#"
fn main() void {
    var grid: []i64 = @allocI(600);
    var n: i64 = 20;
    var m: i64 = 30;
    //$omp parallel num_threads(4) shared(grid) firstprivate(n, m)
    {
        var i: i64 = 0;
        //$omp while collapse(2) schedule(dynamic, 7)
        while (i < n) : (i += 1) {
            var j: i64 = 0;
            while (j < m) : (j += 1) {
                grid[i * m + j] = grid[i * m + j] + 1;
            }
        }
    }
    var bad: i64 = 0;
    var k: i64 = 0;
    while (k < 600) : (k += 1) {
        if (grid[k] != 1) {
            bad += 1;
        }
    }
    print(bad);
}
"#);
    assert_eq!(out, vec!["0"]);
}

#[test]
fn collapse2_with_reduction_and_strides() {
    let out = run(r#"
fn main() void {
    var total: i64 = 0;
    //$omp parallel num_threads(3) shared(total)
    {
        var i: i64 = 0;
        //$omp while collapse(2) reduction(+: total)
        while (i < 10) : (i += 2) {
            var j: i64 = 1;
            while (j < 7) : (j += 3) {
                total = total + i * 100 + j;
            }
        }
    }
    print(total);
}
"#);
    // i in {0,2,4,6,8}, j in {1,4}: sum of (i*100 + j) = 2*100*(0+2+4+6+8) + 5*(1+4)
    assert_eq!(out, vec!["4025"]);
}

#[test]
fn collapse3_reports_unsupported() {
    let err = Vm::run(
        r#"
fn main() void {
    var i: i64 = 0;
    //$omp while collapse(3)
    while (i < 2) : (i += 1) {
        var j: i64 = 0;
        while (j < 2) : (j += 1) { }
    }
}
"#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("collapse"), "{err}");
}
