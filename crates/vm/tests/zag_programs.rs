//! Golden tests over the shipped Zag example programs: every `.zag` file in
//! `examples/zag/` must compile, preprocess to a pragma-free fixed point,
//! and execute successfully.

use std::path::PathBuf;

fn zag_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/zag")
}

fn all_programs() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(zag_dir()).expect("examples/zag exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "zag") {
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            out.push((name, std::fs::read_to_string(&path).unwrap()));
        }
    }
    assert!(out.len() >= 3, "expected the shipped sample programs");
    out
}

#[test]
fn every_sample_program_preprocesses_cleanly() {
    for (name, src) in all_programs() {
        let out = zomp_front::preprocess(&src)
            .map_err(|e| panic!("{name}: {}", e.render(&src)))
            .unwrap();
        let ast = zomp_front::parse(&out).unwrap();
        assert!(!ast.has_pragmas(), "{name}: pragmas left");
    }
}

#[test]
fn every_sample_program_runs() {
    for (name, src) in all_programs() {
        let out = zomp_vm::Vm::run(&src)
            .map_err(|e| panic!("{name}: {e}"))
            .unwrap();
        assert!(!out.is_empty(), "{name}: expected output");
    }
}

#[test]
fn pi_program_is_accurate() {
    let src = std::fs::read_to_string(zag_dir().join("pi.zag")).unwrap();
    let out = zomp_vm::Vm::run(&src).unwrap();
    let pi: f64 = out[0].rsplit(' ').next().unwrap().parse().unwrap();
    assert!((pi - std::f64::consts::PI).abs() < 1e-6, "pi = {pi}");
}

#[test]
fn sample_programs_survive_the_formatter() {
    // format -> parse -> same structure, for real programs.
    for (name, src) in all_programs() {
        let a1 = zomp_front::parse(&src).unwrap();
        let formatted = zomp_front::fmt::format(&a1);
        let a2 = zomp_front::parse(&formatted)
            .map_err(|e| panic!("{name}: {}\n{formatted}", e.render(&formatted)))
            .unwrap();
        let tags = |a: &zomp_front::Ast| a.nodes.iter().map(|n| n.tag).collect::<Vec<_>>();
        assert_eq!(tags(&a1), tags(&a2), "{name} changed under formatting");
    }
}

#[test]
fn formatted_sample_programs_still_run() {
    for (name, src) in all_programs() {
        let formatted = zomp_front::fmt::format(&zomp_front::parse(&src).unwrap());
        let out = zomp_vm::Vm::run(&formatted)
            .map_err(|e| panic!("{name} (formatted): {e}\n{formatted}"))
            .unwrap();
        assert!(!out.is_empty(), "{name}: formatted program silent");
    }
}
