//! Golden-file test for the bytecode disassembly of a small loop program,
//! at every optimization level.
//!
//! Codegen changes (new fusion rules, different register assignment,
//! constant-pool ordering) show up as a readable diff against
//! `tests/golden/loop.disasm` (the raw `--opt=0` stream),
//! `tests/golden/loop.opt{1,2,3}.disasm` (the `--dump-bytecode` pre/post
//! view, so fusion regressions are visible as instruction-level diffs),
//! and `tests/golden/loop.ir` (the `--dump-ir` typed block view, so
//! inference regressions show up as type-annotation diffs).
//! To accept a new golden output:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p zomp-vm --test dump_bytecode
//! ```

use zomp_vm::bytecode::{disasm, disasm_stages};
use zomp_vm::OptLevel;

const PROGRAM: &str = r#"fn main() void {
    var total: i64 = 0;
    //$omp parallel num_threads(2) reduction(+: total)
    {
        var i: i64 = 0;
        //$omp while schedule(static)
        while (i < 1000) : (i += 1) {
            total += 1;
        }
    }
    print(total);
}
"#;

fn check(opt: OptLevel, golden: &str) {
    let program = zomp_vm::compile_opt(PROGRAM, Some("golden.zag"), opt).expect("compile");
    // O0 keeps the historical single-stage golden; optimized levels use
    // the pre/post `--dump-bytecode` rendering.
    let got = if opt == OptLevel::O0 {
        disasm(&program.code)
    } else {
        disasm_stages(&program.code)
    };
    let path = format!("{}/tests/golden/{golden}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "bytecode disassembly drifted from tests/golden/{golden}; \
         review the diff and re-bless with UPDATE_GOLDEN=1 if intended"
    );
}

#[test]
fn loop_program_disassembly_matches_golden() {
    check(OptLevel::O0, "loop.disasm");
}

#[test]
fn loop_program_opt1_disassembly_matches_golden() {
    check(OptLevel::O1, "loop.opt1.disasm");
}

#[test]
fn loop_program_opt2_disassembly_matches_golden() {
    check(OptLevel::O2, "loop.opt2.disasm");
}

#[test]
fn loop_program_opt3_disassembly_matches_golden() {
    check(OptLevel::O3, "loop.opt3.disasm");
}

/// The `--dump-ir` surface: blocks, predecessors/successors, and the
/// inferred per-block entry types for the same loop program at `--opt=2`.
#[test]
fn loop_program_ir_dump_matches_golden() {
    let program = zomp_vm::compile_opt(PROGRAM, Some("golden.zag"), OptLevel::O2).expect("compile");
    let got = zomp_vm::ir::dump(&program.code);
    let path = format!("{}/tests/golden/loop.ir", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "IR dump drifted from tests/golden/loop.ir; \
         review the diff and re-bless with UPDATE_GOLDEN=1 if intended"
    );
}
