//! Golden-file test for the bytecode disassembly of a small loop program.
//!
//! Codegen changes (new fusion rules, different register assignment,
//! constant-pool ordering) show up as a readable diff against
//! `tests/golden/loop.disasm`. To accept a new golden output:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p zomp-vm --test dump_bytecode
//! ```

use zomp_vm::bytecode::disasm;

const PROGRAM: &str = r#"fn main() void {
    var total: i64 = 0;
    //$omp parallel num_threads(2) reduction(+: total)
    {
        var i: i64 = 0;
        //$omp while schedule(static)
        while (i < 1000) : (i += 1) {
            total += 1;
        }
    }
    print(total);
}
"#;

#[test]
fn loop_program_disassembly_matches_golden() {
    let program = zomp_vm::compile_named(PROGRAM, "golden.zag").expect("compile");
    let got = disasm(&program.code);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/loop.disasm");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "bytecode disassembly drifted from tests/golden/loop.disasm; \
         review the diff and re-bless with UPDATE_GOLDEN=1 if intended"
    );
}
