//! AST → register-bytecode lowering.
//!
//! The compiler runs once per program load (post-preprocess, so outlined
//! parallel regions and worksharing driver loops are ordinary code) and
//! produces one [`CompiledFn`] per function. The pass is total: constructs
//! the tree-walker would reject *at runtime* (unknown variables, bad
//! operators, bare member reads) lower to [`Insn::Trap`] carrying the
//! walker's exact message, so both backends agree even on erroneous
//! programs that never execute the offending node.
//!
//! Lowering decisions:
//!
//! * **Slot resolution** — every local resolves to a fixed register at
//!   compile time; reads and writes are direct indexing, no name lookup.
//!   Scopes restore the register watermark on exit so sibling blocks (and
//!   per-iteration loop bodies) reuse slots.
//! * **Boxing analysis** — a pre-pass finds `&name` uses; only those
//!   locals live in `Arc<Mutex<Value>>` cells (fresh cell per execution of
//!   the declaration, matching the tree-walker's per-iteration `declare`).
//!   Everything else is an unboxed register — the common case for loop
//!   indices and `f64` accumulators.
//! * **Loop fusion** — `while (v cmp limit) : (v ±= k)` with an unboxed
//!   induction variable compiles to a [`Insn::CmpJumpFalse`] guard plus a
//!   single [`Insn::IncCmpJump`] back-edge.
//! * **Call shapes** — user functions resolve to direct indices, `omp.*`
//!   paths to an interned symbol table (keeping the `builtins::call`
//!   signature), `@builtins` to compile-time [`BuiltinOp`]s.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use zomp_front::ast::{Ast, Node, NodeId, Tag as N};
use zomp_front::token::Tag as T;

use crate::bytecode::{ArithOp, BuiltinOp, CmpOp, CompiledFn, Image, Insn, Reg};
use crate::interp::callee_path;
use crate::value::Value;

/// Compile every function of a parsed (pragma-free) program.
pub fn compile_image(ast: &Ast) -> Image {
    let root = *ast.node(ast.root);
    let mut decls = Vec::new();
    let mut by_name = HashMap::new();
    for &decl in ast.range(&root) {
        let node = ast.node(decl);
        if node.tag == N::FnDecl {
            let name = ast.token_text(node.main_token).to_string();
            // Duplicate names: last declaration wins, as in the walker's
            // function index.
            by_name.insert(name, decls.len());
            decls.push(decl);
        }
    }
    let funcs: Vec<CompiledFn> = decls
        .iter()
        .map(|&decl| FnCx::new(ast, &by_name).compile_fn(decl))
        .collect();
    for f in &funcs {
        if let Err(e) = crate::optimize::verify_fn(f, funcs.len()) {
            panic!("compiler produced invalid bytecode: {e}");
        }
    }
    Image { funcs, by_name }
}

/// Compile and then run the optimization pipeline at the given
/// level. `OptLevel::O0` returns the raw stream unchanged; `O1`/`O2`
/// run the per-function rewrite fixpoint; `O2` additionally emits
/// static Int/Float specializations from whole-image type inference
/// ([`crate::typeck`]); `O3` finally installs the native bulk kernels
/// ([`crate::kernels`]) on the fully-rewritten stream.
pub fn compile_image_opt(ast: &Ast, opt: crate::optimize::OptLevel) -> Image {
    compile_image_opt_collect(ast, opt, None)
}

/// [`compile_image_opt`], optionally filling a [`crate::remarks::PassData`]
/// with per-pass statistics as the pipeline runs (`zag --remarks`). The
/// single pipeline definition — the remark path and the normal path
/// cannot drift.
pub(crate) fn compile_image_opt_collect(
    ast: &Ast,
    opt: crate::optimize::OptLevel,
    mut data: Option<&mut crate::remarks::PassData>,
) -> Image {
    let mut image = compile_image(ast);
    if opt > crate::optimize::OptLevel::O0 {
        let nfuncs = image.funcs.len();
        for f in &mut image.funcs {
            let stats = crate::optimize::optimize_fn_stats(f, opt, nfuncs);
            if let Some(d) = data.as_deref_mut() {
                d.opt_stats.push(stats);
            }
        }
        if opt >= crate::optimize::OptLevel::O2 {
            match data {
                Some(d) => d.sites = crate::typeck::specialize_image_remarked(&mut image),
                None => crate::typeck::specialize_image(&mut image),
            }
        }
        if opt >= crate::optimize::OptLevel::O3 {
            crate::kernels::install_image(&mut image);
        }
    }
    image
}

/// Constant-pool key (floats by bit pattern so `-0.0`/`0.0` stay distinct).
#[derive(Hash, PartialEq, Eq)]
enum CKey {
    Void,
    Undef,
    I(i64),
    F(u64),
    B(bool),
    S(String),
    Fn(String),
}

struct Local {
    name: String,
    reg: Reg,
    boxed: bool,
}

struct LoopCx {
    breaks: Vec<usize>,
    continues: Vec<usize>,
}

struct FnCx<'a> {
    ast: &'a Ast,
    func_ids: &'a HashMap<String, usize>,
    code: Vec<Insn>,
    consts: Vec<Value>,
    const_map: HashMap<CKey, u16>,
    omp_syms: Vec<Vec<String>>,
    sym_map: HashMap<String, u16>,
    scopes: Vec<Vec<Local>>,
    boxed_names: HashSet<String>,
    /// Registers permanently held by params/locals (and loop-pinned
    /// constants) in the current scope chain.
    locals_top: Reg,
    /// Next free temporary; reset to `locals_top` at statement boundaries.
    tmp: Reg,
    /// High-water mark = frame size.
    nregs: Reg,
    loops: Vec<LoopCx>,
    locals_debug: Vec<(Reg, String, bool)>,
}

impl<'a> FnCx<'a> {
    fn new(ast: &'a Ast, func_ids: &'a HashMap<String, usize>) -> FnCx<'a> {
        FnCx {
            ast,
            func_ids,
            code: Vec::new(),
            consts: Vec::new(),
            const_map: HashMap::new(),
            omp_syms: Vec::new(),
            sym_map: HashMap::new(),
            scopes: vec![Vec::new()],
            boxed_names: HashSet::new(),
            locals_top: 0,
            tmp: 0,
            nregs: 0,
            loops: Vec::new(),
            locals_debug: Vec::new(),
        }
    }

    fn compile_fn(mut self, decl: NodeId) -> CompiledFn {
        let node = *self.ast.node(decl);
        let name = self.ast.token_text(node.main_token).to_string();
        let (params, body) = self.ast.fn_parts(&node);
        let params = params.to_vec();
        collect_boxed(self.ast, body, &mut self.boxed_names);
        let mut param_tys = Vec::with_capacity(params.len());
        for &p in &params {
            let pnode = *self.ast.node(p);
            let pname = self.ast.token_text(pnode.main_token).to_string();
            // The parser records the *last* token of a type (`f64` in
            // `[]f64` / `*f64`); the token before it disambiguates the
            // slice/pointer constructors.
            let ty_tok = pnode.lhs;
            let base = self.ast.token_text(ty_tok);
            let decl = match self.ast.tokens[ty_tok as usize - 1].tag {
                T::Star => format!("*{base}"),
                T::RBracket => format!("[]{base}"),
                _ => base.to_string(),
            };
            param_tys.push(decl);
            let boxed = self.boxed_names.contains(&pname);
            let reg = self.alloc_local(&pname, boxed);
            if boxed {
                // Rebox the incoming argument value in a fresh cell.
                self.code.push(Insn::NewCell { dst: reg, src: reg });
            }
        }
        self.compile_block(body);
        self.code.push(Insn::RetVoid);
        CompiledFn {
            name,
            nparams: params.len(),
            param_tys,
            nregs: self.nregs as usize,
            code: self.code,
            consts: self.consts,
            omp_syms: self.omp_syms,
            locals: self.locals_debug,
            pre_opt: None,
            kernels: Vec::new(),
            templates: Vec::new(),
        }
    }

    // -- frame bookkeeping --------------------------------------------------

    fn bump_watermark(&mut self, r: Reg) {
        if r + 1 > self.nregs {
            self.nregs = r + 1;
        }
    }

    fn alloc_tmp(&mut self) -> Reg {
        let r = self.tmp;
        assert!(r < Reg::MAX, "function needs too many registers");
        self.tmp += 1;
        self.bump_watermark(r);
        r
    }

    fn alloc_local(&mut self, name: &str, boxed: bool) -> Reg {
        let r = self.alloc_pinned();
        self.scopes.last_mut().unwrap().push(Local {
            name: name.to_string(),
            reg: r,
            boxed,
        });
        self.locals_debug.push((r, name.to_string(), boxed));
        r
    }

    /// Reserve an anonymous register that survives until scope exit
    /// (loop-pinned constants).
    fn alloc_pinned(&mut self) -> Reg {
        let r = self.locals_top;
        assert!(r < Reg::MAX, "function needs too many registers");
        self.locals_top += 1;
        if self.tmp < self.locals_top {
            self.tmp = self.locals_top;
        }
        self.bump_watermark(r);
        r
    }

    fn lookup(&self, name: &str) -> Option<(Reg, bool)> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|l| l.name == name))
            .map(|l| (l.reg, l.boxed))
    }

    fn dst_reg(&mut self, hint: Option<Reg>) -> Reg {
        hint.unwrap_or_else(|| self.alloc_tmp())
    }

    // -- pools --------------------------------------------------------------

    fn kconst(&mut self, v: Value) -> u16 {
        let key = match &v {
            Value::Void => CKey::Void,
            Value::Undefined => CKey::Undef,
            Value::Int(i) => CKey::I(*i),
            Value::Float(f) => CKey::F(f.to_bits()),
            Value::Bool(b) => CKey::B(*b),
            Value::Str(s) => CKey::S(s.to_string()),
            Value::Fn(n) => CKey::Fn(n.to_string()),
            // Non-literal values never enter the pool.
            _ => unreachable!("non-constant value in const pool"),
        };
        if let Some(&k) = self.const_map.get(&key) {
            return k;
        }
        let k = self.consts.len() as u16;
        self.consts.push(v);
        self.const_map.insert(key, k);
        k
    }

    fn ksym(&mut self, path: &[&str]) -> u16 {
        let joined = path.join(".");
        if let Some(&s) = self.sym_map.get(&joined) {
            return s;
        }
        let s = self.omp_syms.len() as u16;
        self.omp_syms
            .push(path.iter().map(|p| p.to_string()).collect());
        self.sym_map.insert(joined, s);
        s
    }

    // -- emission helpers ---------------------------------------------------

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, sites: &[usize], target: u32) {
        for &site in sites {
            match &mut self.code[site] {
                Insn::Jump { to }
                | Insn::JumpIfFalse { to, .. }
                | Insn::JumpIfTrue { to, .. }
                | Insn::CmpJumpFalse { to, .. }
                | Insn::IncCmpJump { to, .. } => *to = target,
                other => unreachable!("patching non-jump {other:?}"),
            }
        }
    }

    /// Emit a runtime error with the tree-walker's message for a construct
    /// that only fails when executed.
    fn trap(&mut self, msg: String) {
        let k = self.kconst(Value::Str(Arc::from(msg)));
        self.code.push(Insn::Trap { msg: k });
    }

    fn trap_expr(&mut self, msg: String, hint: Option<Reg>) -> Reg {
        self.trap(msg);
        self.dst_reg(hint)
    }

    // -- statements ---------------------------------------------------------

    fn compile_block(&mut self, block: NodeId) {
        let node = *self.ast.node(block);
        debug_assert_eq!(node.tag, N::Block);
        self.scopes.push(Vec::new());
        let saved_top = self.locals_top;
        for &stmt in self.ast.range(&node).to_vec().iter() {
            self.tmp = self.locals_top;
            self.compile_stmt(stmt);
        }
        self.scopes.pop();
        self.locals_top = saved_top;
    }

    fn compile_stmt(&mut self, id: NodeId) {
        let node = *self.ast.node(id);
        match node.tag {
            N::VarDecl | N::ConstDecl => {
                let init = if node.rhs > 0 {
                    self.compile_expr(node.rhs - 1, None)
                } else {
                    let k = self.kconst(Value::Undefined);
                    let d = self.alloc_tmp();
                    self.code.push(Insn::Const { dst: d, k });
                    d
                };
                let name = self.ast.token_text(node.main_token).to_string();
                let boxed = self.boxed_names.contains(&name);
                let reg = self.alloc_local(&name, boxed);
                if boxed {
                    self.code.push(Insn::NewCell {
                        dst: reg,
                        src: init,
                    });
                } else if init != reg {
                    self.code.push(Insn::Move {
                        dst: reg,
                        src: init,
                    });
                }
            }
            N::Assign => self.compile_assign(&node),
            N::CompoundAssign => self.compile_compound(&node),
            N::While => self.compile_while(&node),
            N::If => {
                let (cond, then, els) = self.ast.if_parts(&node);
                let false_jumps = self.compile_cond(cond);
                self.tmp = self.locals_top;
                self.compile_stmt(then);
                match els {
                    Some(els) => {
                        let skip = self.code.len();
                        self.code.push(Insn::Jump { to: 0 });
                        let at_else = self.here();
                        self.patch(&false_jumps, at_else);
                        self.tmp = self.locals_top;
                        self.compile_stmt(els);
                        let end = self.here();
                        self.patch(&[skip], end);
                    }
                    None => {
                        let end = self.here();
                        self.patch(&false_jumps, end);
                    }
                }
            }
            N::Return => {
                if node.lhs > 0 {
                    let r = self.compile_expr(node.lhs - 1, None);
                    self.code.push(Insn::Ret { src: r });
                } else {
                    self.code.push(Insn::RetVoid);
                }
            }
            // Break/continue outside any loop end the function with `void`,
            // exactly as the walker's `Flow` propagation does.
            N::Break => {
                let site = self.code.len();
                self.code.push(Insn::Jump { to: 0 });
                match self.loops.last_mut() {
                    Some(l) => l.breaks.push(site),
                    None => self.code[site] = Insn::RetVoid,
                }
            }
            N::Continue => {
                let site = self.code.len();
                self.code.push(Insn::Jump { to: 0 });
                match self.loops.last_mut() {
                    Some(l) => l.continues.push(site),
                    None => self.code[site] = Insn::RetVoid,
                }
            }
            N::Discard | N::ExprStmt => {
                self.compile_expr(node.lhs, None);
            }
            N::Block => self.compile_block(id),
            other => self.trap(format!("node {other:?} is not a statement")),
        }
    }

    fn compile_assign(&mut self, node: &Node) {
        // The walker evaluates the right-hand side before resolving the
        // place; preserve that order everywhere.
        let target = *self.ast.node(node.lhs);
        match target.tag {
            N::Ident => {
                let name = self.ast.token_text(target.main_token).to_string();
                match self.lookup(&name) {
                    Some((reg, false)) => {
                        let r = self.compile_expr(node.rhs, Some(reg));
                        debug_assert_eq!(r, reg);
                    }
                    Some((cell, true)) => {
                        let r = self.compile_expr(node.rhs, None);
                        self.code.push(Insn::CellSet { cell, src: r });
                    }
                    None => {
                        self.compile_expr(node.rhs, None);
                        self.trap(format!("unknown variable `{name}`"));
                    }
                }
            }
            N::Index => {
                let src = self.compile_expr(node.rhs, None);
                let arr = self.compile_expr(target.lhs, None);
                let idx = self.compile_expr(target.rhs, None);
                self.code.push(Insn::IndexSet { arr, idx, src });
            }
            N::Deref => {
                let src = self.compile_expr(node.rhs, None);
                let ptr = self.compile_expr(target.lhs, None);
                self.code.push(Insn::StorePtr { ptr, src });
            }
            other => {
                self.compile_expr(node.rhs, None);
                self.trap(format!("{other:?} is not assignable"));
            }
        }
    }

    fn compile_compound(&mut self, node: &Node) {
        let op_tok = self.ast.tokens[node.main_token as usize].tag;
        let op = match compound_arith(op_tok) {
            Some(op) => op,
            None => {
                // Walker order: rhs, place, load, then the bad-operator
                // error from `compound_op`.
                self.compile_expr(node.rhs, None);
                let target = *self.ast.node(node.lhs);
                match target.tag {
                    N::Ident | N::Index | N::Deref => {}
                    other => {
                        self.trap(format!("{other:?} is not assignable"));
                        return;
                    }
                }
                self.trap(format!("bad compound operator {op_tok:?}"));
                return;
            }
        };
        let target = *self.ast.node(node.lhs);
        match target.tag {
            N::Ident => {
                let name = self.ast.token_text(target.main_token).to_string();
                match self.lookup(&name) {
                    Some((reg, false)) => {
                        let r = self.compile_expr(node.rhs, None);
                        self.code.push(Insn::Arith {
                            op,
                            dst: reg,
                            a: reg,
                            b: r,
                        });
                    }
                    Some((cell, true)) => {
                        let r = self.compile_expr(node.rhs, None);
                        let t = self.alloc_tmp();
                        self.code.push(Insn::CellGet { dst: t, cell });
                        self.code.push(Insn::Arith {
                            op,
                            dst: t,
                            a: t,
                            b: r,
                        });
                        self.code.push(Insn::CellSet { cell, src: t });
                    }
                    None => {
                        self.compile_expr(node.rhs, None);
                        self.trap(format!("unknown variable `{name}`"));
                    }
                }
            }
            N::Index => {
                let r = self.compile_expr(node.rhs, None);
                let arr = self.compile_expr(target.lhs, None);
                let idx = self.compile_expr(target.rhs, None);
                let t = self.alloc_tmp();
                self.code.push(Insn::Index { dst: t, arr, idx });
                self.code.push(Insn::Arith {
                    op,
                    dst: t,
                    a: t,
                    b: r,
                });
                self.code.push(Insn::IndexSet { arr, idx, src: t });
            }
            N::Deref => {
                let r = self.compile_expr(node.rhs, None);
                let ptr = self.compile_expr(target.lhs, None);
                let t = self.alloc_tmp();
                self.code.push(Insn::Deref { dst: t, ptr });
                self.code.push(Insn::Arith {
                    op,
                    dst: t,
                    a: t,
                    b: r,
                });
                self.code.push(Insn::StorePtr { ptr, src: t });
            }
            other => {
                self.compile_expr(node.rhs, None);
                self.trap(format!("{other:?} is not assignable"));
            }
        }
    }

    /// The `while (v cmp limit) : (v ±= k)` fusion probe: the induction
    /// variable and limit must be unboxed registers (or a literal limit,
    /// pinned), the step a positive integer literal.
    fn fusable_loop(
        &mut self,
        cond: NodeId,
        cont: Option<NodeId>,
    ) -> Option<(Reg, Reg, CmpOp, i32)> {
        let cond_node = *self.ast.node(cond);
        if cond_node.tag != N::BinOp {
            return None;
        }
        let op = cmp_from_token(self.ast.tokens[cond_node.main_token as usize].tag)?;
        let var_node = self.ast.node(cond_node.lhs);
        if var_node.tag != N::Ident {
            return None;
        }
        let var_name = self.ast.token_text(var_node.main_token).to_string();
        let (var, var_boxed) = self.lookup(&var_name)?;
        if var_boxed {
            return None;
        }
        // Continue part: `v += k` / `v -= k` on the same variable.
        let cont_node = *self.ast.node(cont?);
        if cont_node.tag != N::CompoundAssign {
            return None;
        }
        let step_sign = match self.ast.tokens[cont_node.main_token as usize].tag {
            T::PlusEq => 1i64,
            T::MinusEq => -1i64,
            _ => return None,
        };
        let cont_target = self.ast.node(cont_node.lhs);
        if cont_target.tag != N::Ident || self.ast.token_text(cont_target.main_token) != var_name {
            return None;
        }
        let step_node = self.ast.node(cont_node.rhs);
        if step_node.tag != N::IntLit {
            return None;
        }
        let k: i64 = self.ast.token_text(step_node.main_token).parse().ok()?;
        let step = i32::try_from(step_sign * k).ok()?;
        // Limit: an unboxed local (re-read each iteration from its live
        // register, same as the walker re-evaluating the condition) or a
        // literal pinned in a loop-lifetime register.
        let limit_node = *self.ast.node(cond_node.rhs);
        let limit = match limit_node.tag {
            N::Ident => {
                let name = self.ast.token_text(limit_node.main_token);
                match self.lookup(name) {
                    Some((reg, false)) => reg,
                    _ => return None,
                }
            }
            N::IntLit => {
                let v: i64 = self.ast.token_text(limit_node.main_token).parse().ok()?;
                let k = self.kconst(Value::Int(v));
                let pin = self.alloc_pinned();
                self.code.push(Insn::Const { dst: pin, k });
                pin
            }
            _ => return None,
        };
        Some((var, limit, op, step))
    }

    fn compile_while(&mut self, node: &Node) {
        let (cond, body, cont) = self.ast.while_parts(node);
        self.tmp = self.locals_top;
        if let Some((var, limit, op, step)) = self.fusable_loop(cond, cont) {
            let guard = self.code.len();
            self.code.push(Insn::CmpJumpFalse {
                op,
                a: var,
                b: limit,
                to: 0,
            });
            let body_head = self.here();
            self.loops.push(LoopCx {
                breaks: vec![guard],
                continues: Vec::new(),
            });
            self.compile_stmt(body);
            let lc = self.loops.pop().unwrap();
            let at_cont = self.here();
            self.patch(&lc.continues, at_cont);
            self.code.push(Insn::IncCmpJump {
                var,
                step,
                limit,
                op,
                to: body_head,
            });
            let end = self.here();
            self.patch(&lc.breaks, end);
        } else {
            let top = self.here();
            let false_jumps = self.compile_cond(cond);
            self.loops.push(LoopCx {
                breaks: false_jumps,
                continues: Vec::new(),
            });
            self.tmp = self.locals_top;
            self.compile_stmt(body);
            let lc = self.loops.pop().unwrap();
            let at_cont = self.here();
            self.patch(&lc.continues, at_cont);
            if let Some(cont) = cont {
                self.tmp = self.locals_top;
                self.compile_stmt(cont);
            }
            self.code.push(Insn::Jump { to: top });
            let end = self.here();
            self.patch(&lc.breaks, end);
        }
    }

    /// Compile a condition so that control falls through when it is true
    /// and branches (to the returned patch sites) when false.
    fn compile_cond(&mut self, id: NodeId) -> Vec<usize> {
        let node = *self.ast.node(id);
        match node.tag {
            N::BinOp => {
                let tok = self.ast.tokens[node.main_token as usize].tag;
                if let Some(op) = cmp_from_token(tok) {
                    let a = self.compile_expr(node.lhs, None);
                    let b = self.compile_expr(node.rhs, None);
                    let site = self.code.len();
                    self.code.push(Insn::CmpJumpFalse { op, a, b, to: 0 });
                    return vec![site];
                }
                if tok == T::KwAnd {
                    let mut sites = self.compile_cond(node.lhs);
                    sites.extend(self.compile_cond(node.rhs));
                    return sites;
                }
                // `or` and other operators: materialise the value.
            }
            N::UnOp => {
                let tok = self.ast.tokens[node.main_token as usize].tag;
                if tok == T::Bang {
                    let r = self.compile_expr(node.lhs, None);
                    let site = self.code.len();
                    self.code.push(Insn::JumpIfTrue { cond: r, to: 0 });
                    return vec![site];
                }
            }
            _ => {}
        }
        let r = self.compile_expr(id, None);
        let site = self.code.len();
        self.code.push(Insn::JumpIfFalse { cond: r, to: 0 });
        vec![site]
    }

    // -- expressions --------------------------------------------------------

    fn compile_expr(&mut self, id: NodeId, hint: Option<Reg>) -> Reg {
        let node = *self.ast.node(id);
        match node.tag {
            N::IntLit => match self.ast.token_text(node.main_token).parse::<i64>() {
                Ok(v) => self.emit_const(Value::Int(v), hint),
                Err(_) => self.trap_expr("integer literal out of range".into(), hint),
            },
            N::FloatLit => match self.ast.token_text(node.main_token).parse::<f64>() {
                Ok(v) => self.emit_const(Value::Float(v), hint),
                Err(_) => self.trap_expr("bad float literal".into(), hint),
            },
            N::BoolLit => {
                let v = self.ast.tokens[node.main_token as usize].tag == T::KwTrue;
                self.emit_const(Value::Bool(v), hint)
            }
            N::StrLit => {
                let raw = self.ast.token_text(node.main_token);
                let inner = &raw[1..raw.len() - 1];
                let s = inner.replace("\\\"", "\"").replace("\\n", "\n");
                self.emit_const(Value::Str(Arc::from(s)), hint)
            }
            N::UndefinedLit => self.emit_const(Value::Undefined, hint),
            N::Ident => {
                let name = self.ast.token_text(node.main_token).to_string();
                match self.lookup(&name) {
                    Some((reg, false)) => match hint {
                        Some(h) if h != reg => {
                            self.code.push(Insn::Move { dst: h, src: reg });
                            h
                        }
                        Some(h) => h,
                        None => reg,
                    },
                    Some((cell, true)) => {
                        let d = self.dst_reg(hint);
                        self.code.push(Insn::CellGet { dst: d, cell });
                        d
                    }
                    None if self.func_ids.contains_key(&name) => {
                        self.emit_const(Value::Fn(Arc::from(name)), hint)
                    }
                    None => self.trap_expr(format!("unknown variable `{name}`"), hint),
                }
            }
            N::BinOp => self.compile_binop(&node, hint),
            N::UnOp => {
                let tok = self.ast.tokens[node.main_token as usize].tag;
                match tok {
                    T::Amp => self.compile_addr(node.lhs, hint),
                    T::Minus => {
                        let r = self.compile_expr(node.lhs, None);
                        let d = self.dst_reg(hint);
                        self.code.push(Insn::Neg { dst: d, src: r });
                        d
                    }
                    T::Bang => {
                        let r = self.compile_expr(node.lhs, None);
                        let d = self.dst_reg(hint);
                        self.code.push(Insn::Not { dst: d, src: r });
                        d
                    }
                    other => self.trap_expr(format!("bad unary operator {other:?}"), hint),
                }
            }
            N::Deref => {
                let p = self.compile_expr(node.lhs, None);
                let d = self.dst_reg(hint);
                self.code.push(Insn::Deref { dst: d, ptr: p });
                d
            }
            N::Index => {
                let arr = self.compile_expr(node.lhs, None);
                let idx = self.compile_expr(node.rhs, None);
                let d = self.dst_reg(hint);
                self.code.push(Insn::Index { dst: d, arr, idx });
                d
            }
            N::Member => self.trap_expr(
                format!("`{}` has no readable fields", self.ast.node_text(node.lhs)),
                hint,
            ),
            N::Call => self.compile_call(&node, hint),
            N::BuiltinCall => {
                let name = self.ast.token_text(node.main_token).to_string();
                let ids = self.ast.extra(node.lhs, node.rhs).to_vec();
                let (base, n) = self.compile_args(&ids);
                let op = BuiltinOp::from_name(&name);
                let name_k = self.kconst(Value::Str(Arc::from(name)));
                let d = self.dst_reg(hint);
                self.code.push(Insn::Builtin {
                    dst: d,
                    op,
                    name_k,
                    base,
                    n,
                });
                d
            }
            other => self.trap_expr(format!("node {other:?} is not an expression"), hint),
        }
    }

    fn compile_binop(&mut self, node: &Node, hint: Option<Reg>) -> Reg {
        let tok = self.ast.tokens[node.main_token as usize].tag;
        // Short-circuit logical operators produce a `Bool` on every path.
        if tok == T::KwAnd || tok == T::KwOr {
            let d = self.dst_reg(hint);
            let a = self.compile_expr(node.lhs, None);
            let short = self.code.len();
            if tok == T::KwAnd {
                self.code.push(Insn::JumpIfFalse { cond: a, to: 0 });
            } else {
                self.code.push(Insn::JumpIfTrue { cond: a, to: 0 });
            }
            let b = self.compile_expr(node.rhs, None);
            self.code.push(Insn::Truthy { dst: d, src: b });
            let skip = self.code.len();
            self.code.push(Insn::Jump { to: 0 });
            let at_short = self.here();
            self.patch(&[short], at_short);
            let k = self.kconst(Value::Bool(tok == T::KwOr));
            self.code.push(Insn::Const { dst: d, k });
            let end = self.here();
            self.patch(&[skip], end);
            return d;
        }
        if let Some(op) = arith_from_token(tok) {
            let a = self.compile_expr(node.lhs, None);
            let b = self.compile_expr(node.rhs, None);
            let d = self.dst_reg(hint);
            self.code.push(Insn::Arith { op, dst: d, a, b });
            return d;
        }
        if let Some(op) = cmp_from_token(tok) {
            let a = self.compile_expr(node.lhs, None);
            let b = self.compile_expr(node.rhs, None);
            let d = self.dst_reg(hint);
            self.code.push(Insn::Cmp { op, dst: d, a, b });
            return d;
        }
        // The walker evaluates both operands before rejecting the operator.
        self.compile_expr(node.lhs, None);
        self.compile_expr(node.rhs, None);
        self.trap_expr(format!("bad binary operator {tok:?}"), hint)
    }

    /// `&target` — the walker's `eval_addr`/`eval_place` pair.
    fn compile_addr(&mut self, target: NodeId, hint: Option<Reg>) -> Reg {
        let node = *self.ast.node(target);
        match node.tag {
            N::Ident => {
                let name = self.ast.token_text(node.main_token).to_string();
                match self.lookup(&name) {
                    // The boxing pre-pass guarantees any `&name` target is
                    // boxed, so its register already holds the `Ptr`.
                    Some((reg, true)) => match hint {
                        Some(h) if h != reg => {
                            self.code.push(Insn::Move { dst: h, src: reg });
                            h
                        }
                        Some(h) => h,
                        None => reg,
                    },
                    Some((_, false)) => {
                        unreachable!("address-taken local `{name}` not boxed")
                    }
                    None => self.trap_expr(format!("unknown variable `{name}`"), hint),
                }
            }
            N::Index => {
                let arr = self.compile_expr(node.lhs, None);
                let idx = self.compile_expr(node.rhs, None);
                let d = self.dst_reg(hint);
                self.code.push(Insn::ElemAddr { dst: d, arr, idx });
                d
            }
            N::Deref => {
                let p = self.compile_expr(node.lhs, None);
                let d = self.dst_reg(hint);
                self.code.push(Insn::AddrDeref { dst: d, src: p });
                d
            }
            other => self.trap_expr(format!("{other:?} is not assignable"), hint),
        }
    }

    /// Evaluate call arguments into a fresh contiguous register block.
    /// All slots are reserved up front so temporaries of one argument
    /// (e.g. a nested call) cannot interleave with later slots.
    fn compile_args(&mut self, ids: &[u32]) -> (Reg, u16) {
        let base = self.tmp;
        for _ in ids {
            self.alloc_tmp();
        }
        for (i, &a) in ids.iter().enumerate() {
            let slot = base + i as Reg;
            let r = self.compile_expr(a, Some(slot));
            debug_assert_eq!(r, slot);
        }
        (base, ids.len() as u16)
    }

    fn compile_call(&mut self, node: &Node, hint: Option<Reg>) -> Reg {
        let ids = self.ast.call_args(node).to_vec();
        let (base, n) = self.compile_args(&ids);
        let path = callee_path(self.ast, node.lhs);
        match path.as_deref() {
            Some(["print"]) => {
                self.code.push(Insn::Print { base, n });
                self.emit_const(Value::Void, hint)
            }
            Some(["omp", rest @ ..]) if !rest.is_empty() => {
                let sym = self.ksym(rest);
                let d = self.dst_reg(hint);
                self.code.push(Insn::OmpCall {
                    dst: d,
                    sym,
                    base,
                    n,
                });
                d
            }
            Some([name]) if self.func_ids.contains_key(*name) => {
                let func = self.func_ids[*name] as u16;
                let d = self.dst_reg(hint);
                self.code.push(Insn::Call {
                    dst: d,
                    func,
                    base,
                    n,
                });
                d
            }
            _ => {
                // Fall back: the callee expression must evaluate to a
                // function value (walker order: arguments first).
                let callee = self.compile_expr(node.lhs, None);
                let d = self.dst_reg(hint);
                self.code.push(Insn::CallValue {
                    dst: d,
                    callee,
                    base,
                    n,
                });
                d
            }
        }
    }

    fn emit_const(&mut self, v: Value, hint: Option<Reg>) -> Reg {
        let k = self.kconst(v);
        let d = self.dst_reg(hint);
        self.code.push(Insn::Const { dst: d, k });
        d
    }
}

// ---------------------------------------------------------------------------
// Operator tables
// ---------------------------------------------------------------------------

fn arith_from_token(tok: T) -> Option<ArithOp> {
    Some(match tok {
        T::Plus => ArithOp::Add,
        T::Minus => ArithOp::Sub,
        T::Star => ArithOp::Mul,
        T::Slash => ArithOp::Div,
        T::Percent => ArithOp::Rem,
        _ => return None,
    })
}

fn cmp_from_token(tok: T) -> Option<CmpOp> {
    Some(match tok {
        T::Lt => CmpOp::Lt,
        T::LtEq => CmpOp::Le,
        T::Gt => CmpOp::Gt,
        T::GtEq => CmpOp::Ge,
        T::EqEq => CmpOp::Eq,
        T::BangEq => CmpOp::Ne,
        _ => return None,
    })
}

fn compound_arith(tok: T) -> Option<ArithOp> {
    Some(match tok {
        T::PlusEq => ArithOp::Add,
        T::MinusEq => ArithOp::Sub,
        T::StarEq => ArithOp::Mul,
        T::SlashEq => ArithOp::Div,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Boxing pre-pass
// ---------------------------------------------------------------------------

/// Record every name whose address is taken (`&name`) anywhere in the
/// function body. Conservative: shadowed declarations of the same name are
/// all boxed.
fn collect_boxed(ast: &Ast, id: NodeId, out: &mut HashSet<String>) {
    let node = *ast.node(id);
    match node.tag {
        N::Root | N::Block => {
            for &c in ast.range(&node).to_vec().iter() {
                collect_boxed(ast, c, out);
            }
        }
        N::FnDecl => {
            let (_, body) = ast.fn_parts(&node);
            collect_boxed(ast, body, out);
        }
        N::VarDecl | N::ConstDecl if node.rhs > 0 => {
            collect_boxed(ast, node.rhs - 1, out);
        }
        N::Assign | N::CompoundAssign | N::BinOp | N::Index => {
            collect_boxed(ast, node.lhs, out);
            collect_boxed(ast, node.rhs, out);
        }
        N::While => {
            let (cond, body, cont) = ast.while_parts(&node);
            collect_boxed(ast, cond, out);
            collect_boxed(ast, body, out);
            if let Some(c) = cont {
                collect_boxed(ast, c, out);
            }
        }
        N::If => {
            let (cond, then, els) = ast.if_parts(&node);
            collect_boxed(ast, cond, out);
            collect_boxed(ast, then, out);
            if let Some(e) = els {
                collect_boxed(ast, e, out);
            }
        }
        N::Return if node.lhs > 0 => {
            collect_boxed(ast, node.lhs - 1, out);
        }
        N::Discard | N::ExprStmt | N::Member | N::Deref => collect_boxed(ast, node.lhs, out),
        N::UnOp => {
            if ast.tokens[node.main_token as usize].tag == T::Amp {
                let target = ast.node(node.lhs);
                if target.tag == N::Ident {
                    out.insert(ast.token_text(target.main_token).to_string());
                }
            }
            collect_boxed(ast, node.lhs, out);
        }
        N::Call => {
            collect_boxed(ast, node.lhs, out);
            for &a in ast.call_args(&node).to_vec().iter() {
                collect_boxed(ast, a, out);
            }
        }
        N::BuiltinCall => {
            for &a in ast.extra(node.lhs, node.rhs).to_vec().iter() {
                collect_boxed(ast, a, out);
            }
        }
        N::Param
        | N::Ident
        | N::IntLit
        | N::FloatLit
        | N::StrLit
        | N::BoolLit
        | N::UndefinedLit
        | N::Break
        | N::Continue => {}
        // OpenMP nodes never survive preprocessing; nothing to scan.
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::disasm_fn;

    fn image_for(src: &str) -> Image {
        let pre = zomp_front::preprocess(src).expect("preprocess");
        let ast = zomp_front::parse(&pre).expect("parse");
        compile_image(&ast)
    }

    #[test]
    fn induction_loops_fuse_to_inccmpjump() {
        let image = image_for(
            r#"
fn main() void {
    var s: i64 = 0;
    var i: i64 = 0;
    while (i < 100) : (i += 1) {
        s = s + i;
    }
    print(s);
}
"#,
        );
        let f = image.get("main").unwrap();
        let fused = f
            .code
            .iter()
            .filter(|i| matches!(i, Insn::IncCmpJump { .. }))
            .count();
        assert_eq!(fused, 1, "{}", disasm_fn(f));
        // No name lookups anywhere: locals resolved to registers.
        assert!(f.locals.iter().any(|(_, n, _)| n == "s"));
        assert!(f.locals.iter().any(|(_, n, _)| n == "i"));
    }

    #[test]
    fn only_address_taken_locals_are_boxed() {
        let image = image_for(
            r#"
fn take(p: *f64) void { p.* = 1.0; }
fn main() void {
    var a: f64 = 0.0;
    var b: f64 = 0.0;
    take(&a);
    b = b + 1.0;
    print(a, b);
}
"#,
        );
        let f = image.get("main").unwrap();
        let boxed: Vec<&str> = f
            .locals
            .iter()
            .filter(|(_, _, boxed)| *boxed)
            .map(|(_, n, _)| n.as_str())
            .collect();
        assert_eq!(boxed, vec!["a"], "{}", disasm_fn(f));
    }

    #[test]
    fn preprocessed_driver_loop_fuses() {
        // The worksharing driver shape the preprocessor emits:
        // `while (i < __ub) : (i += 1)` must fuse even when nested inside
        // the chunk-pull loop.
        let image = image_for(
            r#"
fn main() void {
    var total: i64 = 0;
    //$omp parallel num_threads(2) reduction(+: total)
    {
        var i: i64 = 0;
        //$omp while schedule(static)
        while (i < 1000) : (i += 1) {
            total += 1;
        }
    }
    print(total);
}
"#,
        );
        let outlined = image.get("__omp_outlined_0").expect("outlined fn");
        assert!(
            outlined
                .code
                .iter()
                .any(|i| matches!(i, Insn::IncCmpJump { .. })),
            "{}",
            disasm_fn(outlined)
        );
        // The chunk-pull loop calls omp.internal.ws_next through the
        // interned symbol table.
        assert!(outlined
            .omp_syms
            .iter()
            .any(|s| s == &["internal", "ws_next"]));
    }

    #[test]
    fn direct_calls_resolve_to_function_indices() {
        let image = image_for(
            r#"
fn helper(x: i64) i64 { return x * 2; }
fn main() void { print(helper(21)); }
"#,
        );
        let f = image.get("main").unwrap();
        assert!(
            f.code.iter().any(|i| matches!(i, Insn::Call { .. })),
            "{}",
            disasm_fn(f)
        );
        assert!(!f.code.iter().any(|i| matches!(i, Insn::CallValue { .. })));
    }
}
