//! Typed-template loop tier (`--opt=3`, installed after the fixed
//! bulk kernels).
//!
//! The fixed kernels in [`crate::kernels`] cover the NPB hot shapes,
//! but any loop that misses all of them falls back to per-instruction
//! dispatch even when its body is a short straight-line run of typed
//! scalar/array operations (the `kernel-missed reason=shape` rows in
//! `--remarks`). This module closes that gap generically: the
//! installer decodes such loop bodies into a chain of monomorphized
//! *template ops* — small `fn(&mut TFrame, &TOp)` functions over an
//! unboxed register frame (`i64`/`f64` slot arrays plus raw
//! `ArrF::cells`/`ArrI::cells` element slices) — and replaces the
//! loop-head instruction with [`Insn::TemplateLoop`]. The runner then
//! executes whole loops as an indirect-threaded chain: one function
//! pointer call per source instruction per iteration, no `Value`
//! boxing, no operand decoding, no match dispatch.
//!
//! Two loop forms are recognised, matching what the compiler emits
//! for `while` loops after optimization:
//!
//! * Form A (do-while): straight-line body ending in an
//!   [`Insn::IncCmpJump`] whose target is the loop head.
//! * Form B (head-guarded): optional straight-line head,
//!   [`Insn::CmpJumpFalse`] to the loop exit, straight-line body,
//!   [`Insn::IncJump`] back to the head.
//!
//! Types are inferred per loop by union-find over scalar registers
//! and array element kinds, seeded by the specialized instruction
//! forms (`ArithII`, `IndexF`, typed pool constants, ...). A loop
//! whose types cannot be pinned statically (all-generic bodies such
//! as a plain `a[i] = b[i]` copy) is installed with *both* an
//! all-`i64` and an all-`f64` variant; the runtime bind picks the
//! first whose type prechecks hold.
//!
//! Correctness contract (identical to the fixed kernels):
//!
//! - Binds type-check every bound register before any side effect;
//!   a mismatch falls through to the next variant and finally back
//!   to the interpreter (quicken to the original head instruction).
//! - Mid-loop failures (bounds, div-by-zero) restore the bound
//!   loop-carried registers to their values at the start of the
//!   failing iteration, write them back, and deopt, so the
//!   interpreter replays the failing iteration and raises the exact
//!   error the bytecode would. To make that replay sound, a template
//!   is only installed when no fallible op executes after the first
//!   array store of an iteration (otherwise the replay could re-read
//!   locations the partial iteration already wrote).
//! - Float expression shapes are preserved exactly (separate
//!   mul-then-add for the fma-fused forms), so results stay
//!   bit-identical to interpretation.
//! - Loads and stores execute in interpreter order within an
//!   iteration, so aliasing arrays behave exactly as interpreted.

use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::bytecode::{ArithOp, CmpOp, CompiledFn, Insn, Reg};
use crate::value::{ArrF, ArrI, Value};

/// Scalar slots per kind in a template frame.
pub const NSLOT: usize = 32;
/// Array slots per element kind in a template frame.
pub const NARR: usize = 6;
/// Longest loop (source instructions, head through back-edge) the
/// matcher will decode.
const MAX_INSNS: usize = 24;

type Bail = &'static str;
const BAIL_TYPE: Bail = "type";
const BAIL_BOUNDS: Bail = "bounds";
const BAIL_DIV: Bail = "div";

// ---------------------------------------------------------------------------
// Descriptors
// ---------------------------------------------------------------------------

/// Descriptor for one installed template, stored in
/// [`CompiledFn::templates`] and referenced by [`Insn::TemplateLoop`].
#[derive(Clone)]
pub struct TemplateDesc {
    /// The loop-head instruction the `TemplateLoop` replaced; deopt
    /// target (the dispatch loop re-quickens to this and replays).
    pub orig: Insn,
    /// pc to resume at after a normal exit.
    pub exit: u32,
    /// Pragma `unit:line` label of the nearest enclosing worksharing
    /// loop, `""` when unnamed (same resolution as kernel labels).
    pub label: &'static str,
    pub prog: Arc<TProg>,
}

/// One compiled template program: the typed variants plus metadata.
pub struct TProg {
    /// Candidate monomorphizations, tried in order at entry. More
    /// than one only when the loop's types could not be pinned
    /// statically (see module docs).
    pub variants: Vec<TVariant>,
    /// Induction register (for trace spans: native iterations are the
    /// before/after delta of this register).
    pub ind: Reg,
    /// Source instructions covered (head through back-edge), for
    /// remarks and disassembly.
    pub ninsns: usize,
}

/// The loop control shape of a variant. Fields index frame slots,
/// not registers.
#[derive(Clone, Copy)]
pub enum Shape {
    /// Body then `IncCmpJump`: run ops, bump induction, test.
    DoWhile {
        ind: u16,
        step: i64,
        lim: u16,
        cmp: CmpOp,
    },
    /// Head ops, guard test, body ops, `IncJump`: `nhead` splits
    /// `ops`; the guard compares slots `ga`/`gb` (`gflt` selects the
    /// float file).
    HeadGuard {
        ind: u16,
        step: i64,
        nhead: u16,
        ga: u16,
        gb: u16,
        gflt: bool,
        cmp: CmpOp,
    },
}

/// Entry bind: type-check a register and load it into the frame.
/// Any mismatch rejects the variant before any side effect.
#[derive(Clone, Copy)]
pub enum Bind {
    Int { reg: Reg, slot: u16 },
    Flt { reg: Reg, slot: u16 },
    ArrI { reg: Reg, slot: u16 },
    ArrF { reg: Reg, slot: u16 },
    CellI { reg: Reg, slot: u16 },
    CellF { reg: Reg, slot: u16 },
}

/// Exit write-back: box a frame slot back into a register.
#[derive(Clone, Copy)]
pub enum Out {
    Int { reg: Reg, slot: u16 },
    Flt { reg: Reg, slot: u16 },
}

/// One monomorphized template variant.
pub struct TVariant {
    pub binds: Vec<Bind>,
    /// Loop-invariant constant loads, run once after a successful
    /// bind: a `Const` no other op overwrites reloads the same value
    /// every iteration, so it executes here instead of in the loop
    /// (its slot still feeds the exit write-back).
    pub prelude: Vec<TOp>,
    pub ops: Vec<TOp>,
    pub shape: Shape,
    /// Written registers boxed back on every normal exit.
    pub outs: Vec<Out>,
    /// Written registers boxed back only when at least one full body
    /// execution happened (Form B regs defined only inside the
    /// guarded body: after zero iterations their slots hold garbage
    /// and the interpreter would not have touched them either).
    pub outs_body: Vec<Out>,
    /// Bound-and-written registers boxed back on a bail, after
    /// restoring their start-of-iteration snapshot, so the
    /// interpreter replays the failing iteration from exact state.
    pub bail_outs: Vec<Out>,
    /// Slots snapshotted at the top of each iteration when any op is
    /// fallible: `(float?, slot)`.
    pub snap: Vec<(bool, u16)>,
    pub fallible: bool,
    /// `ai`/`af` frame slots the variant stores into (seqlock write
    /// fences open for the whole run, as the kernels do).
    pub wf_i: Vec<u16>,
    pub wf_f: Vec<u16>,
}

/// One template op: a monomorphized function over the frame plus its
/// pre-resolved operands. `a` is the destination (or target array
/// slot for stores), `b`/`c` are sources, `off` the index offset,
/// `ki`/`kf` an immediate resolved from the constant pool at install
/// time (the pool is frozen after installation).
pub struct TOp {
    pub f: OpFn,
    pub a: u16,
    pub b: u16,
    pub c: u16,
    pub off: i64,
    pub ki: i64,
    pub kf: f64,
}

pub type OpFn = fn(&mut TFrame<'_>, &TOp) -> Result<(), Bail>;

/// The unboxed execution frame: fixed scalar slot files plus raw
/// element slices of the bound arrays (the owning `Arc`s are held
/// alive by the runner for the duration of the run).
pub struct TFrame<'a> {
    pub ints: [i64; NSLOT],
    pub flts: [f64; NSLOT],
    pub ai: [&'a [UnsafeCell<i64>]; NARR],
    pub af: [&'a [UnsafeCell<f64>]; NARR],
}

impl TemplateDesc {
    /// Report every register the template binds or writes back, for
    /// bytecode verification.
    pub fn visit_regs(&self, mut f: impl FnMut(Reg)) {
        f(self.prog.ind);
        for v in &self.prog.variants {
            for b in &v.binds {
                match *b {
                    Bind::Int { reg, .. }
                    | Bind::Flt { reg, .. }
                    | Bind::ArrI { reg, .. }
                    | Bind::ArrF { reg, .. }
                    | Bind::CellI { reg, .. }
                    | Bind::CellF { reg, .. } => f(reg),
                }
            }
            for o in v.outs.iter().chain(&v.outs_body).chain(&v.bail_outs) {
                match *o {
                    Out::Int { reg, .. } | Out::Flt { reg, .. } => f(reg),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Template ops (the monomorphized instruction set)
// ---------------------------------------------------------------------------

/// `i64::MIN / -1` overflows (a panic in the interpreter's checked
/// division as well); deopt so the interpreter owns it.
fn div_ok(x: i64, y: i64) -> bool {
    y != 0 && !(y == -1 && x == i64::MIN)
}

macro_rules! op_ii {
    ($n:ident, |$x:ident, $y:ident| $e:expr) => {
        fn $n(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
            let $x = fr.ints[op.b as usize];
            let $y = fr.ints[op.c as usize];
            fr.ints[op.a as usize] = $e;
            Ok(())
        }
    };
}
macro_rules! op_ii_div {
    ($n:ident, |$x:ident, $y:ident| $e:expr) => {
        fn $n(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
            let $x = fr.ints[op.b as usize];
            let $y = fr.ints[op.c as usize];
            if !div_ok($x, $y) {
                return Err(BAIL_DIV);
            }
            fr.ints[op.a as usize] = $e;
            Ok(())
        }
    };
}
macro_rules! op_ik {
    ($n:ident, |$x:ident, $k:ident| $e:expr) => {
        fn $n(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
            let $x = fr.ints[op.b as usize];
            let $k = op.ki;
            fr.ints[op.a as usize] = $e;
            Ok(())
        }
    };
}
macro_rules! op_ik_div {
    ($n:ident, |$x:ident, $k:ident| $num:ident / $den:ident, $e:expr) => {
        fn $n(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
            let $x = fr.ints[op.b as usize];
            let $k = op.ki;
            if !div_ok($num, $den) {
                return Err(BAIL_DIV);
            }
            fr.ints[op.a as usize] = $e;
            Ok(())
        }
    };
}
macro_rules! op_ff {
    ($n:ident, |$x:ident, $y:ident| $e:expr) => {
        fn $n(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
            let $x = fr.flts[op.b as usize];
            let $y = fr.flts[op.c as usize];
            fr.flts[op.a as usize] = $e;
            Ok(())
        }
    };
}
macro_rules! op_fk {
    ($n:ident, |$x:ident, $k:ident| $e:expr) => {
        fn $n(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
            let $x = fr.flts[op.b as usize];
            let $k = op.kf;
            fr.flts[op.a as usize] = $e;
            Ok(())
        }
    };
}

op_ii!(add_ii, |x, y| x.wrapping_add(y));
op_ii!(sub_ii, |x, y| x.wrapping_sub(y));
op_ii!(mul_ii, |x, y| x.wrapping_mul(y));
op_ii_div!(div_ii, |x, y| x / y);
op_ii_div!(rem_ii, |x, y| x % y);

op_ik!(addk_i, |x, k| x.wrapping_add(k));
op_ik!(subk_i, |x, k| x.wrapping_sub(k));
op_ik!(mulk_i, |x, k| x.wrapping_mul(k));
op_ik_div!(divk_i, |x, k| x / k, x / k);
op_ik_div!(remk_i, |x, k| x / k, x % k);
op_ik!(addkl_i, |x, k| k.wrapping_add(x));
op_ik!(subkl_i, |x, k| k.wrapping_sub(x));
op_ik!(mulkl_i, |x, k| k.wrapping_mul(x));
op_ik_div!(divkl_i, |x, k| k / x, k / x);
op_ik_div!(remkl_i, |x, k| k / x, k % x);

op_ff!(add_ff, |x, y| x + y);
op_ff!(sub_ff, |x, y| x - y);
op_ff!(mul_ff, |x, y| x * y);
op_ff!(div_ff, |x, y| x / y);
op_ff!(rem_ff, |x, y| x % y);

op_fk!(addk_f, |x, k| x + k);
op_fk!(subk_f, |x, k| x - k);
op_fk!(mulk_f, |x, k| x * k);
op_fk!(divk_f, |x, k| x / k);
op_fk!(remk_f, |x, k| x % k);
op_fk!(addkl_f, |x, k| k + x);
op_fk!(subkl_f, |x, k| k - x);
op_fk!(mulkl_f, |x, k| k * x);
op_fk!(divkl_f, |x, k| k / x);
op_fk!(remkl_f, |x, k| k % x);

// Fused multiply-add pairs (see `fuse`): one dispatch for a multiply
// whose product feeds the directly following add. The product slot
// (`off`) is still written, so the pair's architectural effects — and
// therefore the bind/write-back/bail analyses done over the unfused
// protos — are preserved exactly; floats round in two steps, exactly
// as the separate ops would (never a hardware FMA). For `fma_*` the
// `ki` field carries the second multiplicand's *slot*, not an
// immediate; `fmak_*` carry the immediate in `ki`/`kf` as usual.
fn fma_ii(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    let m = fr.ints[op.c as usize].wrapping_mul(fr.ints[op.ki as usize]);
    fr.ints[op.off as usize] = m;
    fr.ints[op.a as usize] = fr.ints[op.b as usize].wrapping_add(m);
    Ok(())
}
fn fma_ff(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    let m = fr.flts[op.c as usize] * fr.flts[op.ki as usize];
    fr.flts[op.off as usize] = m;
    fr.flts[op.a as usize] = fr.flts[op.b as usize] + m;
    Ok(())
}
fn fmak_i(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    let m = fr.ints[op.c as usize].wrapping_mul(op.ki);
    fr.ints[op.off as usize] = m;
    fr.ints[op.a as usize] = fr.ints[op.b as usize].wrapping_add(m);
    Ok(())
}
fn fmak_f(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    let m = fr.flts[op.c as usize] * op.kf;
    fr.flts[op.off as usize] = m;
    fr.flts[op.a as usize] = fr.flts[op.b as usize] + m;
    Ok(())
}

fn mov_i(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    fr.ints[op.a as usize] = fr.ints[op.b as usize];
    Ok(())
}
fn mov_f(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    fr.flts[op.a as usize] = fr.flts[op.b as usize];
    Ok(())
}
fn const_i(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    fr.ints[op.a as usize] = op.ki;
    Ok(())
}
fn const_f(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    fr.flts[op.a as usize] = op.kf;
    Ok(())
}

/// Loads/stores: `b` is the index slot, `off` the static offset
/// (`IndexOff`/`DerefIndexOff` fold it with a wrapping add, exactly
/// as the interpreter's `index_off`). A negative or too-large index
/// is one unsigned compare.
fn ld_i(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    let i = fr.ints[op.b as usize].wrapping_add(op.off);
    let arr = fr.ai[op.c as usize];
    if (i as u64) >= arr.len() as u64 {
        return Err(BAIL_BOUNDS);
    }
    fr.ints[op.a as usize] = unsafe { *arr.get_unchecked(i as usize).get() };
    Ok(())
}
fn ld_f(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    let i = fr.ints[op.b as usize].wrapping_add(op.off);
    let arr = fr.af[op.c as usize];
    if (i as u64) >= arr.len() as u64 {
        return Err(BAIL_BOUNDS);
    }
    fr.flts[op.a as usize] = unsafe { *arr.get_unchecked(i as usize).get() };
    Ok(())
}
fn st_i(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    let i = fr.ints[op.b as usize].wrapping_add(op.off);
    let arr = fr.ai[op.a as usize];
    if (i as u64) >= arr.len() as u64 {
        return Err(BAIL_BOUNDS);
    }
    unsafe { *arr.get_unchecked(i as usize).get() = fr.ints[op.c as usize] };
    Ok(())
}
fn st_f(fr: &mut TFrame, op: &TOp) -> Result<(), Bail> {
    let i = fr.ints[op.b as usize].wrapping_add(op.off);
    let arr = fr.af[op.a as usize];
    if (i as u64) >= arr.len() as u64 {
        return Err(BAIL_BOUNDS);
    }
    unsafe { *arr.get_unchecked(i as usize).get() = fr.flts[op.c as usize] };
    Ok(())
}

fn cmp_i(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}
fn cmp_f(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Run one template against the current frame. `true` = the loop
/// completed and the written registers were boxed back (jump to
/// `desc.exit`); `false` = deopt (replay `desc.orig` interpreted).
/// Telemetry mirrors the kernel tier: a span per dispatch, native
/// iterations from the induction register's before/after delta, and
/// the machine-readable bail reason on deopt.
pub(crate) fn run(desc: &TemplateDesc, pc: u32, regs: &mut [Value]) -> bool {
    if !zomp::trace::active() {
        return run_inner(&desc.prog, regs).is_ok();
    }
    let t0 = zomp::trace::kernel_begin_ts();
    let ind = desc.prog.ind as usize;
    let before = match regs[ind] {
        Value::Int(v) => v,
        _ => 0,
    };
    let r = run_inner(&desc.prog, regs);
    let after = match regs[ind] {
        Value::Int(v) => v,
        _ => before,
    };
    let iters = after.wrapping_sub(before).max(0) as u64;
    let label = if desc.label.is_empty() {
        "template"
    } else {
        desc.label
    };
    zomp::trace::kernel_end(label, pc, iters, r.err(), t0);
    r.is_ok()
}

fn run_inner(prog: &TProg, regs: &mut [Value]) -> Result<(), Bail> {
    for v in &prog.variants {
        match run_variant(v, regs) {
            VOut::Skip => continue,
            VOut::Done => return Ok(()),
            VOut::Bail(b) => return Err(b),
        }
    }
    Err(BAIL_TYPE)
}

enum VOut {
    /// A bind type-check failed before any side effect; try the next
    /// variant (and ultimately the interpreter).
    Skip,
    Done,
    Bail(Bail),
}

fn run_variant(v: &TVariant, regs: &mut [Value]) -> VOut {
    // Resolve binds first: scalars into local slot files, arrays into
    // owning Arcs (cells lock once, exactly like the kernels — a racy
    // concurrent rebind of the cell itself is unspecified either way).
    let mut ints = [0i64; NSLOT];
    let mut flts = [0f64; NSLOT];
    let mut arci: [Option<Arc<ArrI>>; NARR] = Default::default();
    let mut arcf: [Option<Arc<ArrF>>; NARR] = Default::default();
    for b in &v.binds {
        match *b {
            Bind::Int { reg, slot } => match regs[reg as usize] {
                Value::Int(x) => ints[slot as usize] = x,
                _ => return VOut::Skip,
            },
            Bind::Flt { reg, slot } => match regs[reg as usize] {
                Value::Float(x) => flts[slot as usize] = x,
                _ => return VOut::Skip,
            },
            Bind::ArrI { reg, slot } => match &regs[reg as usize] {
                Value::ArrI(a) => arci[slot as usize] = Some(a.clone()),
                _ => return VOut::Skip,
            },
            Bind::ArrF { reg, slot } => match &regs[reg as usize] {
                Value::ArrF(a) => arcf[slot as usize] = Some(a.clone()),
                _ => return VOut::Skip,
            },
            Bind::CellI { reg, slot } => match &regs[reg as usize] {
                Value::Ptr(p) => match &*p.lock() {
                    Value::ArrI(a) => arci[slot as usize] = Some(a.clone()),
                    _ => return VOut::Skip,
                },
                _ => return VOut::Skip,
            },
            Bind::CellF { reg, slot } => match &regs[reg as usize] {
                Value::Ptr(p) => match &*p.lock() {
                    Value::ArrF(a) => arcf[slot as usize] = Some(a.clone()),
                    _ => return VOut::Skip,
                },
                _ => return VOut::Skip,
            },
        }
    }
    let mut fr = TFrame {
        ints,
        flts,
        ai: [&[]; NARR],
        af: [&[]; NARR],
    };
    for (k, a) in arci.iter().enumerate() {
        if let Some(a) = a {
            fr.ai[k] = a.cells();
        }
    }
    for (k, a) in arcf.iter().enumerate() {
        if let Some(a) = a {
            fr.af[k] = a.cells();
        }
    }
    // Hoisted loop-invariant constant loads (infallible by
    // construction — `Const` ops cannot bail).
    for op in &v.prelude {
        let _ = (op.f)(&mut fr, op);
    }
    // Seqlock write fences on every array the template stores into,
    // held open for the whole run (see `ArrI::range_hint`).
    let mut bump_i = [false; NARR];
    let mut bump_f = [false; NARR];
    for &s in &v.wf_i {
        bump_i[s as usize] = arci[s as usize].as_ref().unwrap().write_fence_begin();
    }
    for &s in &v.wf_f {
        bump_f[s as usize] = arcf[s as usize].as_ref().unwrap().write_fence_begin();
    }
    let r = exec(v, &mut fr);
    for &s in &v.wf_i {
        arci[s as usize].as_ref().unwrap().write_fence_end(bump_i[s as usize]);
    }
    for &s in &v.wf_f {
        arcf[s as usize].as_ref().unwrap().write_fence_end(bump_f[s as usize]);
    }
    match r {
        Ok(ran_body) => {
            for o in &v.outs {
                box_out(o, &fr, regs);
            }
            if ran_body {
                for o in &v.outs_body {
                    box_out(o, &fr, regs);
                }
            }
            VOut::Done
        }
        Err(b) => {
            for o in &v.bail_outs {
                box_out(o, &fr, regs);
            }
            VOut::Bail(b)
        }
    }
}

fn box_out(o: &Out, fr: &TFrame, regs: &mut [Value]) {
    match *o {
        Out::Int { reg, slot } => regs[reg as usize] = Value::Int(fr.ints[slot as usize]),
        Out::Flt { reg, slot } => regs[reg as usize] = Value::Float(fr.flts[slot as usize]),
    }
}

/// Execute the variant's loop. `Ok(ran_body)` on normal exit (whether
/// at least one full guarded-body execution happened); `Err` after
/// restoring the iteration snapshot on a mid-iteration failure.
fn exec(v: &TVariant, fr: &mut TFrame) -> Result<bool, Bail> {
    let mut si = [0i64; NSLOT];
    let mut sf = [0f64; NSLOT];
    let snap = |fr: &TFrame, si: &mut [i64; NSLOT], sf: &mut [f64; NSLOT]| {
        for &(flt, s) in &v.snap {
            if flt {
                sf[s as usize] = fr.flts[s as usize];
            } else {
                si[s as usize] = fr.ints[s as usize];
            }
        }
    };
    let restore = |fr: &mut TFrame, si: &[i64; NSLOT], sf: &[f64; NSLOT]| {
        for &(flt, s) in &v.snap {
            if flt {
                fr.flts[s as usize] = sf[s as usize];
            } else {
                fr.ints[s as usize] = si[s as usize];
            }
        }
    };
    match v.shape {
        Shape::DoWhile {
            ind,
            step,
            lim,
            cmp,
        } => {
            let (ind, lim) = (ind as usize, lim as usize);
            loop {
                if v.fallible {
                    snap(fr, &mut si, &mut sf);
                }
                for op in &v.ops {
                    if let Err(b) = (op.f)(fr, op) {
                        restore(fr, &si, &sf);
                        return Err(b);
                    }
                }
                let next = fr.ints[ind].wrapping_add(step);
                fr.ints[ind] = next;
                if !cmp_i(cmp, next, fr.ints[lim]) {
                    return Ok(true);
                }
            }
        }
        Shape::HeadGuard {
            ind,
            step,
            nhead,
            ga,
            gb,
            gflt,
            cmp,
        } => {
            let (ind, nhead) = (ind as usize, nhead as usize);
            let (ga, gb) = (ga as usize, gb as usize);
            let mut ran_body = false;
            loop {
                if v.fallible {
                    snap(fr, &mut si, &mut sf);
                }
                for op in &v.ops[..nhead] {
                    if let Err(b) = (op.f)(fr, op) {
                        restore(fr, &si, &sf);
                        return Err(b);
                    }
                }
                let taken = if gflt {
                    cmp_f(cmp, fr.flts[ga], fr.flts[gb])
                } else {
                    cmp_i(cmp, fr.ints[ga], fr.ints[gb])
                };
                if !taken {
                    return Ok(ran_body);
                }
                for op in &v.ops[nhead..] {
                    if let Err(b) = (op.f)(fr, op) {
                        restore(fr, &si, &sf);
                        return Err(b);
                    }
                }
                fr.ints[ind] = fr.ints[ind].wrapping_add(step);
                ran_body = true;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Matching: decode + type inference
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum K {
    Unk,
    Int,
    Flt,
}

/// Union-find over type variables with a kind per class.
struct Uf {
    parent: Vec<u32>,
    kind: Vec<K>,
}

impl Uf {
    fn new() -> Uf {
        Uf {
            parent: Vec::new(),
            kind: Vec::new(),
        }
    }
    fn fresh(&mut self) -> u32 {
        let v = self.parent.len() as u32;
        self.parent.push(v);
        self.kind.push(K::Unk);
        v
    }
    fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            let p = self.parent[v as usize];
            self.parent[v as usize] = self.parent[p as usize];
            v = p;
        }
        v
    }
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return true;
        }
        let merged = match (self.kind[ra as usize], self.kind[rb as usize]) {
            (K::Unk, k) | (k, K::Unk) => k,
            (x, y) if x == y => x,
            _ => return false,
        };
        self.parent[ra as usize] = rb;
        self.kind[rb as usize] = merged;
        true
    }
    fn set(&mut self, v: u32, k: K) -> bool {
        let r = self.find(v);
        match self.kind[r as usize] {
            K::Unk => {
                self.kind[r as usize] = k;
                true
            }
            x => x == k,
        }
    }
    fn kind(&mut self, v: u32) -> K {
        let r = self.find(v);
        self.kind[r as usize]
    }
}

/// Typed pool immediates.
#[derive(Clone, Copy)]
enum KVal {
    I(i64),
    F(f64),
}

impl KVal {
    fn k(self) -> K {
        match self {
            KVal::I(_) => K::Int,
            KVal::F(_) => K::Flt,
        }
    }
}

/// Scalar operand key: real registers are their register number,
/// decomposition scratch temporaries start at `SCRATCH0` (never bound
/// or written back; always defined before use by construction).
const SCRATCH0: u32 = 1 << 16;

/// Proto-op: a decoded, decomposed body instruction with type
/// constraints applied but kinds not yet resolved.
#[derive(Clone, Copy)]
enum P {
    Mov { d: u32, s: u32 },
    Const { d: u32, v: KVal },
    Bin { op: ArithOp, d: u32, a: u32, b: u32 },
    /// `left`: the immediate is the left operand (`ArithKL`).
    BinK {
        op: ArithOp,
        d: u32,
        a: u32,
        v: KVal,
        left: bool,
    },
    Ld { d: u32, arr: Reg, idx: u32, off: i32 },
    St { arr: Reg, idx: u32, s: u32 },
}

impl P {
    fn reads(&self, mut f: impl FnMut(u32)) {
        match *self {
            P::Mov { s, .. } => f(s),
            P::Const { .. } => {}
            P::Bin { a, b, .. } => {
                f(a);
                f(b);
            }
            P::BinK { a, .. } => f(a),
            P::Ld { idx, .. } => f(idx),
            P::St { idx, s, .. } => {
                f(idx);
                f(s);
            }
        }
    }
    fn write(&self) -> Option<u32> {
        match *self {
            P::Mov { d, .. }
            | P::Const { d, .. }
            | P::Bin { d, .. }
            | P::BinK { d, .. }
            | P::Ld { d, .. } => Some(d),
            P::St { .. } => None,
        }
    }
}

/// Array operand info: cell-ness (bound through a `Ptr` slot or held
/// directly), the element kind variable, and whether the template
/// stores through it.
struct AInfo {
    cell: bool,
    elem: u32,
    written: bool,
}

/// The in-progress decode of one loop.
struct Bld<'f> {
    f: &'f CompiledFn,
    uf: Uf,
    svar: HashMap<u32, u32>,
    sorder: Vec<u32>,
    scalar_regs: HashSet<Reg>,
    arrs: HashMap<Reg, AInfo>,
    aorder: Vec<Reg>,
    protos: Vec<P>,
    nscratch: u32,
}

impl<'f> Bld<'f> {
    fn new(f: &'f CompiledFn) -> Bld<'f> {
        Bld {
            f,
            uf: Uf::new(),
            svar: HashMap::new(),
            sorder: Vec::new(),
            scalar_regs: HashSet::new(),
            arrs: HashMap::new(),
            aorder: Vec::new(),
            protos: Vec::new(),
            nscratch: 0,
        }
    }

    /// Register `r` as a scalar operand; `None` if it was already
    /// used as an array operand (a register serving both roles is a
    /// shape the template cannot bind).
    fn sv(&mut self, r: Reg) -> Option<u32> {
        if self.arrs.contains_key(&r) {
            return None;
        }
        self.scalar_regs.insert(r);
        let key = r as u32;
        if !self.svar.contains_key(&key) {
            let v = self.uf.fresh();
            self.svar.insert(key, v);
            self.sorder.push(key);
        }
        Some(key)
    }

    fn scratch(&mut self) -> u32 {
        let key = SCRATCH0 + self.nscratch;
        self.nscratch += 1;
        let v = self.uf.fresh();
        self.svar.insert(key, v);
        self.sorder.push(key);
        key
    }

    /// Register `r` as an array operand with the given cell-ness;
    /// returns its element kind variable.
    fn av(&mut self, r: Reg, cell: bool) -> Option<u32> {
        if self.scalar_regs.contains(&r) {
            return None;
        }
        if let Some(info) = self.arrs.get(&r) {
            if info.cell != cell {
                return None;
            }
            return Some(info.elem);
        }
        let elem = self.uf.fresh();
        self.arrs.insert(
            r,
            AInfo {
                cell,
                elem,
                written: false,
            },
        );
        self.aorder.push(r);
        Some(elem)
    }

    fn var(&self, key: u32) -> u32 {
        self.svar[&key]
    }

    fn uni(&mut self, a: u32, b: u32) -> bool {
        let (va, vb) = (self.var(a), self.var(b));
        self.uf.union(va, vb)
    }
    fn uni_v(&mut self, a: u32, v: u32) -> bool {
        let va = self.var(a);
        self.uf.union(va, v)
    }
    fn setk(&mut self, key: u32, k: K) -> bool {
        let v = self.var(key);
        self.uf.set(v, k)
    }

    fn kc(&self, k: u16) -> Option<KVal> {
        match self.f.consts.get(k as usize)? {
            Value::Int(v) => Some(KVal::I(*v)),
            Value::Float(v) => Some(KVal::F(*v)),
            _ => None,
        }
    }

    /// Decode one body instruction into proto-ops with constraints.
    /// `false` = unsupported instruction or type conflict: the loop
    /// stays interpreted.
    fn decode(&mut self, insn: &Insn) -> bool {
        macro_rules! t {
            ($e:expr) => {
                match $e {
                    Some(v) => v,
                    None => return false,
                }
            };
        }
        macro_rules! c {
            ($e:expr) => {
                if !$e {
                    return false;
                }
            };
        }
        match *insn {
            Insn::Const { dst, k } => {
                let v = t!(self.kc(k));
                let d = t!(self.sv(dst));
                c!(self.setk(d, v.k()));
                self.protos.push(P::Const { d, v });
            }
            Insn::Move { dst, src } => {
                let d = t!(self.sv(dst));
                let s = t!(self.sv(src));
                c!(self.uni(d, s));
                self.protos.push(P::Mov { d, s });
            }
            Insn::Arith { op, dst, a, b } | Insn::ArithII { op, dst, a, b } | Insn::ArithFF { op, dst, a, b } => {
                let d = t!(self.sv(dst));
                let ra = t!(self.sv(a));
                let rb = t!(self.sv(b));
                c!(self.uni(d, ra));
                c!(self.uni(d, rb));
                match insn {
                    Insn::ArithII { .. } => c!(self.setk(d, K::Int)),
                    Insn::ArithFF { .. } => c!(self.setk(d, K::Flt)),
                    _ => {}
                }
                self.protos.push(P::Bin {
                    op,
                    d,
                    a: ra,
                    b: rb,
                });
            }
            Insn::ArithK { op, dst, a, k } => {
                let v = t!(self.kc(k));
                let d = t!(self.sv(dst));
                let ra = t!(self.sv(a));
                c!(self.uni(d, ra));
                c!(self.setk(d, v.k()));
                self.protos.push(P::BinK {
                    op,
                    d,
                    a: ra,
                    v,
                    left: false,
                });
            }
            Insn::ArithKL { op, dst, k, b } => {
                let v = t!(self.kc(k));
                let d = t!(self.sv(dst));
                let rb = t!(self.sv(b));
                c!(self.uni(d, rb));
                c!(self.setk(d, v.k()));
                self.protos.push(P::BinK {
                    op,
                    d,
                    a: rb,
                    v,
                    left: true,
                });
            }
            Insn::Index { dst, arr, idx }
            | Insn::IndexF { dst, arr, idx }
            | Insn::IndexI { dst, arr, idx } => {
                let elem = t!(self.av(arr, false));
                let d = t!(self.sv(dst));
                let i = t!(self.sv(idx));
                c!(self.setk(i, K::Int));
                c!(self.uni_v(d, elem));
                match insn {
                    Insn::IndexF { .. } => c!(self.setk(d, K::Flt)),
                    Insn::IndexI { .. } => c!(self.setk(d, K::Int)),
                    _ => {}
                }
                self.protos.push(P::Ld {
                    d,
                    arr,
                    idx: i,
                    off: 0,
                });
            }
            Insn::IndexOff { dst, arr, idx, off } => {
                let elem = t!(self.av(arr, false));
                let d = t!(self.sv(dst));
                let i = t!(self.sv(idx));
                c!(self.setk(i, K::Int));
                c!(self.uni_v(d, elem));
                self.protos.push(P::Ld {
                    d,
                    arr,
                    idx: i,
                    off,
                });
            }
            Insn::DerefIndex { dst, cell, idx } => {
                let elem = t!(self.av(cell, true));
                let d = t!(self.sv(dst));
                let i = t!(self.sv(idx));
                c!(self.setk(i, K::Int));
                c!(self.uni_v(d, elem));
                self.protos.push(P::Ld {
                    d,
                    arr: cell,
                    idx: i,
                    off: 0,
                });
            }
            Insn::DerefIndexOff {
                dst,
                cell,
                idx,
                off,
            } => {
                let elem = t!(self.av(cell, true));
                let d = t!(self.sv(dst));
                let i = t!(self.sv(idx));
                c!(self.setk(i, K::Int));
                c!(self.uni_v(d, elem));
                self.protos.push(P::Ld {
                    d,
                    arr: cell,
                    idx: i,
                    off,
                });
            }
            Insn::IndexSet { arr, idx, src }
            | Insn::IndexSetF { arr, idx, src }
            | Insn::IndexSetI { arr, idx, src } => {
                let elem = t!(self.av(arr, false));
                let i = t!(self.sv(idx));
                let s = t!(self.sv(src));
                c!(self.setk(i, K::Int));
                c!(self.uni_v(s, elem));
                match insn {
                    Insn::IndexSetF { .. } => c!(self.setk(s, K::Flt)),
                    Insn::IndexSetI { .. } => c!(self.setk(s, K::Int)),
                    _ => {}
                }
                self.arrs.get_mut(&arr).unwrap().written = true;
                self.protos.push(P::St { arr, idx: i, s });
            }
            Insn::DerefIndexSet { cell, idx, src } => {
                let elem = t!(self.av(cell, true));
                let i = t!(self.sv(idx));
                let s = t!(self.sv(src));
                c!(self.setk(i, K::Int));
                c!(self.uni_v(s, elem));
                self.arrs.get_mut(&cell).unwrap().written = true;
                self.protos.push(P::St { arr: cell, idx: i, s });
            }
            Insn::IndexArith {
                op,
                dst,
                arr,
                idx,
                rhs,
            } => {
                // dst = arr[idx] op rhs, unfused Index-then-Arith.
                let elem = t!(self.av(arr, false));
                let d = t!(self.sv(dst));
                let i = t!(self.sv(idx));
                let r = t!(self.sv(rhs));
                c!(self.setk(i, K::Int));
                let tmp = self.scratch();
                c!(self.uni_v(tmp, elem));
                c!(self.uni(d, tmp));
                c!(self.uni(d, r));
                self.protos.push(P::Ld {
                    d: tmp,
                    arr,
                    idx: i,
                    off: 0,
                });
                self.protos.push(P::Bin {
                    op,
                    d,
                    a: tmp,
                    b: r,
                });
            }
            Insn::ArithStore { op, arr, idx, a, b } => {
                // arr[idx] = a op b, arith first (unfused error order).
                let elem = t!(self.av(arr, false));
                let ra = t!(self.sv(a));
                let rb = t!(self.sv(b));
                let i = t!(self.sv(idx));
                c!(self.setk(i, K::Int));
                let tmp = self.scratch();
                c!(self.uni(ra, rb));
                c!(self.uni_v(ra, self.svar[&tmp]));
                c!(self.uni_v(tmp, elem));
                self.protos.push(P::Bin {
                    op,
                    d: tmp,
                    a: ra,
                    b: rb,
                });
                self.arrs.get_mut(&arr).unwrap().written = true;
                self.protos.push(P::St { arr, idx: i, s: tmp });
            }
            Insn::IncElemK { op, arr, idx, k } => {
                // arr[idx] = arr[idx] op k, load → arith → store.
                let v = t!(self.kc(k));
                let elem = t!(self.av(arr, false));
                let i = t!(self.sv(idx));
                c!(self.setk(i, K::Int));
                let tmp = self.scratch();
                c!(self.uni_v(tmp, elem));
                c!(self.setk(tmp, v.k()));
                self.protos.push(P::Ld {
                    d: tmp,
                    arr,
                    idx: i,
                    off: 0,
                });
                self.protos.push(P::BinK {
                    op,
                    d: tmp,
                    a: tmp,
                    v,
                    left: false,
                });
                self.arrs.get_mut(&arr).unwrap().written = true;
                self.protos.push(P::St { arr, idx: i, s: tmp });
            }
            Insn::DerefIncElemK { op, cell, idx, k } => {
                let v = t!(self.kc(k));
                let elem = t!(self.av(cell, true));
                let i = t!(self.sv(idx));
                c!(self.setk(i, K::Int));
                let tmp = self.scratch();
                c!(self.uni_v(tmp, elem));
                c!(self.setk(tmp, v.k()));
                self.protos.push(P::Ld {
                    d: tmp,
                    arr: cell,
                    idx: i,
                    off: 0,
                });
                self.protos.push(P::BinK {
                    op,
                    d: tmp,
                    a: tmp,
                    v,
                    left: false,
                });
                self.arrs.get_mut(&cell).unwrap().written = true;
                self.protos.push(P::St { arr: cell, idx: i, s: tmp });
            }
            Insn::FmaIdx { dst, x, arr, idx } => {
                // dst = dst + x * arr[idx]; separate mul-then-add
                // keeps results bit-identical to the unfused pair.
                let elem = t!(self.av(arr, false));
                c!(self.fma_tail(dst, x, elem, arr, false, idx));
            }
            Insn::DerefFmaIdx { dst, x, cell, idx } => {
                let elem = t!(self.av(cell, true));
                c!(self.fma_tail(dst, x, elem, cell, true, idx));
            }
            _ => return false,
        }
        true
    }

    /// Shared tail for the fma forms: `tmp = arr-ish[idx]; tmp2 = x *
    /// tmp; dst = dst + tmp2` (`cell` only affects how `arr` was
    /// registered, which already happened).
    fn fma_tail(&mut self, dst: Reg, x: Reg, elem: u32, arr: Reg, _cell: bool, idx: Reg) -> bool {
        let Some(d) = self.sv(dst) else { return false };
        let Some(rx) = self.sv(x) else { return false };
        let Some(i) = self.sv(idx) else { return false };
        if !self.setk(i, K::Int) {
            return false;
        }
        let tmp = self.scratch();
        let tmp2 = self.scratch();
        if !self.uni_v(tmp, elem)
            || !self.uni(tmp2, rx)
            || !self.uni(tmp2, tmp)
            || !self.uni(d, tmp2)
        {
            return false;
        }
        self.protos.push(P::Ld {
            d: tmp,
            arr,
            idx: i,
            off: 0,
        });
        self.protos.push(P::Bin {
            op: ArithOp::Mul,
            d: tmp2,
            a: rx,
            b: tmp,
        });
        self.protos.push(P::Bin {
            op: ArithOp::Add,
            d,
            a: d,
            b: tmp2,
        });
        true
    }
}

/// Loop control metadata from the structural match, pre-slot-assignment.
enum FormMeta {
    A {
        var: Reg,
        step: i64,
        lim: Reg,
        cmp: CmpOp,
    },
    B {
        var: Reg,
        step: i64,
        nhead: usize,
        ga: Reg,
        gb: Reg,
        cmp: CmpOp,
    },
}

struct MatchOut {
    form: FormMeta,
    ninsns: usize,
}

/// Match a template loop headed at `pc`. Tried at every pc not
/// covered by an installed kernel; `None` leaves the loop alone.
pub(crate) fn match_at(f: &CompiledFn, pc: usize) -> Option<(TProg, u32)> {
    if let Some(r) = match_form_a(f, pc) {
        return Some(r);
    }
    match_form_b(f, pc)
}

/// Form A: `pc: body...; IncCmpJump -> pc`.
fn match_form_a(f: &CompiledFn, pc: usize) -> Option<(TProg, u32)> {
    let n = f.code.len();
    let mut b = Bld::new(f);
    let mut j = pc;
    loop {
        if j >= n || j - pc >= MAX_INSNS {
            return None;
        }
        if let Insn::IncCmpJump {
            var,
            step,
            limit,
            op,
            to,
        } = f.code[j]
        {
            if to as usize != pc {
                return None;
            }
            let exit = j + 1;
            if exit >= n {
                return None;
            }
            let kv = b.sv(var)?;
            if !b.setk(kv, K::Int) {
                return None;
            }
            let kl = b.sv(limit)?;
            if !b.setk(kl, K::Int) {
                return None;
            }
            let m = MatchOut {
                form: FormMeta::A {
                    var,
                    step: step as i64,
                    lim: limit,
                    cmp: op,
                },
                ninsns: j + 1 - pc,
            };
            let prog = emit(b, m)?;
            return Some((prog, exit as u32));
        }
        if !b.decode(&f.code[j]) {
            return None;
        }
        j += 1;
    }
}

/// Form B: `pc: head...; CmpJumpFalse -> exit; body...; IncJump -> pc`.
fn match_form_b(f: &CompiledFn, pc: usize) -> Option<(TProg, u32)> {
    let n = f.code.len();
    let mut b = Bld::new(f);
    let mut j = pc;
    let (ga, gb, gcmp, exit) = loop {
        if j >= n || j - pc >= MAX_INSNS {
            return None;
        }
        match f.code[j] {
            Insn::CmpJumpFalse { op, a, b: rb, to } => break (a, rb, op, to),
            Insn::CmpJumpFalseII { op, a, b: rb, to } => {
                let ka = b.sv(a)?;
                if !b.setk(ka, K::Int) {
                    return None;
                }
                let kb = b.sv(rb)?;
                if !b.setk(kb, K::Int) {
                    return None;
                }
                break (a, rb, op, to);
            }
            Insn::CmpJumpFalseFF { op, a, b: rb, to } => {
                let ka = b.sv(a)?;
                if !b.setk(ka, K::Flt) {
                    return None;
                }
                let kb = b.sv(rb)?;
                if !b.setk(kb, K::Flt) {
                    return None;
                }
                break (a, rb, op, to);
            }
            ref insn => {
                if !b.decode(insn) {
                    return None;
                }
                j += 1;
            }
        }
    };
    let ka = b.sv(ga)?;
    let kb = b.sv(gb)?;
    if !b.uni(ka, kb) {
        return None;
    }
    let nhead = b.protos.len();
    j += 1;
    loop {
        if j >= n || j - pc >= MAX_INSNS {
            return None;
        }
        if let Insn::IncJump { var, step, to } = f.code[j] {
            if to as usize != pc {
                return None;
            }
            // The guard must jump forward past the back-edge (the
            // loop exit); anything else is not a single-block loop.
            if exit as usize <= j || exit as usize >= n {
                return None;
            }
            let kv = b.sv(var)?;
            if !b.setk(kv, K::Int) {
                return None;
            }
            let m = MatchOut {
                form: FormMeta::B {
                    var,
                    step: step as i64,
                    nhead,
                    ga,
                    gb,
                    cmp: gcmp,
                },
                ninsns: j + 1 - pc,
            };
            let prog = emit(b, m)?;
            return Some((prog, exit));
        }
        if !b.decode(&f.code[j]) {
            return None;
        }
        j += 1;
    }
}

// ---------------------------------------------------------------------------
// Emission: kinds → slots → ops
// ---------------------------------------------------------------------------

fn emit(mut b: Bld, m: MatchOut) -> Option<TProg> {
    // Any unresolved kind group? Then emit both an all-Int and an
    // all-Flt resolution and let the runtime bind pick (a loop mixing
    // two *different* unknown groups fails both binds and stays
    // interpreted — acceptable, and not a shape the compiler emits).
    let mut has_unk = false;
    for &key in &b.sorder {
        let v = b.svar[&key];
        if b.uf.kind(v) == K::Unk {
            has_unk = true;
        }
    }
    for r in &b.aorder {
        let v = b.arrs[r].elem;
        if b.uf.kind(v) == K::Unk {
            has_unk = true;
        }
    }
    let resolutions: &[K] = if has_unk {
        &[K::Int, K::Flt]
    } else {
        &[K::Int]
    };
    let mut variants = Vec::new();
    for &unk in resolutions {
        if let Some(v) = emit_one(&mut b, &m, unk) {
            variants.push(v);
        }
    }
    if variants.is_empty() {
        return None;
    }
    let ind = match m.form {
        FormMeta::A { var, .. } | FormMeta::B { var, .. } => var,
    };
    Some(TProg {
        variants,
        ind,
        ninsns: m.ninsns,
    })
}

fn emit_one(b: &mut Bld, m: &MatchOut, unk: K) -> Option<TVariant> {
    // Kind per scalar key / array under this resolution.
    let mut skind: HashMap<u32, K> = HashMap::new();
    for &key in &b.sorder.clone() {
        let v = b.svar[&key];
        let k = match b.uf.kind(v) {
            K::Unk => unk,
            k => k,
        };
        skind.insert(key, k);
    }
    let mut akind: HashMap<Reg, K> = HashMap::new();
    for r in b.aorder.clone() {
        let v = b.arrs[&r].elem;
        let k = match b.uf.kind(v) {
            K::Unk => unk,
            k => k,
        };
        akind.insert(r, k);
    }
    // Slot assignment, in first-use order.
    let mut slot: HashMap<u32, u16> = HashMap::new();
    let (mut ni, mut nf) = (0u16, 0u16);
    for &key in &b.sorder {
        let s = match skind[&key] {
            K::Int => {
                ni += 1;
                ni - 1
            }
            _ => {
                nf += 1;
                nf - 1
            }
        };
        slot.insert(key, s);
    }
    if ni as usize > NSLOT || nf as usize > NSLOT {
        return None;
    }
    let mut aslot: HashMap<Reg, u16> = HashMap::new();
    let (mut nai, mut naf) = (0u16, 0u16);
    for &r in &b.aorder {
        let s = match akind[&r] {
            K::Int => {
                nai += 1;
                nai - 1
            }
            _ => {
                naf += 1;
                naf - 1
            }
        };
        aslot.insert(r, s);
    }
    if nai as usize > NARR || naf as usize > NARR {
        return None;
    }
    // First-iteration read-before-write analysis over the execution
    // order decides which registers must be bound at entry.
    let mut written: HashSet<u32> = HashSet::new();
    let mut bound: HashSet<u32> = HashSet::new();
    let mut head_written: HashSet<u32> = HashSet::new();
    {
        let read = |key: u32, written: &HashSet<u32>, bound: &mut HashSet<u32>| {
            if key < SCRATCH0 && !written.contains(&key) {
                bound.insert(key);
            }
        };
        let (nhead, tail_reads): (usize, Vec<u32>) = match m.form {
            FormMeta::A { var, lim, .. } => (b.protos.len(), vec![var as u32, lim as u32]),
            FormMeta::B {
                var, nhead, ga, gb, ..
            } => {
                // Guard reads run between head and body.
                let _ = (ga, gb);
                (nhead, vec![var as u32])
            }
        };
        for (i, p) in b.protos.iter().enumerate() {
            if i == nhead {
                if let FormMeta::B { ga, gb, .. } = m.form {
                    read(ga as u32, &written, &mut bound);
                    read(gb as u32, &written, &mut bound);
                }
            }
            p.reads(|r| read(r, &written, &mut bound));
            if let Some(d) = p.write() {
                written.insert(d);
                if i < nhead {
                    head_written.insert(d);
                }
            }
        }
        if b.protos.len() == nhead {
            if let FormMeta::B { ga, gb, .. } = m.form {
                read(ga as u32, &written, &mut bound);
                read(gb as u32, &written, &mut bound);
            }
        }
        for r in tail_reads {
            read(r, &written, &mut bound);
        }
        let var = match m.form {
            FormMeta::A { var, .. } | FormMeta::B { var, .. } => var,
        };
        written.insert(var as u32);
        if matches!(m.form, FormMeta::A { .. }) {
            // A do-while always completes at least one full body
            // execution before a normal exit.
            head_written = written.iter().copied().collect();
        }
    }
    // Ops. Loop-invariant constants — a `Const` whose slot no other op
    // writes and whose pre-loop value is never read (it is not in
    // `bound`) — hoist into a once-per-run prelude: they reload the
    // same value every iteration, and the slot still holds it for the
    // exit write-back. Everything else stays in iteration order.
    let mut write_count: HashMap<u32, usize> = HashMap::new();
    for p in &b.protos {
        if let Some(d) = p.write() {
            *write_count.entry(d).or_default() += 1;
        }
    }
    let nhead_protos = match m.form {
        FormMeta::B { nhead, .. } => nhead,
        FormMeta::A { .. } => b.protos.len(),
    };
    let mut ops = Vec::with_capacity(b.protos.len());
    let mut prelude = Vec::new();
    let mut nhead_hoisted = 0usize;
    let mut nhead_fused = 0usize;
    let mut fallible = false;
    let mut seen_store = false;
    let mut skip = false;
    for (i, p) in b.protos.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        // Multiply + dependent add fuse into one dispatch — but never
        // across the Form B head/guard boundary, where the guard
        // evaluation runs between the two halves.
        if i + 1 != nhead_protos {
            if let Some(fop) = b
                .protos
                .get(i + 1)
                .and_then(|next| fuse(p, next, &skind, &slot))
            {
                ops.push(fop);
                skip = true;
                if i + 1 < nhead_protos {
                    nhead_fused += 1;
                }
                continue;
            }
        }
        let (op, op_fallible, is_store) = lower(p, &skind, &akind, &slot, &aslot)?;
        let hoist = matches!(p, P::Const { .. })
            && p.write()
                .is_some_and(|d| write_count[&d] == 1 && !bound.contains(&d));
        if hoist {
            prelude.push(op);
            if i < nhead_protos {
                nhead_hoisted += 1;
            }
            continue;
        }
        // Replay soundness: no fallible op may execute after the
        // first store of an iteration (see module docs). A store's
        // own bounds check fires before it writes, so the first
        // store itself is fine.
        if seen_store && op_fallible {
            return None;
        }
        seen_store |= is_store;
        fallible |= op_fallible;
        ops.push(op);
    }
    // Binds: bound scalars plus every array.
    let mut binds = Vec::new();
    for &key in &b.sorder {
        if key >= SCRATCH0 || !bound.contains(&key) {
            continue;
        }
        let reg = key as Reg;
        let s = slot[&key];
        binds.push(match skind[&key] {
            K::Int => Bind::Int { reg, slot: s },
            _ => Bind::Flt { reg, slot: s },
        });
    }
    for &r in &b.aorder {
        let s = aslot[&r];
        let cell = b.arrs[&r].cell;
        binds.push(match (akind[&r], cell) {
            (K::Int, false) => Bind::ArrI { reg: r, slot: s },
            (K::Int, true) => Bind::CellI { reg: r, slot: s },
            (_, false) => Bind::ArrF { reg: r, slot: s },
            (_, true) => Bind::CellF { reg: r, slot: s },
        });
    }
    // Write-backs.
    let mut outs = Vec::new();
    let mut outs_body = Vec::new();
    let mut bail_outs = Vec::new();
    let mut snap = Vec::new();
    for &key in &b.sorder {
        if key >= SCRATCH0 || !written.contains(&key) {
            continue;
        }
        let reg = key as Reg;
        let s = slot[&key];
        let flt = skind[&key] != K::Int;
        let out = if flt {
            Out::Flt { reg, slot: s }
        } else {
            Out::Int { reg, slot: s }
        };
        if bound.contains(&key) || head_written.contains(&key) {
            outs.push(out);
        } else {
            outs_body.push(out);
        }
        if bound.contains(&key) {
            bail_outs.push(out);
            snap.push((flt, s));
        }
    }
    // Write fences per stored-into array slot.
    let mut wf_i = Vec::new();
    let mut wf_f = Vec::new();
    for &r in &b.aorder {
        if !b.arrs[&r].written {
            continue;
        }
        match akind[&r] {
            K::Int => wf_i.push(aslot[&r]),
            _ => wf_f.push(aslot[&r]),
        }
    }
    // Shape, with control operands resolved to slots.
    let shape = match m.form {
        FormMeta::A {
            var,
            step,
            lim,
            cmp,
        } => Shape::DoWhile {
            ind: slot[&(var as u32)],
            step,
            lim: slot[&(lim as u32)],
            cmp,
        },
        FormMeta::B {
            var,
            step,
            nhead,
            ga,
            gb,
            cmp,
        } => {
            // nhead counts protos, which map 1:1 onto emitted ops in
            // order (lower() emits exactly one op per proto), minus
            // the head constants hoisted into the prelude and one per
            // mul+add pair fused into a single op.
            Shape::HeadGuard {
                ind: slot[&(var as u32)],
                step,
                nhead: (nhead - nhead_hoisted - nhead_fused) as u16,
                ga: slot[&(ga as u32)],
                gb: slot[&(gb as u32)],
                gflt: skind[&(ga as u32)] != K::Int,
                cmp,
            }
        }
    };
    Some(TVariant {
        binds,
        prelude,
        ops,
        shape,
        outs,
        outs_body,
        bail_outs,
        snap,
        fallible,
        wf_i,
        wf_f,
    })
}

/// Peephole fusion: a multiply immediately followed by the add that
/// consumes its product collapses into one fused dispatch. The fused
/// op still writes the product slot, so the read-before-write
/// analysis, binds, and write-backs computed over the unfused protos
/// stay exact — only the per-iteration dispatch disappears. Both
/// halves are infallible (int mul/add wrap, they cannot bail), so the
/// replay contract is untouched, and floats round in two separate
/// steps, bit-identical to the unfused pair.
fn fuse(p1: &P, p2: &P, skind: &HashMap<u32, K>, slot: &HashMap<u32, u16>) -> Option<TOp> {
    let t = p1.write()?;
    let (d2, x, y) = match *p2 {
        P::Bin {
            op: ArithOp::Add,
            d,
            a,
            b,
        } => (d, a, b),
        _ => return None,
    };
    let other = if x == t {
        y
    } else if y == t {
        x
    } else {
        return None;
    };
    let int = skind[&t] == K::Int;
    if skind[&other] != skind[&t] || skind[&d2] != skind[&t] {
        return None;
    }
    let mut op = TOp {
        f: mov_i,
        a: slot[&d2],
        b: slot[&other],
        c: 0,
        off: slot[&t] as i64,
        ki: 0,
        kf: 0.0,
    };
    match *p1 {
        P::Bin {
            op: ArithOp::Mul,
            a,
            b,
            ..
        } => {
            op.c = slot[&a];
            op.ki = slot[&b] as i64;
            op.f = if int { fma_ii } else { fma_ff };
        }
        P::BinK {
            op: ArithOp::Mul,
            a,
            v,
            ..
        } => {
            if int != matches!(v, KVal::I(_)) {
                return None;
            }
            op.c = slot[&a];
            match v {
                KVal::I(k) => {
                    op.ki = k;
                    op.f = fmak_i;
                }
                KVal::F(k) => {
                    op.kf = k;
                    op.f = fmak_f;
                }
            }
        }
        _ => return None,
    }
    Some(op)
}

/// Lower one proto-op under a kind resolution. Returns the op, its
/// fallibility, and whether it is an array store.
fn lower(
    p: &P,
    skind: &HashMap<u32, K>,
    akind: &HashMap<Reg, K>,
    slot: &HashMap<u32, u16>,
    aslot: &HashMap<Reg, u16>,
) -> Option<(TOp, bool, bool)> {
    let mut op = TOp {
        f: mov_i,
        a: 0,
        b: 0,
        c: 0,
        off: 0,
        ki: 0,
        kf: 0.0,
    };
    let (fallible, store) = match *p {
        P::Mov { d, s } => {
            op.a = slot[&d];
            op.b = slot[&s];
            op.f = if skind[&d] == K::Int { mov_i } else { mov_f };
            (false, false)
        }
        P::Const { d, v } => {
            op.a = slot[&d];
            match v {
                KVal::I(x) => {
                    op.ki = x;
                    op.f = const_i;
                }
                KVal::F(x) => {
                    op.kf = x;
                    op.f = const_f;
                }
            }
            (false, false)
        }
        P::Bin { op: ao, d, a, b } => {
            op.a = slot[&d];
            op.b = slot[&a];
            op.c = slot[&b];
            let int = skind[&d] == K::Int;
            op.f = match (ao, int) {
                (ArithOp::Add, true) => add_ii,
                (ArithOp::Sub, true) => sub_ii,
                (ArithOp::Mul, true) => mul_ii,
                (ArithOp::Div, true) => div_ii,
                (ArithOp::Rem, true) => rem_ii,
                (ArithOp::Add, false) => add_ff,
                (ArithOp::Sub, false) => sub_ff,
                (ArithOp::Mul, false) => mul_ff,
                (ArithOp::Div, false) => div_ff,
                (ArithOp::Rem, false) => rem_ff,
            };
            (int && matches!(ao, ArithOp::Div | ArithOp::Rem), false)
        }
        P::BinK {
            op: ao,
            d,
            a,
            v,
            left,
        } => {
            op.a = slot[&d];
            op.b = slot[&a];
            let int = match v {
                KVal::I(x) => {
                    op.ki = x;
                    true
                }
                KVal::F(x) => {
                    op.kf = x;
                    false
                }
            };
            op.f = match (ao, int, left) {
                (ArithOp::Add, true, false) => addk_i,
                (ArithOp::Sub, true, false) => subk_i,
                (ArithOp::Mul, true, false) => mulk_i,
                (ArithOp::Div, true, false) => divk_i,
                (ArithOp::Rem, true, false) => remk_i,
                (ArithOp::Add, true, true) => addkl_i,
                (ArithOp::Sub, true, true) => subkl_i,
                (ArithOp::Mul, true, true) => mulkl_i,
                (ArithOp::Div, true, true) => divkl_i,
                (ArithOp::Rem, true, true) => remkl_i,
                (ArithOp::Add, false, false) => addk_f,
                (ArithOp::Sub, false, false) => subk_f,
                (ArithOp::Mul, false, false) => mulk_f,
                (ArithOp::Div, false, false) => divk_f,
                (ArithOp::Rem, false, false) => remk_f,
                (ArithOp::Add, false, true) => addkl_f,
                (ArithOp::Sub, false, true) => subkl_f,
                (ArithOp::Mul, false, true) => mulkl_f,
                (ArithOp::Div, false, true) => divkl_f,
                (ArithOp::Rem, false, true) => remkl_f,
            };
            (int && matches!(ao, ArithOp::Div | ArithOp::Rem), false)
        }
        P::Ld { d, arr, idx, off } => {
            op.a = slot[&d];
            op.b = slot[&idx];
            op.c = aslot[&arr];
            op.off = off as i64;
            op.f = if akind[&arr] == K::Int { ld_i } else { ld_f };
            (true, false)
        }
        P::St { arr, idx, s } => {
            op.a = aslot[&arr];
            op.b = slot[&idx];
            op.c = slot[&s];
            op.f = if akind[&arr] == K::Int { st_i } else { st_f };
            (true, true)
        }
    };
    Some((op, fallible, store))
}

// ---------------------------------------------------------------------------
// Installation
// ---------------------------------------------------------------------------

/// Install templates in one function. Runs inside the kernel
/// installer after the fixed kernels, skipping any pc covered by an
/// installed kernel's span. Returns whether anything was installed.
pub(crate) fn install_fn(f: &mut CompiledFn) -> bool {
    let spans: Vec<(usize, usize)> = f
        .code
        .iter()
        .enumerate()
        .filter_map(|(pc, insn)| match insn {
            Insn::BulkLoop { kidx } => Some((pc, f.kernels[*kidx as usize].exit as usize)),
            _ => None,
        })
        .collect();
    let covered = |pc: usize| spans.iter().any(|&(s, e)| pc >= s && pc < e);
    let mut installed = false;
    for pc in 0..f.code.len() {
        if f.templates.len() >= u16::MAX as usize {
            break;
        }
        if covered(pc) {
            continue;
        }
        let Some((prog, exit)) = match_at(f, pc) else {
            continue;
        };
        let tidx = f.templates.len() as u16;
        f.templates.push(TemplateDesc {
            orig: f.code[pc],
            exit,
            label: crate::kernels::loop_label(f, pc),
            prog: Arc::new(prog),
        });
        f.code[pc] = Insn::TemplateLoop { tidx };
        installed = true;
    }
    installed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(code: Vec<Insn>, consts: Vec<Value>, nregs: usize) -> CompiledFn {
        CompiledFn {
            name: "t".to_string(),
            nparams: 0,
            param_tys: Vec::new(),
            nregs,
            code,
            consts,
            omp_syms: Vec::new(),
            locals: Vec::new(),
            pre_opt: None,
            kernels: Vec::new(),
            templates: Vec::new(),
        }
    }

    /// `do { r1 = r1 * 3 } while (++r2 < r0)` — the EP/IS setup shape.
    #[test]
    fn form_a_mulk_matches_and_runs() {
        let f = mk(
            vec![
                Insn::ArithK {
                    op: ArithOp::Mul,
                    dst: 1,
                    a: 1,
                    k: 0,
                },
                Insn::IncCmpJump {
                    var: 2,
                    step: 1,
                    limit: 0,
                    op: CmpOp::Lt,
                    to: 0,
                },
                Insn::RetVoid,
            ],
            vec![Value::Int(3)],
            3,
        );
        let (prog, exit) = match_at(&f, 0).expect("should match");
        assert_eq!(exit, 2);
        assert_eq!(prog.ninsns, 2);
        assert_eq!(prog.ind, 2);
        assert_eq!(prog.variants.len(), 1);
        let v = &prog.variants[0];
        assert!(!v.fallible);
        assert!(v.outs_body.is_empty());
        let mut regs = vec![Value::Int(5), Value::Int(1), Value::Int(0)];
        assert!(run_inner(&prog, &mut regs).is_ok());
        assert!(matches!(regs[1], Value::Int(243)));
        assert!(matches!(regs[2], Value::Int(5)));
        // Wrong accumulator type: bind must fail with no side effects.
        let mut regs = vec![Value::Int(5), Value::Float(1.0), Value::Int(0)];
        assert!(run_inner(&prog, &mut regs).is_err());
        assert!(matches!(regs[1], Value::Float(x) if x == 1.0));
    }

    /// Untyped `a[i] = b[i]` copy: one unknown kind group, so both an
    /// Int and a Flt variant install and the bind picks at runtime.
    #[test]
    fn dual_variant_copy_loop() {
        let f = mk(
            vec![
                Insn::Index {
                    dst: 3,
                    arr: 1,
                    idx: 2,
                },
                Insn::IndexSet {
                    arr: 0,
                    idx: 2,
                    src: 3,
                },
                Insn::IncCmpJump {
                    var: 2,
                    step: 1,
                    limit: 4,
                    op: CmpOp::Lt,
                    to: 0,
                },
                Insn::RetVoid,
            ],
            vec![],
            5,
        );
        let (prog, _) = match_at(&f, 0).expect("should match");
        assert_eq!(prog.variants.len(), 2);
        let src = Arc::new(ArrF::new(4));
        for i in 0..4 {
            src.set(i as i64, (i as f64) + 0.5).unwrap();
        }
        let dst = Arc::new(ArrF::new(4));
        let mut regs = vec![
            Value::ArrF(dst.clone()),
            Value::ArrF(src),
            Value::Int(0),
            Value::Undefined,
            Value::Int(4),
        ];
        assert!(run_inner(&prog, &mut regs).is_ok());
        assert_eq!(dst.get(3).unwrap(), 3.5);
        // The loaded element was boxed back as a Float.
        assert!(matches!(regs[3], Value::Float(x) if x == 3.5));
    }

    /// Out-of-bounds mid-run: loop-carried state must be written back
    /// so the interpreter replays the failing iteration exactly.
    #[test]
    fn bail_restores_iteration_state() {
        let f = mk(
            vec![
                Insn::IndexI {
                    dst: 3,
                    arr: 1,
                    idx: 2,
                },
                Insn::Arith {
                    op: ArithOp::Add,
                    dst: 4,
                    a: 4,
                    b: 3,
                },
                Insn::IncCmpJump {
                    var: 2,
                    step: 1,
                    limit: 0,
                    op: CmpOp::Lt,
                    to: 0,
                },
                Insn::RetVoid,
            ],
            vec![],
            5,
        );
        let (prog, _) = match_at(&f, 0).expect("should match");
        let arr = Arc::new(ArrI::new(3));
        for i in 0..3 {
            arr.set(i, 10 + i).unwrap();
        }
        // Limit 5 but the array has 3 elements: bail at i == 3 with
        // the accumulator holding exactly the first three sums.
        let mut regs = vec![
            Value::Int(5),
            Value::ArrI(arr),
            Value::Int(0),
            Value::Undefined,
            Value::Int(0),
        ];
        let r = run_inner(&prog, &mut regs);
        assert_eq!(r, Err(BAIL_BOUNDS));
        assert!(matches!(regs[2], Value::Int(3)));
        assert!(matches!(regs[4], Value::Int(33)));
        // r3 (defined before use every iteration) is untouched: the
        // interpreter replay re-defines it before reading.
        assert!(matches!(regs[3], Value::Undefined));
    }

    /// Form B with a guarded body that never runs: body-only
    /// registers must not be clobbered by the write-back.
    #[test]
    fn form_b_zero_iterations_leaves_body_defs_alone() {
        let f = mk(
            vec![
                Insn::CmpJumpFalseII {
                    op: CmpOp::Lt,
                    a: 0,
                    b: 1,
                    to: 4,
                },
                Insn::Const { dst: 2, k: 0 },
                Insn::IncJump {
                    var: 0,
                    step: 1,
                    to: 0,
                },
                Insn::RetVoid,
                Insn::RetVoid,
            ],
            vec![Value::Int(7)],
            3,
        );
        let (prog, exit) = match_at(&f, 0).expect("should match");
        assert_eq!(exit, 4);
        let mut regs = vec![Value::Int(5), Value::Int(5), Value::Str(Arc::from("x"))];
        assert!(run_inner(&prog, &mut regs).is_ok());
        assert!(matches!(regs[2], Value::Str(_)));
        // And with iterations, the const lands.
        let mut regs = vec![Value::Int(0), Value::Int(5), Value::Undefined];
        assert!(run_inner(&prog, &mut regs).is_ok());
        assert!(matches!(regs[0], Value::Int(5)));
        assert!(matches!(regs[2], Value::Int(7)));
    }
}
