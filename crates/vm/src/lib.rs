//! # zomp-vm — executing pragma-annotated Zag programs on real threads
//!
//! The final stage of the paper's pipeline: the `zomp-front` preprocessor
//! lowers OpenMP pragmas to `omp.internal.*` calls, and this crate binds
//! those calls to the real [`zomp`] runtime. `omp.internal.fork_call` runs
//! the outlined function on an actual worker team; worksharing drivers
//! pull chunks from the same schedule machinery the Rust-native kernels
//! use; reductions go through the same atomic cells, CAS loops included.
//!
//! Function bodies execute on one of two backends ([`interp::Backend`]):
//! the default register-bytecode VM ([`bytecode`], [`compile`]) — a flat
//! instruction stream with compile-time slot resolution and fused loop
//! opcodes, post-processed by the [`optimize`] pipeline (constant
//! folding, dead-store elimination, superinstruction fusion;
//! `--opt=0|1|2|3` on the CLI), statically type-specialised from the
//! block-structured [`ir`] by [`typeck`] (`--opt>=2`), and executed with
//! runtime quickening plus a pooled call-frame arena — or the original
//! tree-walking interpreter, kept as the differential-testing oracle
//! (`--backend=ast` on the `zag` CLI). At `--opt=3`
//! (`--backend=native`), recognised hot loop shapes additionally run as
//! precompiled slice-level bulk kernels ([`kernels`]) over the raw
//! `f64`/`i64` array storage, dispatched through the same work-sharing
//! runtime.
//!
//! ```
//! let out = zomp_vm::Vm::run(r#"
//! fn main() void {
//!     var total: i64 = 0;
//!     //$omp parallel num_threads(4) reduction(+: total)
//!     {
//!         var i: i64 = 0;
//!         //$omp while schedule(static)
//!         while (i < 1000) : (i += 1) {
//!             total += 1;
//!         }
//!     }
//!     print(total);
//! }
//! "#).unwrap();
//! assert_eq!(out, vec!["1000"]);
//! ```

pub mod builtins;
pub mod bytecode;
pub mod compile;
pub mod interp;
pub mod ir;
pub mod kernels;
pub mod optimize;
pub mod remarks;
pub mod templates;
pub mod typeck;
pub mod value;

pub use interp::{compile, compile_named, compile_opt, Backend, Program, Vm};
pub use optimize::OptLevel;
pub use value::{Value, VmError};
