//! Runtime values of the Zag VM.
//!
//! Zag is statically annotated but the VM is dynamically typed — the
//! preprocessor has "no semantic context" (§III-B3), so generated code uses
//! `any`-typed parameters and the types meet again only at runtime, which
//! is where the paper's `?*anyopaque` casts happen in Zig.
//!
//! Shared mutability follows the OpenMP contract: scalar variables live in
//! `Arc<Mutex<Value>>` slots (shared scalars are passed as [`Value::Ptr`]
//! after the preprocessor's pointer rewriting), and arrays are
//! [`ArrF`]/[`ArrI`] — `UnsafeCell` element storage with Zig-style
//! bounds-checking controlled by [`zomp::safety::SafetyMode`]
//! (debug = checked, production = unchecked).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use zomp::reduction::{RedCell, RedOp};
use zomp::safety::{safety_mode, SafetyMode};
use zomp::team::{ConstructToken, WsDispatch};

/// A variable slot: scalar variables, shareable across threads through
/// [`Value::Ptr`].
pub type Slot = Arc<Mutex<Value>>;

/// A VM error: message plus an optional source-byte offset.
#[derive(Debug, Clone)]
pub struct VmError(pub String);

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.0)
    }
}

impl std::error::Error for VmError {}

pub type VmResult<T> = Result<T, VmError>;

pub fn err<T>(msg: impl Into<String>) -> VmResult<T> {
    Err(VmError(msg.into()))
}

macro_rules! shared_array {
    ($name:ident, $elem:ty, $zero:expr) => {
        /// A shared numeric array. Element reads/writes are raw under the
        /// OpenMP no-data-race contract; bounds are checked unless the
        /// safety mode is `Production` (Zig's debug/release duality).
        pub struct $name {
            data: Box<[UnsafeCell<$elem>]>,
            checked: bool,
            /// Write seqlock for [`Self::range_hint`]. `0` = hint
            /// tracking inactive (the common case: `set` pays one
            /// relaxed load and nothing else). Activated lazily by the
            /// first `range_hint` call; from then on every write
            /// brackets itself with two `+1` bumps (odd = in flight),
            /// so a cached scan is provably from a quiescent array.
            stamp: AtomicU64,
            /// Last successful scan: `(stamp it was taken at, min, max)`.
            #[allow(dead_code)] // only the int variant is consulted today
            hint: Mutex<Option<(u64, $elem, $elem)>>,
        }

        // SAFETY: cross-thread element access is governed by the OpenMP
        // disjoint-writes contract, exactly as for zomp::shared::SharedSlice.
        unsafe impl Sync for $name {}
        unsafe impl Send for $name {}

        impl $name {
            pub fn new(n: usize) -> Self {
                let data = (0..n).map(|_| UnsafeCell::new($zero)).collect();
                Self {
                    data,
                    checked: safety_mode() != SafetyMode::Production,
                    stamp: AtomicU64::new(0),
                    hint: Mutex::new(None),
                }
            }

            pub fn len(&self) -> usize {
                self.data.len()
            }

            pub fn is_empty(&self) -> bool {
                self.data.is_empty()
            }

            #[inline]
            fn check(&self, i: i64) -> VmResult<usize> {
                if self.checked && (i < 0 || i as usize >= self.data.len()) {
                    return err(format!(
                        "index {} out of bounds (len {})",
                        i,
                        self.data.len()
                    ));
                }
                Ok(i as usize)
            }

            #[inline]
            pub fn get(&self, i: i64) -> VmResult<$elem> {
                let i = self.check(i)?;
                // SAFETY: bounds validated (or contractually valid in
                // production mode); no concurrent writer per OpenMP rules.
                Ok(unsafe { *self.data.get_unchecked(i).get() })
            }

            #[inline]
            pub fn set(&self, i: i64, v: $elem) -> VmResult<()> {
                let i = self.check(i)?;
                let tracked = self.stamp.load(Ordering::Relaxed) != 0;
                if tracked {
                    self.stamp.fetch_add(1, Ordering::Release);
                }
                // SAFETY: as for `get`.
                unsafe { *self.data.get_unchecked(i).get() = v };
                if tracked {
                    self.stamp.fetch_add(1, Ordering::Release);
                }
                Ok(())
            }

            /// Bracket a raw bulk write (a kernel storing through
            /// [`Self::cells`]) so concurrent/later [`Self::range_hint`]
            /// scans can't cache a stale range. Returns whether the
            /// stamp was bumped; pass that to [`Self::write_fence_end`]
            /// (tracking may activate mid-kernel, and the end bump must
            /// pair with the begin bump to keep the stamp even).
            pub(crate) fn write_fence_begin(&self) -> bool {
                let tracked = self.stamp.load(Ordering::Relaxed) != 0;
                if tracked {
                    self.stamp.fetch_add(1, Ordering::Release);
                }
                tracked
            }

            pub(crate) fn write_fence_end(&self, bumped: bool) {
                if bumped {
                    self.stamp.fetch_add(1, Ordering::Release);
                }
            }

            /// `(min, max)` over all elements, cached against the write
            /// seqlock: the scan is O(n) once and O(1) on every later
            /// call until a write bumps the stamp. `None` when the
            /// array is empty, a write is in flight, or a write raced
            /// the scan — callers fall back to per-element checks.
            ///
            /// The first call activates write tracking (stamp 0 → 2);
            /// a writer racing that very activation may skip its bump,
            /// which is the same program-level data race the raw
            /// element accesses already exclude by the OpenMP no-race
            /// contract, so a hint cached here is sound for any
            /// contract-abiding program.
            #[allow(dead_code)] // only the int variant is consulted today
            pub(crate) fn range_hint(&self) -> Option<($elem, $elem)> {
                if self.data.is_empty() {
                    return None;
                }
                let mut s0 = self.stamp.load(Ordering::Acquire);
                if s0 == 0 {
                    s0 =
                        match self
                            .stamp
                            .compare_exchange(0, 2, Ordering::AcqRel, Ordering::Acquire)
                        {
                            Ok(_) => 2,
                            Err(cur) => cur,
                        };
                }
                if s0 & 1 == 1 {
                    return None;
                }
                if let Some((s, lo, hi)) = *self.hint.lock() {
                    if s == s0 {
                        return Some((lo, hi));
                    }
                }
                // SAFETY: non-empty checked above; reads are raw under
                // the no-race contract, and the stamp recheck below
                // rejects the scan if any tracked write overlapped it.
                let mut lo = unsafe { *self.data.get_unchecked(0).get() };
                let mut hi = lo;
                for c in self.data.iter() {
                    let v = unsafe { *c.get() };
                    if v < lo {
                        lo = v;
                    }
                    if v > hi {
                        hi = v;
                    }
                }
                if self.stamp.load(Ordering::Acquire) != s0 {
                    return None;
                }
                *self.hint.lock() = Some((s0, lo, hi));
                Some((lo, hi))
            }

            /// Raw element storage for the `--opt=3` bulk kernels
            /// ([`crate::kernels`]). Kernels bounds-check the whole
            /// index range themselves (in every safety mode) and bail
            /// back to the interpreter on violation, so the exact
            /// checked/unchecked error behaviour of `get`/`set` is
            /// reproduced by the interpreter replay.
            pub(crate) fn cells(&self) -> &[UnsafeCell<$elem>] {
                &self.data
            }

            /// Snapshot for verification/tests.
            pub fn to_vec(&self) -> Vec<$elem> {
                (0..self.data.len() as i64)
                    .map(|i| self.get(i).unwrap())
                    .collect()
            }
        }
    };
}

shared_array!(ArrF, f64, 0.0);
shared_array!(ArrI, i64, 0);

/// Type-erased reduction cell (the runtime meeting point of the paper's
/// `?*anyopaque` reduction group). Shared across a team via
/// `ThreadCtx::construct_shared` for loop reductions.
pub enum RedCellAny {
    I(RedCell<i64>),
    F(RedCell<f64>),
    B(RedCell<bool>),
}

impl RedCellAny {
    pub fn new(op: RedOp, seed: &Value) -> VmResult<RedCellAny> {
        Ok(match seed {
            Value::Int(v) => RedCellAny::I(RedCell::new(op, *v)),
            Value::Float(v) => RedCellAny::F(RedCell::new(op, *v)),
            Value::Bool(v) => RedCellAny::B(RedCell::new(op, *v)),
            other => return err(format!("cannot reduce over {}", other.type_name())),
        })
    }

    pub fn identity(&self) -> Value {
        match self {
            RedCellAny::I(c) => Value::Int(c.identity()),
            RedCellAny::F(c) => Value::Float(c.identity()),
            RedCellAny::B(c) => Value::Bool(c.identity()),
        }
    }

    pub fn combine(&self, v: &Value) -> VmResult<()> {
        match (self, v) {
            (RedCellAny::I(c), Value::Int(v)) => c.combine(*v),
            (RedCellAny::F(c), Value::Float(v)) => c.combine(*v),
            (RedCellAny::B(c), Value::Bool(v)) => c.combine(*v),
            (_, other) => {
                return err(format!(
                    "reduction partial of type {} does not match the cell",
                    other.type_name()
                ))
            }
        }
        Ok(())
    }

    pub fn get(&self) -> Value {
        match self {
            RedCellAny::I(c) => Value::Int(c.get()),
            RedCellAny::F(c) => Value::Float(c.get()),
            RedCellAny::B(c) => Value::Bool(c.get()),
        }
    }
}

/// A per-thread reduction handle: the (team-shared) cell plus, for
/// worksharing-loop reductions, this thread's construct token to release at
/// `red_loop_end`.
pub struct RedHandle {
    pub cell: Arc<RedCellAny>,
    pub token: Mutex<Option<ConstructToken>>,
}

impl RedHandle {
    /// A region-level (fork-site) reduction cell: no construct token.
    pub fn new_local(op: RedOp, seed: &Value) -> VmResult<Arc<RedHandle>> {
        Ok(Arc::new(RedHandle {
            cell: Arc::new(RedCellAny::new(op, seed)?),
            token: Mutex::new(None),
        }))
    }

    pub fn identity(&self) -> Value {
        self.cell.identity()
    }

    pub fn combine(&self, v: &Value) -> VmResult<()> {
        self.cell.combine(v)
    }

    pub fn get(&self) -> Value {
        self.cell.get()
    }
}

/// Worksharing-loop iterator state (the VM object behind the
/// `omp.internal.ws_*` generic wrapper family).
pub struct WsIter {
    pub state: Mutex<WsState>,
}

pub struct WsState {
    /// Denormalisation: source value of iteration 0 and the stride.
    pub lb: i64,
    pub incr: i64,
    pub mode: WsMode,
    /// Current chunk in source-variable units: (first value, exclusive
    /// directional bound).
    pub cur: Option<(i64, i64)>,
    pub finished: bool,
    /// The worksharing pragma's `unit:line` label for the observability
    /// layer; `""` when the translation unit was unnamed.
    pub label: &'static str,
    /// Construct-entry timestamp of this thread's `LoopDispatch` trace
    /// span (0 = tracing off at entry). Only the locally driven modes use
    /// it — team [`WsMode::Dispatch`] records its own span.
    pub t0: u64,
    /// Iterations claimed so far (the local span's trip payload).
    pub iters: u64,
    /// A claimed-but-unclosed chunk `(start, len, t0)`: its body runs
    /// between `ws_next` calls, so the span closes on the next claim or at
    /// fini (the split-phase pattern of `team::WsDispatch`).
    pub pending: Option<(u64, u64, u64)>,
    /// Bulk-claim mode (`omp.internal.ws_begin_bulk`, installed by the
    /// `--opt=3` kernel tier when the chunk body is a single native
    /// kernel): dynamic claims take whole owner batches while the
    /// work-stealing deck is uncontended.
    pub greedy: bool,
}

pub enum WsMode {
    /// Single static block (already computed); `None` once consumed.
    StaticBlock(Option<std::ops::Range<u64>>),
    /// Round-robin static chunks.
    StaticChunked(zomp::schedule::StaticChunked),
    /// Team dispatch (dynamic/guided/runtime inside a region).
    Dispatch(WsDispatch),
    /// Serial fallback dispatch (dynamic/guided outside any region).
    Local(zomp::schedule::DynamicDispatch),
}

/// A Zag runtime value.
#[derive(Clone)]
pub enum Value {
    Void,
    Undefined,
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(Arc<str>),
    ArrF(Arc<ArrF>),
    ArrI(Arc<ArrI>),
    /// Pointer to a scalar variable slot (`&x` / shared rewriting).
    Ptr(Slot),
    /// Pointer to a float array element (`&a[i]`).
    ElemPtrF(Arc<ArrF>, i64),
    /// Pointer to an int array element.
    ElemPtrI(Arc<ArrI>, i64),
    /// A function reference by name.
    Fn(Arc<str>),
    Red(Arc<RedHandle>),
    Ws(Arc<WsIter>),
}

impl Value {
    /// Duplicate a value into another register slot.
    ///
    /// The dispatch loop's `Const`/`Move` arms (and the frame-arena
    /// argument shuffle) call this instead of `Clone::clone`: the
    /// `Copy`-able scalar variants — the only things that flow through the
    /// NPB inner loops — take an early inlined path with no refcount
    /// traffic, while the `Arc`-carrying variants fall through to an
    /// outlined `#[cold]` clone so the hot path stays branch-predictable
    /// and small.
    #[inline(always)]
    pub fn dup(&self) -> Value {
        match self {
            Value::Void => Value::Void,
            Value::Undefined => Value::Undefined,
            Value::Int(v) => Value::Int(*v),
            Value::Float(v) => Value::Float(*v),
            Value::Bool(v) => Value::Bool(*v),
            other => other.dup_slow(),
        }
    }

    /// The `Arc`-bumping tail of [`Value::dup`], kept out of the
    /// interpreter's hot path.
    #[cold]
    #[inline(never)]
    fn dup_slow(&self) -> Value {
        self.clone()
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Void => "void",
            Value::Undefined => "undefined",
            Value::Int(_) => "i64",
            Value::Float(_) => "f64",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::ArrF(_) => "[]f64",
            Value::ArrI(_) => "[]i64",
            Value::Ptr(_) => "*any",
            Value::ElemPtrF(..) => "*f64",
            Value::ElemPtrI(..) => "*i64",
            Value::Fn(_) => "fn",
            Value::Red(_) => "reduction cell",
            Value::Ws(_) => "worksharing iterator",
        }
    }

    pub fn as_int(&self) -> VmResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => err(format!("expected i64, got {}", other.type_name())),
        }
    }

    pub fn as_float(&self) -> VmResult<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            other => err(format!("expected f64, got {}", other.type_name())),
        }
    }

    pub fn as_bool(&self) -> VmResult<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => err(format!("expected bool, got {}", other.type_name())),
        }
    }

    pub fn truthy(&self) -> VmResult<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            Value::Int(v) => Ok(*v != 0),
            other => err(format!("{} is not a condition", other.type_name())),
        }
    }

    /// Display form used by `print`.
    pub fn render(&self) -> String {
        match self {
            Value::Void => "void".into(),
            Value::Undefined => "undefined".into(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => s.to_string(),
            Value::ArrF(a) => format!("[]f64(len {})", a.len()),
            Value::ArrI(a) => format!("[]i64(len {})", a.len()),
            Value::Ptr(p) => format!("*({})", p.lock().render()),
            Value::ElemPtrF(..) | Value::ElemPtrI(..) => "*elem".into(),
            Value::Fn(name) => format!("fn {name}"),
            Value::Red(_) => "reduction cell".into(),
            Value::Ws(_) => "ws iterator".into(),
        }
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_bounds_check_in_debug_mode() {
        zomp::safety::with_safety_mode(SafetyMode::Debug, || {
            let a = ArrF::new(4);
            assert!(a.set(3, 1.5).is_ok());
            assert_eq!(a.get(3).unwrap(), 1.5);
            assert!(a.get(4).is_err());
            assert!(a.set(-1, 0.0).is_err());
        });
    }

    #[test]
    fn arrays_share_across_threads() {
        let a = Arc::new(ArrI::new(100));
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for i in (t..100).step_by(4) {
                        a.set(i, i * 2).unwrap();
                    }
                });
            }
        });
        for i in 0..100 {
            assert_eq!(a.get(i).unwrap(), i * 2);
        }
    }

    #[test]
    fn red_handle_int_add() {
        let h = RedHandle::new_local(RedOp::Add, &Value::Int(5)).unwrap();
        assert_eq!(h.identity().as_int().unwrap(), 0);
        h.combine(&Value::Int(3)).unwrap();
        h.combine(&Value::Int(4)).unwrap();
        assert_eq!(h.get().as_int().unwrap(), 12);
    }

    #[test]
    fn red_handle_rejects_mismatched_partial() {
        let h = RedHandle::new_local(RedOp::Add, &Value::Float(0.0)).unwrap();
        assert!(h.combine(&Value::Int(1)).is_err());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert!(Value::Float(1.0).as_int().is_err());
        assert!(Value::Int(1).truthy().unwrap());
        assert!(!Value::Int(0).truthy().unwrap());
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(Value::Float(2.5).render(), "2.5");
    }

    /// Property: over pseudo-random contents and interleaved writes,
    /// `range_hint` always agrees with a naive min/max scan, and a
    /// write between two calls invalidates the cached range.
    #[test]
    fn range_hint_matches_naive_min_max_under_writes() {
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..50 {
            let n = 1 + (next() % 64) as usize;
            let a = ArrI::new(n);
            for i in 0..n {
                a.set(i as i64, (next() % 2001) as i64 - 1000).unwrap();
            }
            let naive = |a: &ArrI| {
                let v = a.to_vec();
                (*v.iter().min().unwrap(), *v.iter().max().unwrap())
            };
            assert_eq!(a.range_hint(), Some(naive(&a)), "case {case} initial");
            // Cached path returns the same thing.
            assert_eq!(a.range_hint(), Some(naive(&a)), "case {case} cached");
            // A write invalidates the cache; the next scan sees it.
            let i = (next() % n as u64) as i64;
            let v = (next() % 20001) as i64 - 10000;
            a.set(i, v).unwrap();
            assert_eq!(a.range_hint(), Some(naive(&a)), "case {case} after write");
        }
    }

    /// The write seqlock mechanics: tracking activates on first call
    /// (stamp 0 means untracked writes stay free), an in-flight bulk
    /// write (odd stamp) returns `None` instead of a torn range, and
    /// the fence-end makes the hint observable again.
    #[test]
    fn range_hint_stamp_activation_and_inflight_write() {
        let a = ArrI::new(8);
        // Untracked: set() must not bump the stamp before the first
        // range_hint call activates tracking.
        a.set(0, 7).unwrap();
        assert_eq!(a.stamp.load(Ordering::Relaxed), 0);
        assert_eq!(a.range_hint(), Some((0, 7)));
        let s = a.stamp.load(Ordering::Relaxed);
        assert!(s != 0 && s % 2 == 0, "tracking active and quiescent");
        // Bulk-write fence held open: the hint must refuse to scan.
        let bumped = a.write_fence_begin();
        assert!(bumped);
        assert_eq!(a.range_hint(), None, "in-flight write must hide the hint");
        a.write_fence_end(bumped);
        assert_eq!(a.range_hint(), Some((0, 7)));
        // Tracked set() leaves the stamp even and the hint fresh.
        a.set(1, -3).unwrap();
        assert_eq!(a.stamp.load(Ordering::Relaxed) % 2, 0);
        assert_eq!(a.range_hint(), Some((-3, 7)));
    }

    /// A concurrent writer never lets a reader cache a range that
    /// misses its writes: once the writer joins, the very next hint
    /// reflects the final contents, and no hint observed during the
    /// race ever claims a bound outside the values that were ever
    /// present in the array.
    #[test]
    fn range_hint_concurrent_writer_invalidation() {
        let a = Arc::new(ArrI::new(64));
        // Values only ever in [0, 1000]: any hint outside that range
        // would be a torn read leaking through the seqlock.
        assert_eq!(a.range_hint(), Some((0, 0)));
        std::thread::scope(|s| {
            let w = Arc::clone(&a);
            s.spawn(move || {
                for round in 0..200i64 {
                    w.set(round % 64, round % 1000 + 1).unwrap();
                }
            });
            let r = Arc::clone(&a);
            s.spawn(move || {
                for _ in 0..200 {
                    if let Some((lo, hi)) = r.range_hint() {
                        assert!((0..=1000).contains(&lo) && (0..=1000).contains(&hi));
                        assert!(lo <= hi);
                    }
                }
            });
        });
        let v = a.to_vec();
        let want = (*v.iter().min().unwrap(), *v.iter().max().unwrap());
        assert_eq!(a.range_hint(), Some(want), "post-join hint must be exact");
    }
}
