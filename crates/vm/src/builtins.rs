//! The `omp` namespace bindings: the user-facing API (§III-C, Listing 7)
//! and the `.omp.internal` lowering targets of the preprocessor.
//!
//! Inside a parallel region the current [`zomp::team::ThreadCtx`] is made
//! available to builtins through a thread-local stack of erased pointers —
//! valid for exactly the dynamic extent of the outlined call, which the
//! guard enforces.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use zomp::reduction::RedOp;
use zomp::schedule::{
    static_block, DynamicDispatch, LoopBounds, LoopCmp, Schedule, ScheduleKind, StaticChunked,
};
use zomp::team::{Parallel, SingleToken, ThreadCtx};

use crate::interp::Vm;
use crate::value::{
    err, ArrF, ArrI, RedCellAny, RedHandle, Value, VmResult, WsIter, WsMode, WsState,
};

/// The `@builtin` math/alloc table, shared by both backends so a mismatch
/// produces the identical `unknown builtin ...` message. The bytecode
/// executor short-circuits the common typed shapes and only lands here for
/// unusual argument types (or builtins with no dedicated opcode).
pub(crate) fn math_builtin(name: &str, args: &[Value]) -> VmResult<Value> {
    match (name, args) {
        ("@intToFloat", [Value::Int(v)]) => Ok(Value::Float(*v as f64)),
        ("@floatToInt", [Value::Float(v)]) => Ok(Value::Int(*v as i64)),
        ("@sqrt", [Value::Float(v)]) => Ok(Value::Float(v.sqrt())),
        ("@log", [Value::Float(v)]) => Ok(Value::Float(v.ln())),
        ("@exp", [Value::Float(v)]) => Ok(Value::Float(v.exp())),
        ("@sin", [Value::Float(v)]) => Ok(Value::Float(v.sin())),
        ("@cos", [Value::Float(v)]) => Ok(Value::Float(v.cos())),
        ("@pow", [Value::Float(a), Value::Float(b)]) => Ok(Value::Float(a.powf(*b))),
        ("@abs", [Value::Float(v)]) => Ok(Value::Float(v.abs())),
        ("@abs", [Value::Int(v)]) => Ok(Value::Int(v.abs())),
        ("@max", [Value::Float(a), Value::Float(b)]) => Ok(Value::Float(a.max(*b))),
        ("@max", [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.max(b))),
        ("@min", [Value::Float(a), Value::Float(b)]) => Ok(Value::Float(a.min(*b))),
        ("@min", [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.min(b))),
        ("@allocF", [Value::Int(n)]) => Ok(Value::ArrF(Arc::new(ArrF::new(*n as usize)))),
        ("@allocI", [Value::Int(n)]) => Ok(Value::ArrI(Arc::new(ArrI::new(*n as usize)))),
        ("@len", [Value::ArrF(a)]) => Ok(Value::Int(a.len() as i64)),
        ("@len", [Value::ArrI(a)]) => Ok(Value::Int(a.len() as i64)),
        (other, args) => err(format!(
            "unknown builtin {other} for ({})",
            args.iter()
                .map(|a| a.type_name())
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

// ---------------------------------------------------------------------------
// Thread-current region context
// ---------------------------------------------------------------------------

thread_local! {
    static CTX_STACK: RefCell<Vec<*const ()>> = const { RefCell::new(Vec::new()) };
    static SINGLE_STACK: RefCell<Vec<Option<SingleToken>>> = const { RefCell::new(Vec::new()) };
}

pub(crate) struct CtxGuard;

impl CtxGuard {
    pub(crate) fn push(ctx: &ThreadCtx<'_>) -> CtxGuard {
        CTX_STACK.with(|s| s.borrow_mut().push(ctx as *const ThreadCtx as *const ()));
        CtxGuard
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Run `f` with the innermost active region context, if any.
fn with_ctx<R>(f: impl FnOnce(Option<&ThreadCtx<'_>>) -> R) -> R {
    let ptr = CTX_STACK.with(|s| s.borrow().last().copied());
    match ptr {
        // SAFETY: the pointer was pushed by CtxGuard for the dynamic extent
        // of the outlined function we are currently executing inside.
        Some(p) => f(Some(unsafe { &*(p as *const ThreadCtx<'_>) })),
        None => f(None),
    }
}

fn red_op_from_code(code: i64) -> VmResult<RedOp> {
    Ok(match code {
        0 => RedOp::Add,
        1 => RedOp::Mul,
        2 => RedOp::Min,
        3 => RedOp::Max,
        4 => RedOp::BitAnd,
        5 => RedOp::BitOr,
        6 => RedOp::BitXor,
        7 => RedOp::LogicalAnd,
        8 => RedOp::LogicalOr,
        other => return err(format!("unknown reduction op code {other}")),
    })
}

/// Striped locks giving atomicity to `omp.internal.atomic_rmw` on array
/// elements (scalar slots use their own mutex).
fn atomic_stripes() -> &'static [Mutex<()>; 64] {
    static STRIPES: OnceLock<[Mutex<()>; 64]> = OnceLock::new();
    STRIPES.get_or_init(|| std::array::from_fn(|_| Mutex::new(())))
}

fn stripe_for(addr: usize) -> &'static Mutex<()> {
    &atomic_stripes()[(addr >> 4) % 64]
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Entry point from the interpreter: `omp.<path>(args)` or
/// `omp.internal.<path>(args)`.
pub(crate) fn call(vm: &Vm, path: &[&str], args: Vec<Value>) -> VmResult<Value> {
    match path {
        ["internal", name] => internal(vm, name, args),
        // The user-facing API with the redundant `omp_` prefix removed
        // (paper Listing 7).
        ["get_thread_num"] => Ok(Value::Int(zomp::omp::get_thread_num() as i64)),
        ["get_num_threads"] => Ok(Value::Int(zomp::omp::get_num_threads() as i64)),
        ["get_max_threads"] => Ok(Value::Int(vm.runtime.icvs().num_threads() as i64)),
        ["get_num_procs"] => Ok(Value::Int(zomp::omp::get_num_procs() as i64)),
        ["in_parallel"] => Ok(Value::Bool(zomp::omp::in_parallel())),
        ["get_level"] => Ok(Value::Int(zomp::omp::get_level() as i64)),
        ["get_wtime"] => Ok(Value::Float(zomp::omp::get_wtime())),
        ["set_num_threads"] => {
            vm.runtime
                .icvs()
                .set_num_threads(args[0].as_int()?.max(1) as usize);
            Ok(Value::Void)
        }
        other => err(format!("unknown omp function omp.{}", other.join("."))),
    }
}

fn internal(vm: &Vm, name: &str, #[allow(unused_mut)] mut args: Vec<Value>) -> VmResult<Value> {
    match name {
        "fork_call" => fork_call(vm, args),
        "if_threads" => {
            let cond = args[0].truthy()?;
            let nt = args[1].as_int()?;
            Ok(Value::Int(if cond { nt } else { 1 }))
        }
        "barrier" => {
            with_ctx(|ctx| {
                if let Some(ctx) = ctx {
                    ctx.barrier();
                }
            });
            Ok(Value::Void)
        }
        "is_master" => Ok(Value::Bool(with_ctx(|ctx| {
            ctx.map(|c| c.is_master()).unwrap_or(true)
        }))),
        "single_begin" => {
            let chosen = with_ctx(|ctx| match ctx {
                Some(ctx) => {
                    let tok = ctx.single_begin();
                    SINGLE_STACK.with(|s| s.borrow_mut().push(Some(tok)));
                    tok.chosen
                }
                None => {
                    SINGLE_STACK.with(|s| s.borrow_mut().push(None));
                    true
                }
            });
            Ok(Value::Bool(chosen))
        }
        "single_end" => {
            let nowait = args[0].as_int()? != 0;
            let tok = SINGLE_STACK
                .with(|s| s.borrow_mut().pop())
                .ok_or_else(|| crate::value::VmError("single_end without single_begin".into()))?;
            with_ctx(|ctx| {
                if let (Some(ctx), Some(tok)) = (ctx, tok) {
                    ctx.single_end(tok, nowait);
                }
            });
            Ok(Value::Void)
        }
        "critical_enter" => {
            let Value::Str(name) = &args[0] else {
                return err("critical_enter expects a name string");
            };
            // Split-phase (enter/exit straddle interpreter calls), so the
            // guardless `OmpLock` from the VM runtime's registry is used.
            vm.runtime.critical_lock(name).set();
            Ok(Value::Void)
        }
        "critical_exit" => {
            let Value::Str(name) = &args[0] else {
                return err("critical_exit expects a name string");
            };
            vm.runtime.critical_lock(name).unset();
            Ok(Value::Void)
        }
        "atomic_rmw" => atomic_rmw(args),

        // -- reductions ------------------------------------------------------
        "red_cell" => {
            let op = red_op_from_code(args[0].as_int()?)?;
            RedHandle::new_local(op, &args[1]).map(Value::Red)
        }
        "red_identity" => match &args[0] {
            Value::Red(h) => Ok(h.identity()),
            other => err(format!("red_identity on {}", other.type_name())),
        },
        "red_combine" => match &args[0] {
            Value::Red(h) => {
                h.combine(&args[1])?;
                Ok(Value::Void)
            }
            other => err(format!("red_combine on {}", other.type_name())),
        },
        "red_get" => match &args[0] {
            Value::Red(h) => Ok(h.get()),
            other => err(format!("red_get on {}", other.type_name())),
        },
        "red_loop_begin" => {
            let op = red_op_from_code(args[0].as_int()?)?;
            let seed = args.remove(1);
            with_ctx(|ctx| match ctx {
                Some(ctx) => {
                    let mut make_err = None;
                    let (payload, token) =
                        ctx.construct_shared(|| match RedCellAny::new(op, &seed) {
                            Ok(cell) => Arc::new(cell),
                            Err(e) => {
                                make_err = Some(e);
                                Arc::new(RedCellAny::I(zomp::reduction::RedCell::new(op, 0)))
                            }
                        });
                    if let Some(e) = make_err {
                        return Err(e);
                    }
                    let cell = payload.downcast::<RedCellAny>().map_err(|_| {
                        crate::value::VmError("reduction slot type confusion".into())
                    })?;
                    Ok(Value::Red(Arc::new(RedHandle {
                        cell,
                        token: Mutex::new(Some(token)),
                    })))
                }
                None => RedHandle::new_local(op, &seed).map(Value::Red),
            })
        }
        "red_loop_end" => {
            let Value::Red(h) = &args[0] else {
                return err("red_loop_end expects a reduction cell");
            };
            h.combine(&args[1])?;
            with_ctx(|ctx| {
                if let Some(ctx) = ctx {
                    if let Some(tok) = h.token.lock().take() {
                        ctx.construct_done(tok);
                    }
                    // The combined value is only complete after the barrier.
                    ctx.barrier();
                }
            });
            Ok(h.get())
        }

        // -- worksharing loops -------------------------------------------------
        "trip_count" => {
            let bounds = LoopBounds {
                lb: args[0].as_int()?,
                ub: args[1].as_int()?,
                incr: args[2].as_int()?,
                cmp: cmp_from_code(args[3].as_int()?)?,
            };
            let trip = bounds
                .try_trip_count()
                .map_err(|e| crate::value::VmError(e.to_string()))?;
            Ok(Value::Int(trip as i64))
        }
        "ws_begin" => ws_begin(vm, args, false),
        // Installed by the `--opt=3` kernel tier in place of `ws_begin`
        // when every chunk body is a single native bulk kernel: same
        // protocol, but dynamic claims are batch-granular while the deck
        // is uncontended (the kernel handles any chunk length, so the
        // clause chunk size only matters for steal granularity).
        "ws_begin_bulk" => ws_begin(vm, args, true),
        "ws_next" => ws_next(args),
        "ws_lb" => ws_cur(args, true),
        "ws_ub" => ws_cur(args, false),
        "ws_fini" => ws_fini(args),

        other => err(format!("unknown omp.internal function {other}")),
    }
}

// ---------------------------------------------------------------------------
// fork_call
// ---------------------------------------------------------------------------

fn fork_call(vm: &Vm, args: Vec<Value>) -> VmResult<Value> {
    // An optional leading string is the region label (`unit:line` of the
    // pragma, emitted by `preprocess_named`). The label is always set
    // explicitly — even when empty — so the runtime's `#[track_caller]`
    // fallback never points at this VM-internal call site.
    let (label, base) = match args.first() {
        Some(Value::Str(s)) => (zomp::trace::intern(s), 1usize),
        _ => ("", 0usize),
    };
    if args.len() < base + 2 {
        return err("fork_call needs ([label,] num_threads, fn, args...)");
    }
    let nt = args[base].as_int()?;
    let Value::Fn(fname) = &args[base + 1] else {
        return err(format!(
            "fork_call expects an outlined function, got {}",
            args[base + 1].type_name()
        ));
    };
    let rest: Vec<Value> = args[base + 2..].to_vec();
    let par = if nt > 0 {
        Parallel::new().num_threads(nt as usize)
    } else {
        Parallel::new()
    };
    let par = par.label(label);
    let failure: Mutex<Option<crate::value::VmError>> = Mutex::new(None);
    zomp::fork_call_rt(&vm.runtime, par, |ctx| {
        let _guard = CtxGuard::push(ctx);
        if let Err(e) = vm.call_function(fname, rest.clone()) {
            let mut slot = failure.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    });
    match failure.into_inner() {
        Some(e) => Err(e),
        None => Ok(Value::Void),
    }
}

// ---------------------------------------------------------------------------
// atomic directive
// ---------------------------------------------------------------------------

fn atomic_apply(op: i64, old_i: Option<i64>, old_f: Option<f64>, v: &Value) -> VmResult<Value> {
    // op codes from the preprocessor: 0 add, 1 mul, 9 sub, 10 div.
    match (old_i, old_f, v) {
        (Some(a), None, Value::Int(b)) => Ok(Value::Int(match op {
            0 => a.wrapping_add(*b),
            1 => a.wrapping_mul(*b),
            9 => a.wrapping_sub(*b),
            10 => {
                if *b == 0 {
                    return err("atomic division by zero");
                }
                a / b
            }
            _ => return err(format!("unknown atomic op {op}")),
        })),
        (None, Some(a), Value::Float(b)) => Ok(Value::Float(match op {
            0 => a + b,
            1 => a * b,
            9 => a - b,
            10 => a / b,
            _ => return err(format!("unknown atomic op {op}")),
        })),
        _ => err("atomic operand type mismatch"),
    }
}

fn atomic_rmw(args: Vec<Value>) -> VmResult<Value> {
    let op = args[1].as_int()?;
    let v = &args[2];
    match &args[0] {
        Value::Ptr(slot) => {
            // The slot's mutex provides the atomicity.
            let mut g = slot.lock();
            let new = match &*g {
                Value::Int(a) => atomic_apply(op, Some(*a), None, v)?,
                Value::Float(a) => atomic_apply(op, None, Some(*a), v)?,
                other => return err(format!("atomic on {}", other.type_name())),
            };
            *g = new;
            Ok(Value::Void)
        }
        Value::ElemPtrF(arr, i) => {
            let _g = stripe_for(Arc::as_ptr(arr) as usize + *i as usize).lock();
            let old = arr.get(*i)?;
            let new = atomic_apply(op, None, Some(old), v)?.as_float()?;
            arr.set(*i, new)?;
            Ok(Value::Void)
        }
        Value::ElemPtrI(arr, i) => {
            let _g = stripe_for(Arc::as_ptr(arr) as usize + *i as usize).lock();
            let old = arr.get(*i)?;
            let new = atomic_apply(op, Some(old), None, v)?.as_int()?;
            arr.set(*i, new)?;
            Ok(Value::Void)
        }
        other => err(format!(
            "atomic target must be a pointer, got {}",
            other.type_name()
        )),
    }
}

// ---------------------------------------------------------------------------
// Worksharing loop drivers
// ---------------------------------------------------------------------------

fn cmp_from_code(code: i64) -> VmResult<LoopCmp> {
    Ok(match code {
        0 => LoopCmp::Lt,
        1 => LoopCmp::Le,
        2 => LoopCmp::Gt,
        3 => LoopCmp::Ge,
        other => return err(format!("bad comparison code {other}")),
    })
}

fn ws_begin(vm: &Vm, args: Vec<Value>, greedy: bool) -> VmResult<Value> {
    // An optional leading string is the worksharing pragma's `unit:line`
    // label (named translation units only), mirroring `fork_call`.
    let (label, base) = match args.first() {
        Some(Value::Str(s)) => (zomp::trace::intern(s), 1usize),
        _ => ("", 0usize),
    };
    let kind_code = args[base].as_int()?;
    let chunk_raw = args[base + 1].as_int()?;
    let lb = args[base + 2].as_int()?;
    let ub = args[base + 3].as_int()?;
    let incr = args[base + 4].as_int()?;
    let cmp = cmp_from_code(args[base + 5].as_int()?)?;
    let chunk = (chunk_raw > 0).then_some(chunk_raw);

    let bounds = LoopBounds { lb, ub, incr, cmp };
    // Non-conforming loops surface as `Trap`s with the `ScheduleError`
    // text — identical on both backends, since builtins are shared.
    let trip = bounds
        .try_trip_count()
        .map_err(|e| crate::value::VmError(e.to_string()))?;

    // `runtime` resolves against the ICVs at loop entry (§III-B2).
    let sched = match kind_code {
        1 => Schedule::dynamic(chunk),
        2 => Schedule::guided(chunk),
        3 => vm.runtime.icvs().run_schedule(),
        _ => Schedule {
            kind: ScheduleKind::Static,
            chunk,
        },
    };

    let mode = with_ctx(|ctx| -> VmResult<WsMode> {
        let (tid, nth) = ctx
            .map(|c| (c.thread_num(), c.num_threads()))
            .unwrap_or((0, 1));
        Ok(match sched.kind {
            ScheduleKind::Static => match sched.chunk {
                None => WsMode::StaticBlock(Some(static_block(tid, nth, trip))),
                Some(c) => WsMode::StaticChunked(
                    StaticChunked::try_new(tid, nth, trip, c)
                        .map_err(|e| crate::value::VmError(e.to_string()))?,
                ),
            },
            _ => match ctx {
                Some(ctx) => WsMode::Dispatch(ctx.dispatch_begin_labelled(
                    sched,
                    trip,
                    (!label.is_empty()).then_some(label),
                )),
                // Serial fallback: a 1-thread deck claimed as tid 0.
                None => WsMode::Local(DynamicDispatch::new(trip, 1, sched.chunk)),
            },
        })
    })?;

    // The locally driven modes record their own `LoopDispatch` span
    // (closed when the loop exhausts or at fini); team `Dispatch` already
    // spans the construct through `dispatch_begin_labelled`.
    let t0 = match &mode {
        WsMode::Dispatch(_) => 0,
        WsMode::Local(_) => zomp::trace::dispatch_begin_ts(true),
        _ => zomp::trace::dispatch_begin_ts(false),
    };

    Ok(Value::Ws(Arc::new(WsIter {
        state: Mutex::new(WsState {
            lb,
            incr,
            mode,
            cur: None,
            finished: false,
            label,
            t0,
            iters: 0,
            pending: None,
            greedy,
        }),
    })))
}

/// Close a locally driven loop's trace bookkeeping: flush the pending
/// chunk span and record the thread's `LoopDispatch` span. No-op for team
/// [`WsMode::Dispatch`] loops (the team handle spans those).
fn ws_close_span(st: &mut WsState) {
    if let Some((start, len, t0)) = st.pending.take() {
        zomp::trace::chunk(zomp::schedule::ChunkOrigin::Owned, start, len, t0);
    }
    if !matches!(st.mode, WsMode::Dispatch(_)) {
        let dynamic = matches!(st.mode, WsMode::Local(_));
        zomp::trace::dispatch_end(st.label, st.iters, dynamic, st.t0);
    }
}

fn as_ws(v: &Value) -> VmResult<&Arc<WsIter>> {
    match v {
        Value::Ws(w) => Ok(w),
        other => err(format!(
            "expected a worksharing iterator, got {}",
            other.type_name()
        )),
    }
}

fn ws_next(args: Vec<Value>) -> VmResult<Value> {
    let ws = as_ws(&args[0])?;
    let mut st = ws.state.lock();
    let traced = zomp::trace::active();
    if traced {
        // Split-phase: the previous chunk's body ran between calls — close
        // its span before claiming the next (team Dispatch does its own).
        if let Some((start, len, t0)) = st.pending.take() {
            zomp::trace::chunk(zomp::schedule::ChunkOrigin::Owned, start, len, t0);
        }
    }
    let greedy = st.greedy;
    let logical = match &mut st.mode {
        WsMode::StaticBlock(r) => r.take().filter(|r| !r.is_empty()),
        // Static chunking is a *mapping* of iterations to threads, not a
        // dispatch protocol — bulk mode only coalesces chunks when the
        // mapping is unaffected (single-thread teams; see `next_bulk`).
        WsMode::StaticChunked(it) if greedy => it.next_bulk(),
        WsMode::StaticChunked(it) => it.next(),
        WsMode::Dispatch(d) => with_ctx(|ctx| match ctx {
            Some(ctx) if greedy => ctx.dispatch_next_bulk(d),
            Some(ctx) => ctx.dispatch_next(d),
            None => None,
        }),
        WsMode::Local(d) if greedy => d.next_bulk(0),
        WsMode::Local(d) => d.next(0),
    };
    match logical {
        Some(r) => {
            if traced && !matches!(st.mode, WsMode::Dispatch(_)) {
                st.iters += r.end - r.start;
                st.pending = Some((r.start, r.end - r.start, zomp::trace::chunk_begin_ts()));
            }
            let lo = st.lb + r.start as i64 * st.incr;
            let hi = st.lb + r.end as i64 * st.incr;
            st.cur = Some((lo, hi));
            Ok(Value::Bool(true))
        }
        None => {
            if traced && !st.finished {
                ws_close_span(&mut st);
            }
            st.finished = true;
            st.cur = None;
            Ok(Value::Bool(false))
        }
    }
}

fn ws_cur(args: Vec<Value>, lower: bool) -> VmResult<Value> {
    let ws = as_ws(&args[0])?;
    let st = ws.state.lock();
    match st.cur {
        Some((lo, hi)) => Ok(Value::Int(if lower { lo } else { hi })),
        None => err("worksharing iterator has no current chunk"),
    }
}

fn ws_fini(args: Vec<Value>) -> VmResult<Value> {
    let ws = as_ws(&args[0])?;
    let nowait = args[1].as_int()? != 0;
    {
        let mut st = ws.state.lock();
        // Loops abandoned before exhaustion must still release their team
        // construct slot (and close their trace spans).
        if let WsMode::Dispatch(d) = &st.mode {
            if !st.finished {
                with_ctx(|ctx| {
                    if let Some(ctx) = ctx {
                        ctx.dispatch_end(d);
                    }
                });
                st.finished = true;
            }
        } else if !st.finished && zomp::trace::active() {
            ws_close_span(&mut st);
            st.finished = true;
        }
    }
    if !nowait {
        with_ctx(|ctx| {
            if let Some(ctx) = ctx {
                ctx.barrier();
            }
        });
    }
    Ok(Value::Void)
}
