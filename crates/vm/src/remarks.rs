//! Optimization remarks (`zag --remarks[=json]`).
//!
//! Recompiles a program with the pipeline instrumented and reports,
//! through the unified [`Diag`] API, what the tiered compiler actually
//! did — the compile-time half of the observability layer (the runtime
//! half is `zomp::trace` / `zag --profile`):
//!
//! - **`kernel-installed`** — a loop lowered to one of the nine native
//!   bulk-kernel shapes (`--opt=3`), named.
//! - **`kernel-missed`** — a loop that stayed interpreted, with a
//!   machine-readable reason: `call-boundary` (naming every callee the
//!   matcher stopped at — the matcher sees *through* a call only when
//!   the callee verifies as the NPB 46-bit LCG, so anything else is a
//!   boundary), `unsupported-op`, `dynamic-type`, or `shape`. The same
//!   rows are exported structurally via [`kernel_misses`] so bench
//!   artifacts (`BENCH_tiers.json`) can embed them per loop.
//! - **`typeck-summary` / `typeck-dynamic`** — per-function static
//!   specialization outcome (`--opt>=2`): how many sites inference
//!   proved Int/Float, and for each site left to runtime quickening,
//!   the operand types that blocked it.
//! - **`opt-pipeline`** — per-function fold/copy-propagation, local
//!   CSE, dead-store-elimination and fusion counts (`--opt>=1`).
//!
//! Remarks belonging to a pragma loop carry its `unit:line` label (the
//! same label the preprocessor threads into `ws_begin`/`fork_call` for
//! runtime spans), so `--remarks` and `--profile` rows join on it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use zomp_front::Diag;

use crate::bytecode::{CompiledFn, Image, Insn};
use crate::optimize::{OptLevel, OptStats};
use crate::typeck::SiteOutcome;
use crate::value::Value;

/// Per-pass statistics collected while
/// [`crate::compile::compile_image_opt_collect`] runs, indexed like
/// `image.funcs`.
#[derive(Default)]
pub struct PassData {
    pub opt_stats: Vec<OptStats>,
    pub sites: Vec<Vec<SiteOutcome>>,
}

/// Compile `source` at `opt` with the pipeline instrumented and return
/// the optimization remarks. `unit` labels pragma loops `unit:line`
/// (normally the source path, as in `compile_named`).
pub fn collect(source: &str, unit: &str, opt: OptLevel) -> Result<Vec<Diag>, Diag> {
    let pre = zomp_front::preprocess::preprocess_named(source, unit)?;
    let ast = zomp_front::parse(&pre)?;
    let mut data = PassData::default();
    let image = crate::compile::compile_image_opt_collect(&ast, opt, Some(&mut data));
    Ok(assemble(source, &image, &data, opt))
}

fn assemble(source: &str, image: &Image, data: &PassData, opt: OptLevel) -> Vec<Diag> {
    let mut out = Vec::new();
    for (fi, f) in image.funcs.iter().enumerate() {
        if opt >= OptLevel::O3 {
            kernel_remarks(source, image, f, &mut out);
        }
        if opt >= OptLevel::O2 {
            if let Some(sites) = data.sites.get(fi) {
                typeck_remarks(source, f, sites, &mut out);
            }
        }
        if let Some(stats) = data.opt_stats.get(fi) {
            if stats.any() {
                out.push(Diag::remark(
                    "opt-pipeline",
                    0,
                    format!(
                        "fn `{}`: {} folded/copy-propagated, {} local CSE, {} dead stores removed, {} fused away",
                        f.name, stats.folded, stats.cse, stats.dse, stats.fused
                    ),
                ));
            }
        }
    }
    out
}

/// `kernel-installed` for every `BulkLoop` and `template-installed`
/// for every `TemplateLoop` in the final stream, then `kernel-missed`
/// (with a reason) for every remaining back-edge loop that is not
/// part of the worksharing protocol itself.
fn kernel_remarks(source: &str, image: &Image, f: &CompiledFn, out: &mut Vec<Diag>) {
    // Installed spans: the BulkLoop/TemplateLoop pc and everything to
    // its exit — the replaced loop body (including any nested loop the
    // shape subsumes, e.g. matvec-rows' inner gather) lives in that
    // range.
    let mut installed: Vec<(usize, usize)> = Vec::new();
    for (pc, insn) in f.code.iter().enumerate() {
        let Insn::BulkLoop { kidx } = insn else {
            continue;
        };
        let desc = &f.kernels[*kidx as usize];
        installed.push((pc, desc.exit as usize));
        let mut d = Diag::remark(
            "kernel-installed",
            label_offset(source, desc.label),
            format!(
                "fn `{}`: kernel installed: {} (pc {pc})",
                f.name,
                desc.kind.name()
            ),
        );
        if !desc.label.is_empty() {
            d = d.with_label(desc.label);
        }
        out.push(d);
    }
    for (pc, insn) in f.code.iter().enumerate() {
        let Insn::TemplateLoop { tidx } = insn else {
            continue;
        };
        let desc = &f.templates[*tidx as usize];
        installed.push((pc, desc.exit as usize));
        let mut d = Diag::remark(
            "template-installed",
            label_offset(source, desc.label),
            format!(
                "fn `{}`: template installed: typed loop, {} insns (pc {pc})",
                f.name, desc.prog.ninsns
            ),
        );
        if !desc.label.is_empty() {
            d = d.with_label(desc.label);
        }
        out.push(d);
    }
    for (head, tail) in loops_of(f) {
        if installed.iter().any(|&(s, e)| head >= s && head < e) {
            continue;
        }
        // The `while (ws_next(ws))` driver loop is the worksharing
        // protocol, not a compute loop; its *inner* chunk loop is
        // reported separately.
        let is_protocol = (head..=tail).any(|pc| match f.code[pc] {
            Insn::OmpCall { sym, .. } => {
                f.omp_syms[sym as usize].last().map(String::as_str) == Some("ws_next")
            }
            _ => false,
        });
        if is_protocol {
            continue;
        }
        let (_, reason, note) = classify_miss(image, f, head, tail, &installed);
        let label = miss_label(image, f, head);
        let d = Diag::remark(
            "kernel-missed",
            label_offset(source, &label),
            format!(
                "fn `{}`: loop at pc {head}..{tail} not lowered to a bulk kernel: {reason}",
                f.name
            ),
        )
        .with_note(note)
        .with_label(label);
        out.push(d);
    }
}

/// Label for a `kernel-missed` row. Loops under a worksharing pragma
/// get its `unit:line` label; loops outside any labelled pragma (e.g.
/// inside a helper function the pragma body calls) are attributed to
/// the unique pragma label enclosing the function's call sites, and
/// failing that to a stable `fn:<name>` slug — so every miss row has
/// a non-empty key that profiler and bench artifacts can join on.
fn miss_label(image: &Image, f: &CompiledFn, head: usize) -> String {
    let own = crate::kernels::loop_label(f, head);
    if !own.is_empty() {
        return own.to_string();
    }
    let fi = image.by_name.get(&f.name).copied();
    let mut found: Option<&'static str> = None;
    for g in &image.funcs {
        for (pc, insn) in g.code.iter().enumerate() {
            let referenced = match insn {
                Insn::Call { func, .. } => Some(*func as usize) == fi,
                // Fork/task sites pass the outlined function as a
                // `Fn` constant rather than a direct call.
                Insn::Const { k, .. } => matches!(
                    g.consts.get(*k as usize),
                    Some(Value::Fn(n)) if n.as_ref() == f.name
                ),
                _ => false,
            };
            if !referenced {
                continue;
            }
            let l = crate::kernels::loop_label(g, pc);
            if l.is_empty() {
                continue;
            }
            match found {
                None => found = Some(l),
                Some(prev) if prev == l => {}
                // Ambiguous: called from more than one pragma.
                Some(_) => return format!("fn:{}", f.name),
            }
        }
    }
    found
        .map(str::to_string)
        .unwrap_or_else(|| format!("fn:{}", f.name))
}

/// Why the kernel matcher could not take a loop, most actionable
/// reason first: a call boundary beats everything (verifying or
/// inlining the callee would be the fix), then an opcode no shape
/// covers, then operand types the specializer could not prove, and
/// finally a plain shape mismatch. Returns `(slug, human reason,
/// note)`; the slug is the stable machine-readable vocabulary
/// promised in the module docs. Instructions inside an `installed`
/// kernel span are skipped: they were subsumed by a `BulkLoop` and no
/// longer block the *enclosing* loop, so naming them (e.g. the
/// `randlc` call inside an installed `lcg-fill`) would be noise.
fn classify_miss(
    image: &Image,
    f: &CompiledFn,
    head: usize,
    tail: usize,
    installed: &[(usize, usize)],
) -> (&'static str, &'static str, String) {
    let mut callees: Vec<String> = Vec::new();
    let mut push = |c: String| {
        if !callees.contains(&c) {
            callees.push(c);
        }
    };
    let mut dynamic: Option<&'static str> = None;
    let mut unsupported: Option<&'static str> = None;
    for pc in head..=tail.min(f.code.len().saturating_sub(1)) {
        if installed.iter().any(|&(s, e)| pc >= s && pc < e) {
            continue;
        }
        match f.code[pc] {
            Insn::Call { func, .. } => push(format!("`{}`", image.funcs[func as usize].name)),
            Insn::CallValue { .. } => push("an indirect call".to_string()),
            Insn::OmpCall { sym, .. } => {
                push(format!("`omp.{}`", f.omp_syms[sym as usize].join(".")))
            }
            Insn::Builtin { name_k, .. } => {
                let name: &str = match f.consts.get(name_k as usize) {
                    Some(Value::Str(s)) => s,
                    _ => "@builtin",
                };
                push(format!("`{name}`"));
            }
            Insn::Arith { .. } => dynamic = dynamic.or(Some("arith")),
            Insn::Cmp { .. } => dynamic = dynamic.or(Some("cmp")),
            Insn::CmpJumpFalse { .. } => dynamic = dynamic.or(Some("cmp_jf")),
            Insn::Index { .. } => dynamic = dynamic.or(Some("index")),
            Insn::IndexSet { .. } => dynamic = dynamic.or(Some("index_set")),
            Insn::Print { .. } => unsupported = unsupported.or(Some("print")),
            Insn::NewCell { .. } => unsupported = unsupported.or(Some("newcell")),
            Insn::CellGet { .. } => unsupported = unsupported.or(Some("cellget")),
            Insn::CellSet { .. } => unsupported = unsupported.or(Some("cellset")),
            Insn::StorePtr { .. } => unsupported = unsupported.or(Some("storeptr")),
            Insn::ElemAddr { .. } => unsupported = unsupported.or(Some("elemaddr")),
            Insn::AddrDeref { .. } => unsupported = unsupported.or(Some("addrderef")),
            _ => {}
        }
    }
    if !callees.is_empty() {
        (
            "call-boundary",
            "call boundary",
            format!(
                "the matcher only sees through calls whose callee verifies as the \
                 46-bit LCG; loop body calls {}",
                callees.join(", ")
            ),
        )
    } else if let Some(op) = unsupported {
        (
            "unsupported-op",
            "unsupported opcode",
            format!("`{op}` has no bulk-kernel lowering"),
        )
    } else if let Some(op) = dynamic {
        (
            "dynamic-type",
            "dynamic operand types",
            format!("`{op}` operands were not statically proven Int/Float"),
        )
    } else {
        (
            "shape",
            "shape mismatch",
            "loop bounds/indexing structure matches none of the nine kernel shapes".to_string(),
        )
    }
}

/// One `kernel-missed` row in structural form, for bench artifacts
/// (`tier-bench` embeds these in `BENCH_tiers.json` so a 0%-native
/// loop self-explains without re-running `--remarks`).
pub struct MissRow {
    /// Enclosing function name.
    pub func: String,
    /// The worksharing pragma's `unit:line` label, `""` when the loop
    /// sits outside any labelled pragma.
    pub label: String,
    /// Loop head pc in the final instruction stream.
    pub head: usize,
    /// Stable reason slug: `call-boundary`, `unsupported-op`,
    /// `dynamic-type`, or `shape`.
    pub reason: &'static str,
    /// Human-readable detail (callee names, blocking opcode, ...).
    pub note: String,
}

/// Recompile `source` at `--opt=3` and report every compute loop the
/// kernel matcher left interpreted, with machine-readable reasons —
/// the structural twin of the `kernel-missed` remarks.
pub fn kernel_misses(source: &str, unit: &str) -> Result<Vec<MissRow>, Diag> {
    let pre = zomp_front::preprocess::preprocess_named(source, unit)?;
    let ast = zomp_front::parse(&pre)?;
    let image = crate::compile::compile_image_opt(&ast, OptLevel::O3);
    let mut rows = Vec::new();
    for f in &image.funcs {
        let installed: Vec<(usize, usize)> = f
            .code
            .iter()
            .enumerate()
            .filter_map(|(pc, insn)| match insn {
                Insn::BulkLoop { kidx } => Some((pc, f.kernels[*kidx as usize].exit as usize)),
                Insn::TemplateLoop { tidx } => {
                    Some((pc, f.templates[*tidx as usize].exit as usize))
                }
                _ => None,
            })
            .collect();
        for (head, tail) in loops_of(f) {
            if installed.iter().any(|&(s, e)| head >= s && head < e) {
                continue;
            }
            let is_protocol = (head..=tail).any(|pc| match f.code[pc] {
                Insn::OmpCall { sym, .. } => {
                    f.omp_syms[sym as usize].last().map(String::as_str) == Some("ws_next")
                }
                _ => false,
            });
            if is_protocol {
                continue;
            }
            let (slug, _, note) = classify_miss(&image, f, head, tail, &installed);
            rows.push(MissRow {
                func: f.name.clone(),
                label: miss_label(&image, f, head),
                head,
                reason: slug,
                note,
            });
        }
    }
    Ok(rows)
}

fn typeck_remarks(source: &str, f: &CompiledFn, sites: &[SiteOutcome], out: &mut Vec<Diag>) {
    if sites.is_empty() {
        return;
    }
    let spec = sites.iter().filter(|s| s.specialized.is_some()).count();
    out.push(Diag::remark(
        "typeck-summary",
        0,
        format!(
            "fn `{}`: {spec} of {} specializable sites statically typed Int/Float, {} left to runtime quickening",
            f.name,
            sites.len(),
            sites.len() - spec
        ),
    ));
    for s in sites.iter().filter(|s| s.specialized.is_none()) {
        let tys: Vec<&str> = s.operands.iter().map(|t| t.name()).collect();
        out.push(Diag::remark(
            "typeck-dynamic",
            0,
            format!(
                "fn `{}`: `{}` at pc {} stayed dynamic (operands {})",
                f.name,
                s.insn,
                s.pc,
                tys.join(", ")
            ),
        ));
    }
    let _ = source;
}

/// Back-edge loops of a function: `head -> furthest back-edge pc`.
fn loops_of(f: &CompiledFn) -> Vec<(usize, usize)> {
    let mut map: BTreeMap<usize, usize> = BTreeMap::new();
    for (pc, insn) in f.code.iter().enumerate() {
        let to = match *insn {
            Insn::Jump { to }
            | Insn::JumpIfFalse { to, .. }
            | Insn::JumpIfTrue { to, .. }
            | Insn::CmpJumpFalse { to, .. }
            | Insn::CmpJumpFalseII { to, .. }
            | Insn::CmpJumpFalseFF { to, .. }
            | Insn::IncCmpJump { to, .. }
            | Insn::IncJump { to, .. } => to as usize,
            _ => continue,
        };
        if to <= pc {
            let e = map.entry(to).or_insert(pc);
            *e = (*e).max(pc);
        }
    }
    map.into_iter().collect()
}

/// Byte offset of the line a `unit:line` label names, so rendered
/// remarks point at the pragma. `0` for unlabelled remarks.
fn label_offset(source: &str, label: &str) -> usize {
    let Some(line) = label
        .rsplit(':')
        .next()
        .and_then(|l| l.parse::<usize>().ok())
    else {
        return 0;
    };
    source
        .split_inclusive('\n')
        .take(line.saturating_sub(1))
        .map(str::len)
        .sum()
}

/// Render remarks as a JSON array (`zag --remarks=json`), with
/// line/column resolved against `source` exactly like [`Diag::render`].
pub fn render_json(diags: &[Diag], source: &str) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        let upto = &source[..d.offset.min(source.len())];
        let line = upto.matches('\n').count() + 1;
        let col = d.offset.min(source.len()) - upto.rfind('\n').map(|p| p + 1).unwrap_or(0) + 1;
        let _ = write!(
            out,
            "  {{\"code\": \"{}\", \"line\": {line}, \"col\": {col}, \"label\": {}, \"message\": \"{}\", \"note\": {}}}",
            esc(d.code),
            d.label
                .as_deref()
                .map(|l| format!("\"{}\"", esc(l)))
                .unwrap_or_else(|| "null".to_string()),
            esc(&d.message),
            d.note
                .as_deref()
                .map(|n| format!("\"{}\"", esc(n)))
                .unwrap_or_else(|| "null".to_string()),
        );
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOPY: &str = r#"fn main() void {
    var n: i64 = 64;
    var a: []f64 = @allocF(64);
    //$omp parallel num_threads(2) shared(a) firstprivate(n)
    {
        var i: i64 = 0;
        //$omp while schedule(static)
        while (i < n) : (i += 1) {
            a[i] = 1.0;
        }
    }
    print(a[0]);
}
"#;

    #[test]
    fn collect_reports_opt_and_typeck_remarks() {
        let diags = collect(LOOPY, "demo.zag", OptLevel::O2).expect("collect");
        assert!(
            diags.iter().any(|d| d.code == "typeck-summary"),
            "{diags:?}"
        );
    }

    #[test]
    fn o3_reports_installed_fill_kernel_with_pragma_label() {
        let diags = collect(LOOPY, "demo.zag", OptLevel::O3).expect("collect");
        let installed: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "kernel-installed")
            .collect();
        assert!(
            installed.iter().any(|d| d.message.contains("fill-const")),
            "{installed:?}"
        );
        assert!(
            installed.iter().any(|d| d
                .label
                .as_deref()
                .is_some_and(|l| l.starts_with("demo.zag:"))),
            "{installed:?}"
        );
    }

    #[test]
    fn call_boundary_miss_names_the_callee() {
        let src = r#"fn randlc(x: *f64, a: f64) f64 {
    x.* = x.* * a;
    return x.*;
}
fn main() void {
    var n: i64 = 8;
    var s: f64 = 0.0;
    //$omp parallel num_threads(2) shared(s) firstprivate(n)
    {
        var t: f64 = 1.0;
        var i: i64 = 0;
        //$omp while reduction(+: s)
        while (i < n) : (i += 1) {
            s = s + randlc(&t, 0.5);
        }
    }
    print(s);
}
"#;
        let diags = collect(src, "ep.zag", OptLevel::O3).expect("collect");
        let missed: Vec<_> = diags.iter().filter(|d| d.code == "kernel-missed").collect();
        assert!(
            missed.iter().any(|d| {
                d.message.contains("call boundary")
                    && d.note.as_deref().is_some_and(|n| n.contains("randlc"))
            }),
            "{missed:?}"
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diag::remark("kernel-missed", 0, "say \"hi\"").with_label("a.zag:1");
        let json = render_json(&[d], "x\n");
        assert!(json.contains("\\\"hi\\\""), "{json}");
        assert!(json.contains("\"label\": \"a.zag:1\""), "{json}");
        assert!(json.trim_start().starts_with('['), "{json}");
    }
}
