//! Program loading and the two execution backends.
//!
//! Both backends execute the *preprocessed* (pragma-free) program. All
//! parallelism enters through `omp.internal.fork_call`, which runs the
//! outlined function on a real `zomp` team — so a pragma-annotated Zag
//! program ends up executing on actual threads, completing the paper's
//! pipeline end to end.
//!
//! The default backend is the register-bytecode VM ([`Backend::Bytecode`]):
//! functions are lowered once by [`crate::compile`] and executed by
//! [`Vm::run_bytecode`] with a dense `match` dispatch over flat
//! instructions and unboxed register frames. The original tree-walker is
//! kept behind [`Backend::Ast`] as the differential-testing oracle; the
//! two are required to produce byte-identical output (including error
//! messages), which `crates/vm/tests/differential.rs` enforces.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use zomp_front::ast::{Ast, Node, NodeId, Tag as N};
use zomp_front::token::Tag as T;

use crate::builtins;
use crate::bytecode::{ArithOp, BuiltinOp, CmpOp, Image, Insn};
use crate::value::{err, ArrF, ArrI, Slot, Value, VmError, VmResult};

/// Which execution engine runs function bodies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Flat register-bytecode VM (default).
    #[default]
    Bytecode,
    /// Original tree-walking interpreter, kept as the semantic oracle.
    Ast,
}

impl Backend {
    /// Parse a CLI/ENV spelling (`ast` | `bytecode`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "ast" => Some(Backend::Ast),
            "bytecode" => Some(Backend::Bytecode),
            _ => None,
        }
    }
}

/// A compiled (preprocessed + parsed + lowered) program.
pub struct Program {
    pub ast: Ast,
    pub functions: HashMap<String, NodeId>,
    /// The bytecode image: every function lowered to a flat instruction
    /// stream with resolved register slots.
    pub code: Image,
    /// The source before preprocessing, kept for display/teaching.
    pub original_source: String,
    /// The pragma-free source actually executed.
    pub final_source: String,
    /// Data-sharing lint findings from `zomp_front::analyze`, produced
    /// against `original_source`. Warnings only — the embedder decides
    /// whether to surface or deny them (`zag` prints them by default).
    pub diags: Vec<zomp_front::Diag>,
}

/// Compile Zag source: preprocess pragmas away, parse, index functions.
pub fn compile(source: &str) -> Result<Program, zomp_front::Diag> {
    compile_inner(source, None)
}

/// [`compile`] with a compilation-unit name (normally the source path):
/// parallel regions are labelled `unit:line` of their pragma, so runtime
/// traces and profiles point back at the directive.
pub fn compile_named(source: &str, unit: &str) -> Result<Program, zomp_front::Diag> {
    compile_inner(source, Some(unit))
}

fn compile_inner(source: &str, unit: Option<&str>) -> Result<Program, zomp_front::Diag> {
    // The data-sharing lint runs on the original, still-pragma'd parse so
    // its diagnostics point at the user's directives, not the rewritten
    // driver loops.
    let diags = zomp_front::analyze(&zomp_front::parse(source)?, unit.unwrap_or("<input>"));
    let final_source = match unit {
        Some(u) => zomp_front::preprocess::preprocess_named(source, u)?,
        None => zomp_front::preprocess(source)?,
    };
    let ast = zomp_front::parse(&final_source)?;
    let mut functions = HashMap::new();
    let root = *ast.node(ast.root);
    for &decl in ast.range(&root) {
        let node = ast.node(decl);
        if node.tag == N::FnDecl {
            functions.insert(ast.token_text(node.main_token).to_string(), decl);
        }
    }
    let code = crate::compile::compile_image(&ast);
    Ok(Program {
        ast,
        functions,
        code,
        original_source: source.to_string(),
        final_source,
        diags,
    })
}

/// The virtual machine: a compiled program plus captured output.
pub struct Vm {
    pub program: Arc<Program>,
    /// Lines produced by `print(...)`, in order.
    pub output: Mutex<Vec<String>>,
    /// Echo `print` output to stdout as well.
    pub echo: bool,
    /// Execution engine for function bodies (bytecode by default).
    pub backend: Backend,
}

/// Lexical environment of one function activation.
struct Frame {
    scopes: Vec<HashMap<String, Slot>>,
}

impl Frame {
    fn new() -> Frame {
        Frame {
            scopes: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, v: Value) {
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), Arc::new(Mutex::new(v)));
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name).cloned())
    }
}

/// Statement outcome.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// A resolved assignment target.
enum Place {
    Slot(Slot),
    ElemF(Arc<ArrF>, i64),
    ElemI(Arc<ArrI>, i64),
}

impl Vm {
    /// Compile and wrap a program.
    pub fn new(source: &str) -> Result<Vm, zomp_front::Diag> {
        Ok(Vm {
            program: Arc::new(compile(source)?),
            output: Mutex::new(Vec::new()),
            echo: false,
            backend: Backend::default(),
        })
    }

    /// [`Vm::new`] with a compilation-unit name: region trace/profile
    /// labels become the pragma's `unit:line`.
    pub fn with_unit(source: &str, unit: &str) -> Result<Vm, zomp_front::Diag> {
        Ok(Vm {
            program: Arc::new(compile_named(source, unit)?),
            output: Mutex::new(Vec::new()),
            echo: false,
            backend: Backend::default(),
        })
    }

    /// [`Vm::new`] with an explicit execution backend.
    pub fn with_backend(source: &str, backend: Backend) -> Result<Vm, zomp_front::Diag> {
        Ok(Vm {
            backend,
            ..Vm::new(source)?
        })
    }

    /// Compile and run `main()`, returning the captured output lines.
    pub fn run(source: &str) -> Result<Vec<String>, VmError> {
        let vm = Vm::new(source).map_err(|e| VmError(e.render(source)))?;
        vm.call_function("main", Vec::new())?;
        Ok(vm.output.into_inner())
    }

    /// Call a function by name on the configured backend.
    pub fn call_function(&self, name: &str, args: Vec<Value>) -> VmResult<Value> {
        match self.backend {
            Backend::Bytecode => {
                let &fi = self
                    .program
                    .code
                    .by_name
                    .get(name)
                    .ok_or_else(|| VmError(format!("unknown function `{name}`")))?;
                self.run_bytecode(fi, args)
            }
            Backend::Ast => self.call_function_ast(name, args),
        }
    }

    /// Tree-walker entry: the original interpreter, kept as the oracle.
    fn call_function_ast(&self, name: &str, args: Vec<Value>) -> VmResult<Value> {
        let ast = &self.program.ast;
        let &decl = self
            .program
            .functions
            .get(name)
            .ok_or_else(|| VmError(format!("unknown function `{name}`")))?;
        let node = ast.node(decl);
        let nparams = node.rhs as usize;
        let params = ast.extra(node.lhs, node.lhs + nparams as u32).to_vec();
        let body = ast.extra_data[(node.lhs as usize) + nparams];
        if args.len() != nparams {
            return err(format!(
                "`{name}` expects {nparams} arguments, got {}",
                args.len()
            ));
        }
        let mut frame = Frame::new();
        for (param, arg) in params.iter().zip(args) {
            let pname = ast.token_text(ast.node(*param).main_token);
            frame.declare(pname, arg);
        }
        match self.exec_block(&mut frame, body)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Void),
        }
    }

    // -- statements ---------------------------------------------------------

    fn exec_block(&self, frame: &mut Frame, block: NodeId) -> VmResult<Flow> {
        let ast = &self.program.ast;
        let node = *ast.node(block);
        debug_assert_eq!(node.tag, N::Block);
        frame.push();
        let stmts = ast.range(&node).to_vec();
        let mut out = Flow::Normal;
        for stmt in stmts {
            match self.exec_stmt(frame, stmt)? {
                Flow::Normal => {}
                flow => {
                    out = flow;
                    break;
                }
            }
        }
        frame.pop();
        Ok(out)
    }

    fn exec_stmt(&self, frame: &mut Frame, id: NodeId) -> VmResult<Flow> {
        let ast = &self.program.ast;
        let node = *ast.node(id);
        match node.tag {
            N::VarDecl | N::ConstDecl => {
                let init = if node.rhs > 0 {
                    self.eval(frame, node.rhs - 1)?
                } else {
                    Value::Undefined
                };
                frame.declare(ast.token_text(node.main_token), init);
                Ok(Flow::Normal)
            }
            N::Assign => {
                let v = self.eval(frame, node.rhs)?;
                let place = self.eval_place(frame, node.lhs)?;
                self.store(place, v)?;
                Ok(Flow::Normal)
            }
            N::CompoundAssign => {
                let rhs = self.eval(frame, node.rhs)?;
                let op = ast.tokens[node.main_token as usize].tag;
                let place = self.eval_place(frame, node.lhs)?;
                let old = self.load(&place)?;
                let new = binop_arith(compound_op(op)?, &old, &rhs)?;
                self.store(place, new)?;
                Ok(Flow::Normal)
            }
            N::While => {
                let body = ast.extra_data[node.rhs as usize];
                let cont = ast.extra_data[node.rhs as usize + 1];
                loop {
                    if !self.eval(frame, node.lhs)?.truthy()? {
                        break;
                    }
                    match self.exec_stmt(frame, body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    if cont > 0 {
                        self.exec_stmt(frame, cont - 1)?;
                    }
                }
                Ok(Flow::Normal)
            }
            N::If => {
                let then = ast.extra_data[node.rhs as usize];
                let els = ast.extra_data[node.rhs as usize + 1];
                if self.eval(frame, node.lhs)?.truthy()? {
                    self.exec_stmt(frame, then)
                } else if els > 0 {
                    self.exec_stmt(frame, els - 1)
                } else {
                    Ok(Flow::Normal)
                }
            }
            N::Return => {
                let v = if node.lhs > 0 {
                    self.eval(frame, node.lhs - 1)?
                } else {
                    Value::Void
                };
                Ok(Flow::Return(v))
            }
            N::Break => Ok(Flow::Break),
            N::Continue => Ok(Flow::Continue),
            N::Discard | N::ExprStmt => {
                self.eval(frame, node.lhs)?;
                Ok(Flow::Normal)
            }
            N::Block => self.exec_block(frame, id),
            other => err(format!("node {other:?} is not a statement")),
        }
    }

    // -- expressions ----------------------------------------------------------

    fn eval(&self, frame: &mut Frame, id: NodeId) -> VmResult<Value> {
        let ast = &self.program.ast;
        let node = *ast.node(id);
        match node.tag {
            N::IntLit => ast
                .token_text(node.main_token)
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| VmError("integer literal out of range".into())),
            N::FloatLit => ast
                .token_text(node.main_token)
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| VmError("bad float literal".into())),
            N::BoolLit => Ok(Value::Bool(
                ast.tokens[node.main_token as usize].tag == T::KwTrue,
            )),
            N::StrLit => {
                let raw = ast.token_text(node.main_token);
                let inner = &raw[1..raw.len() - 1];
                Ok(Value::Str(Arc::from(
                    inner.replace("\\\"", "\"").replace("\\n", "\n"),
                )))
            }
            N::UndefinedLit => Ok(Value::Undefined),
            N::Ident => {
                let name = ast.token_text(node.main_token);
                if let Some(slot) = frame.lookup(name) {
                    let v = slot.lock().clone();
                    return Ok(v);
                }
                if self.program.functions.contains_key(name) {
                    return Ok(Value::Fn(Arc::from(name)));
                }
                err(format!("unknown variable `{name}`"))
            }
            N::BinOp => {
                let op = ast.tokens[node.main_token as usize].tag;
                // Short-circuit logical operators.
                if op == T::KwAnd {
                    return Ok(Value::Bool(
                        self.eval(frame, node.lhs)?.truthy()?
                            && self.eval(frame, node.rhs)?.truthy()?,
                    ));
                }
                if op == T::KwOr {
                    return Ok(Value::Bool(
                        self.eval(frame, node.lhs)?.truthy()?
                            || self.eval(frame, node.rhs)?.truthy()?,
                    ));
                }
                let a = self.eval(frame, node.lhs)?;
                let b = self.eval(frame, node.rhs)?;
                binop(op, &a, &b)
            }
            N::UnOp => {
                let op = ast.tokens[node.main_token as usize].tag;
                match op {
                    T::Amp => self.eval_addr(frame, node.lhs),
                    T::Minus => match self.eval(frame, node.lhs)? {
                        Value::Int(v) => Ok(Value::Int(-v)),
                        Value::Float(v) => Ok(Value::Float(-v)),
                        other => err(format!("cannot negate {}", other.type_name())),
                    },
                    T::Bang => Ok(Value::Bool(!self.eval(frame, node.lhs)?.truthy()?)),
                    other => err(format!("bad unary operator {other:?}")),
                }
            }
            N::Deref => match self.eval(frame, node.lhs)? {
                Value::Ptr(slot) => {
                    let v = slot.lock().clone();
                    Ok(v)
                }
                Value::ElemPtrF(a, i) => a.get(i).map(Value::Float),
                Value::ElemPtrI(a, i) => a.get(i).map(Value::Int),
                other => err(format!("cannot dereference {}", other.type_name())),
            },
            N::Index => {
                let base = self.eval(frame, node.lhs)?;
                let idx = self.eval(frame, node.rhs)?.as_int()?;
                match base {
                    Value::ArrF(a) => a.get(idx).map(Value::Float),
                    Value::ArrI(a) => a.get(idx).map(Value::Int),
                    other => err(format!("cannot index {}", other.type_name())),
                }
            }
            N::Member => {
                // Bare member reads are only meaningful as call paths; a
                // stray one is an error.
                err(format!(
                    "`{}` has no readable fields",
                    ast.node_text(node.lhs)
                ))
            }
            N::Call => self.eval_call(frame, &node),
            N::BuiltinCall => self.eval_builtin(frame, &node),
            other => err(format!("node {other:?} is not an expression")),
        }
    }

    fn eval_addr(&self, frame: &mut Frame, target: NodeId) -> VmResult<Value> {
        match self.eval_place(frame, target)? {
            Place::Slot(s) => Ok(Value::Ptr(s)),
            Place::ElemF(a, i) => Ok(Value::ElemPtrF(a, i)),
            Place::ElemI(a, i) => Ok(Value::ElemPtrI(a, i)),
        }
    }

    fn eval_place(&self, frame: &mut Frame, id: NodeId) -> VmResult<Place> {
        let ast = &self.program.ast;
        let node = *ast.node(id);
        match node.tag {
            N::Ident => {
                let name = ast.token_text(node.main_token);
                frame
                    .lookup(name)
                    .map(Place::Slot)
                    .ok_or_else(|| VmError(format!("unknown variable `{name}`")))
            }
            N::Index => {
                let base = self.eval(frame, node.lhs)?;
                let idx = self.eval(frame, node.rhs)?.as_int()?;
                match base {
                    Value::ArrF(a) => Ok(Place::ElemF(a, idx)),
                    Value::ArrI(a) => Ok(Place::ElemI(a, idx)),
                    other => err(format!("cannot index {}", other.type_name())),
                }
            }
            N::Deref => match self.eval(frame, node.lhs)? {
                Value::Ptr(slot) => Ok(Place::Slot(slot)),
                Value::ElemPtrF(a, i) => Ok(Place::ElemF(a, i)),
                Value::ElemPtrI(a, i) => Ok(Place::ElemI(a, i)),
                other => err(format!("cannot store through {}", other.type_name())),
            },
            other => err(format!("{other:?} is not assignable")),
        }
    }

    fn load(&self, place: &Place) -> VmResult<Value> {
        match place {
            Place::Slot(s) => Ok(s.lock().clone()),
            Place::ElemF(a, i) => a.get(*i).map(Value::Float),
            Place::ElemI(a, i) => a.get(*i).map(Value::Int),
        }
    }

    fn store(&self, place: Place, v: Value) -> VmResult<()> {
        match place {
            Place::Slot(s) => {
                *s.lock() = v;
                Ok(())
            }
            Place::ElemF(a, i) => a.set(i, v.as_float()?),
            Place::ElemI(a, i) => a.set(i, v.as_int()?),
        }
    }

    fn eval_call(&self, frame: &mut Frame, node: &Node) -> VmResult<Value> {
        let ast = &self.program.ast;
        // Resolve the callee as a dotted path of identifiers if possible.
        let path = callee_path(ast, node.lhs);
        let arg_ids = ast.call_args(node).to_vec();
        let mut args = Vec::with_capacity(arg_ids.len());
        for a in arg_ids {
            args.push(self.eval(frame, a)?);
        }
        match path.as_deref() {
            Some(["print"]) => {
                let line = args
                    .iter()
                    .map(|v| v.render())
                    .collect::<Vec<_>>()
                    .join(" ");
                if self.echo {
                    println!("{line}");
                }
                self.output.lock().push(line);
                Ok(Value::Void)
            }
            Some(["omp", rest @ ..]) if !rest.is_empty() => builtins::call(self, rest, args),
            Some([name]) if self.program.functions.contains_key(*name) => {
                self.call_function(name, args)
            }
            _ => {
                // Fall back: callee evaluates to a function value.
                let callee = self.eval(frame, node.lhs)?;
                match callee {
                    Value::Fn(name) => self.call_function(&name, args),
                    other => err(format!("{} is not callable", other.type_name())),
                }
            }
        }
    }

    fn eval_builtin(&self, frame: &mut Frame, node: &Node) -> VmResult<Value> {
        let ast = &self.program.ast;
        let name = ast.token_text(node.main_token).to_string();
        let arg_ids = ast.extra(node.lhs, node.rhs).to_vec();
        let mut args = Vec::with_capacity(arg_ids.len());
        for a in arg_ids {
            args.push(self.eval(frame, a)?);
        }
        builtins::math_builtin(&name, &args)
    }

    // -- bytecode executor --------------------------------------------------

    /// Execute one compiled function on a fresh register frame.
    ///
    /// Registers hold [`Value`]s directly — no per-local `Arc<Mutex<_>>`
    /// and no name lookups; only address-taken locals go through heap
    /// cells. The loop is a single dense `match` over [`Insn`].
    fn run_bytecode(&self, fi: usize, mut args: Vec<Value>) -> VmResult<Value> {
        let f = &self.program.code.funcs[fi];
        if args.len() != f.nparams {
            return err(format!(
                "`{}` expects {} arguments, got {}",
                f.name,
                f.nparams,
                args.len()
            ));
        }
        args.resize(f.nregs.max(f.nparams), Value::Undefined);
        let mut regs = args;
        let code = &f.code[..];
        let consts = &f.consts[..];
        let mut pc = 0usize;
        loop {
            let insn = code[pc];
            pc += 1;
            match insn {
                Insn::Const { dst, k } => regs[dst as usize] = consts[k as usize].clone(),
                Insn::Move { dst, src } => regs[dst as usize] = regs[src as usize].clone(),
                Insn::NewCell { dst, src } => {
                    let v = regs[src as usize].clone();
                    regs[dst as usize] = Value::Ptr(Arc::new(Mutex::new(v)));
                }
                Insn::CellGet { dst, cell } => match &regs[cell as usize] {
                    Value::Ptr(slot) => {
                        let v = slot.lock().clone();
                        regs[dst as usize] = v;
                    }
                    other => return err(format!("cannot dereference {}", other.type_name())),
                },
                Insn::CellSet { cell, src } => match &regs[cell as usize] {
                    Value::Ptr(slot) => {
                        let slot = slot.clone();
                        *slot.lock() = regs[src as usize].clone();
                    }
                    other => return err(format!("cannot store through {}", other.type_name())),
                },
                Insn::Deref { dst, ptr } => {
                    let v = match &regs[ptr as usize] {
                        Value::Ptr(slot) => slot.lock().clone(),
                        Value::ElemPtrF(a, i) => Value::Float(a.get(*i)?),
                        Value::ElemPtrI(a, i) => Value::Int(a.get(*i)?),
                        other => return err(format!("cannot dereference {}", other.type_name())),
                    };
                    regs[dst as usize] = v;
                }
                Insn::StorePtr { ptr, src } => match &regs[ptr as usize] {
                    Value::Ptr(slot) => {
                        let slot = slot.clone();
                        *slot.lock() = regs[src as usize].clone();
                    }
                    Value::ElemPtrF(a, i) => a.set(*i, regs[src as usize].as_float()?)?,
                    Value::ElemPtrI(a, i) => a.set(*i, regs[src as usize].as_int()?)?,
                    other => return err(format!("cannot store through {}", other.type_name())),
                },
                Insn::ElemAddr { dst, arr, idx } => {
                    let i = regs[idx as usize].as_int()?;
                    let v = match &regs[arr as usize] {
                        Value::ArrF(a) => Value::ElemPtrF(a.clone(), i),
                        Value::ArrI(a) => Value::ElemPtrI(a.clone(), i),
                        other => return err(format!("cannot index {}", other.type_name())),
                    };
                    regs[dst as usize] = v;
                }
                Insn::AddrDeref { dst, src } => {
                    let v = match &regs[src as usize] {
                        p @ (Value::Ptr(_) | Value::ElemPtrF(..) | Value::ElemPtrI(..)) => {
                            p.clone()
                        }
                        other => return err(format!("cannot store through {}", other.type_name())),
                    };
                    regs[dst as usize] = v;
                }
                Insn::Index { dst, arr, idx } => {
                    let i = regs[idx as usize].as_int()?;
                    let v = match &regs[arr as usize] {
                        Value::ArrF(a) => Value::Float(a.get(i)?),
                        Value::ArrI(a) => Value::Int(a.get(i)?),
                        other => return err(format!("cannot index {}", other.type_name())),
                    };
                    regs[dst as usize] = v;
                }
                Insn::IndexSet { arr, idx, src } => {
                    let i = regs[idx as usize].as_int()?;
                    match &regs[arr as usize] {
                        Value::ArrF(a) => a.set(i, regs[src as usize].as_float()?)?,
                        Value::ArrI(a) => a.set(i, regs[src as usize].as_int()?)?,
                        other => return err(format!("cannot index {}", other.type_name())),
                    }
                }
                Insn::Arith { op, dst, a, b } => {
                    let v = match (&regs[a as usize], &regs[b as usize]) {
                        (Value::Float(x), Value::Float(y)) => {
                            let (x, y) = (*x, *y);
                            Value::Float(match op {
                                ArithOp::Add => x + y,
                                ArithOp::Sub => x - y,
                                ArithOp::Mul => x * y,
                                ArithOp::Div => x / y,
                                ArithOp::Rem => x % y,
                            })
                        }
                        (Value::Int(x), Value::Int(y)) => {
                            let (x, y) = (*x, *y);
                            match op {
                                ArithOp::Add => Value::Int(x.wrapping_add(y)),
                                ArithOp::Sub => Value::Int(x.wrapping_sub(y)),
                                ArithOp::Mul => Value::Int(x.wrapping_mul(y)),
                                ArithOp::Div => {
                                    if y == 0 {
                                        return err("integer division by zero");
                                    }
                                    Value::Int(x / y)
                                }
                                ArithOp::Rem => {
                                    if y == 0 {
                                        return err("remainder by zero");
                                    }
                                    Value::Int(x % y)
                                }
                            }
                        }
                        (x, y) => binop_arith(arith_token(op), x, y)?,
                    };
                    regs[dst as usize] = v;
                }
                Insn::Cmp { op, dst, a, b } => {
                    let v = match (&regs[a as usize], &regs[b as usize]) {
                        (Value::Int(x), Value::Int(y)) => Value::Bool(cmp_int(op, *x, *y)),
                        (Value::Float(x), Value::Float(y)) => Value::Bool(cmp_float(op, *x, *y)),
                        (x, y) => binop(cmp_token(op), x, y)?,
                    };
                    regs[dst as usize] = v;
                }
                Insn::Neg { dst, src } => {
                    let v = match &regs[src as usize] {
                        Value::Int(v) => Value::Int(-v),
                        Value::Float(v) => Value::Float(-v),
                        other => return err(format!("cannot negate {}", other.type_name())),
                    };
                    regs[dst as usize] = v;
                }
                Insn::Not { dst, src } => {
                    let v = Value::Bool(!regs[src as usize].truthy()?);
                    regs[dst as usize] = v;
                }
                Insn::Truthy { dst, src } => {
                    let v = Value::Bool(regs[src as usize].truthy()?);
                    regs[dst as usize] = v;
                }
                Insn::Jump { to } => pc = to as usize,
                Insn::JumpIfFalse { cond, to } => {
                    if !regs[cond as usize].truthy()? {
                        pc = to as usize;
                    }
                }
                Insn::JumpIfTrue { cond, to } => {
                    if regs[cond as usize].truthy()? {
                        pc = to as usize;
                    }
                }
                Insn::CmpJumpFalse { op, a, b, to } => {
                    let taken = match (&regs[a as usize], &regs[b as usize]) {
                        (Value::Int(x), Value::Int(y)) => cmp_int(op, *x, *y),
                        (Value::Float(x), Value::Float(y)) => cmp_float(op, *x, *y),
                        (x, y) => binop(cmp_token(op), x, y)?.truthy()?,
                    };
                    if !taken {
                        pc = to as usize;
                    }
                }
                Insn::IncCmpJump {
                    var,
                    step,
                    limit,
                    op,
                    to,
                } => match (&regs[var as usize], &regs[limit as usize]) {
                    (Value::Int(v), Value::Int(l)) => {
                        let next = v.wrapping_add(step as i64);
                        let l = *l;
                        regs[var as usize] = Value::Int(next);
                        if cmp_int(op, next, l) {
                            pc = to as usize;
                        }
                    }
                    _ => {
                        // Slow path mirrors the walker: `v ±= k` through
                        // `binop_arith`, then the condition through `binop`.
                        let (tok, k) = if step >= 0 {
                            (T::Plus, step as i64)
                        } else {
                            (T::Minus, -(step as i64))
                        };
                        let next = binop_arith(tok, &regs[var as usize], &Value::Int(k))?;
                        regs[var as usize] = next;
                        let taken =
                            binop(cmp_token(op), &regs[var as usize], &regs[limit as usize])?
                                .truthy()?;
                        if taken {
                            pc = to as usize;
                        }
                    }
                },
                Insn::Call { dst, func, base, n } => {
                    let call_args = take_args(&mut regs, base, n);
                    let v = self.run_bytecode(func as usize, call_args)?;
                    regs[dst as usize] = v;
                }
                Insn::CallValue {
                    dst,
                    callee,
                    base,
                    n,
                } => {
                    let v = match &regs[callee as usize] {
                        Value::Fn(name) => {
                            let name = name.clone();
                            let call_args = take_args(&mut regs, base, n);
                            match self.program.code.by_name.get(name.as_ref()) {
                                Some(&fi) => self.run_bytecode(fi, call_args)?,
                                None => return err(format!("unknown function `{name}`")),
                            }
                        }
                        other => return err(format!("{} is not callable", other.type_name())),
                    };
                    regs[dst as usize] = v;
                }
                Insn::OmpCall { dst, sym, base, n } => {
                    let call_args = take_args(&mut regs, base, n);
                    let parts: Vec<&str> = f.omp_syms[sym as usize]
                        .iter()
                        .map(String::as_str)
                        .collect();
                    let v = builtins::call(self, &parts, call_args)?;
                    regs[dst as usize] = v;
                }
                Insn::Builtin {
                    dst,
                    op,
                    name_k,
                    base,
                    n,
                } => {
                    let v = {
                        let bargs = &regs[base as usize..(base + n) as usize];
                        match (op, bargs) {
                            (BuiltinOp::IntToFloat, [Value::Int(v)]) => Value::Float(*v as f64),
                            (BuiltinOp::FloatToInt, [Value::Float(v)]) => Value::Int(*v as i64),
                            (BuiltinOp::Sqrt, [Value::Float(v)]) => Value::Float(v.sqrt()),
                            (BuiltinOp::Log, [Value::Float(v)]) => Value::Float(v.ln()),
                            (BuiltinOp::Exp, [Value::Float(v)]) => Value::Float(v.exp()),
                            (BuiltinOp::Sin, [Value::Float(v)]) => Value::Float(v.sin()),
                            (BuiltinOp::Cos, [Value::Float(v)]) => Value::Float(v.cos()),
                            (BuiltinOp::Pow, [Value::Float(a), Value::Float(b)]) => {
                                Value::Float(a.powf(*b))
                            }
                            (BuiltinOp::Abs, [Value::Float(v)]) => Value::Float(v.abs()),
                            (BuiltinOp::Abs, [Value::Int(v)]) => Value::Int(v.abs()),
                            (BuiltinOp::Max, [Value::Float(a), Value::Float(b)]) => {
                                Value::Float(a.max(*b))
                            }
                            (BuiltinOp::Max, [Value::Int(a), Value::Int(b)]) => {
                                Value::Int(*a.max(b))
                            }
                            (BuiltinOp::Min, [Value::Float(a), Value::Float(b)]) => {
                                Value::Float(a.min(*b))
                            }
                            (BuiltinOp::Min, [Value::Int(a), Value::Int(b)]) => {
                                Value::Int(*a.min(b))
                            }
                            _ => {
                                let name = match &consts[name_k as usize] {
                                    Value::Str(s) => s.clone(),
                                    _ => unreachable!("builtin name constant is not a string"),
                                };
                                builtins::math_builtin(&name, bargs)?
                            }
                        }
                    };
                    regs[dst as usize] = v;
                }
                Insn::Print { base, n } => {
                    let line = regs[base as usize..(base + n) as usize]
                        .iter()
                        .map(|v| v.render())
                        .collect::<Vec<_>>()
                        .join(" ");
                    if self.echo {
                        println!("{line}");
                    }
                    self.output.lock().push(line);
                }
                Insn::Trap { msg } => match &consts[msg as usize] {
                    Value::Str(s) => return Err(VmError(s.to_string())),
                    _ => unreachable!("trap message constant is not a string"),
                },
                Insn::Ret { src } => return Ok(regs[src as usize].clone()),
                Insn::RetVoid => return Ok(Value::Void),
            }
        }
    }
}

/// Move a contiguous argument block out of the caller's registers. Argument
/// slots are always freshly-written temporaries, so stealing them (instead
/// of cloning) is safe and avoids `Arc` traffic on hot call paths.
fn take_args(regs: &mut [Value], base: u16, n: u16) -> Vec<Value> {
    regs[base as usize..(base + n) as usize]
        .iter_mut()
        .map(|slot| std::mem::replace(slot, Value::Undefined))
        .collect()
}

fn cmp_int(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

/// Float comparison with the walker's NaN behaviour: ordering operators on
/// NaN are false (`partial_cmp` → `None`), `!=` on NaN is true.
fn cmp_float(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

fn arith_token(op: ArithOp) -> T {
    match op {
        ArithOp::Add => T::Plus,
        ArithOp::Sub => T::Minus,
        ArithOp::Mul => T::Star,
        ArithOp::Div => T::Slash,
        ArithOp::Rem => T::Percent,
    }
}

fn cmp_token(op: CmpOp) -> T {
    match op {
        CmpOp::Lt => T::Lt,
        CmpOp::Le => T::LtEq,
        CmpOp::Gt => T::Gt,
        CmpOp::Ge => T::GtEq,
        CmpOp::Eq => T::EqEq,
        CmpOp::Ne => T::BangEq,
    }
}

/// Extract a dotted identifier path from a callee expression
/// (`omp.internal.fork_call` → `["omp", "internal", "fork_call"]`).
pub(crate) fn callee_path(ast: &Ast, mut id: NodeId) -> Option<Vec<&str>> {
    let mut rev = Vec::new();
    loop {
        let node = ast.node(id);
        match node.tag {
            N::Member => {
                rev.push(ast.token_text(node.main_token));
                id = node.lhs;
            }
            N::Ident => {
                rev.push(ast.token_text(node.main_token));
                rev.reverse();
                return Some(rev);
            }
            _ => return None,
        }
    }
}

fn compound_op(op: T) -> VmResult<T> {
    Ok(match op {
        T::PlusEq => T::Plus,
        T::MinusEq => T::Minus,
        T::StarEq => T::Star,
        T::SlashEq => T::Slash,
        other => return err(format!("bad compound operator {other:?}")),
    })
}

pub(crate) fn binop_arith(op: T, a: &Value, b: &Value) -> VmResult<Value> {
    match (a, b) {
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(match op {
            T::Plus => a.wrapping_add(*b),
            T::Minus => a.wrapping_sub(*b),
            T::Star => a.wrapping_mul(*b),
            T::Slash => {
                if *b == 0 {
                    return err("integer division by zero");
                }
                a / b
            }
            T::Percent => {
                if *b == 0 {
                    return err("remainder by zero");
                }
                a % b
            }
            other => return err(format!("bad arithmetic operator {other:?}")),
        })),
        (Value::Float(a), Value::Float(b)) => Ok(Value::Float(match op {
            T::Plus => a + b,
            T::Minus => a - b,
            T::Star => a * b,
            T::Slash => a / b,
            T::Percent => a % b,
            other => return err(format!("bad arithmetic operator {other:?}")),
        })),
        _ => err(format!(
            "type mismatch: {} {op:?} {} (use @intToFloat/@floatToInt)",
            a.type_name(),
            b.type_name()
        )),
    }
}

pub(crate) fn binop(op: T, a: &Value, b: &Value) -> VmResult<Value> {
    match op {
        T::Plus | T::Minus | T::Star | T::Slash | T::Percent => binop_arith(op, a, b),
        T::EqEq | T::BangEq => {
            let eq = match (a, b) {
                (Value::Int(x), Value::Int(y)) => x == y,
                (Value::Float(x), Value::Float(y)) => x == y,
                (Value::Bool(x), Value::Bool(y)) => x == y,
                (Value::Str(x), Value::Str(y)) => x == y,
                _ => {
                    return err(format!(
                        "cannot compare {} and {}",
                        a.type_name(),
                        b.type_name()
                    ))
                }
            };
            Ok(Value::Bool(if op == T::EqEq { eq } else { !eq }))
        }
        T::Lt | T::LtEq | T::Gt | T::GtEq => {
            let ord = match (a, b) {
                (Value::Int(x), Value::Int(y)) => x.partial_cmp(y),
                (Value::Float(x), Value::Float(y)) => x.partial_cmp(y),
                _ => {
                    return err(format!(
                        "cannot order {} and {}",
                        a.type_name(),
                        b.type_name()
                    ))
                }
            };
            let Some(ord) = ord else {
                return Ok(Value::Bool(false)); // NaN comparisons
            };
            Ok(Value::Bool(match op {
                T::Lt => ord.is_lt(),
                T::LtEq => ord.is_le(),
                T::Gt => ord.is_gt(),
                _ => ord.is_ge(),
            }))
        }
        other => err(format!("bad binary operator {other:?}")),
    }
}
