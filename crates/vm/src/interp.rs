//! Program loading and the two execution backends.
//!
//! Both backends execute the *preprocessed* (pragma-free) program. All
//! parallelism enters through `omp.internal.fork_call`, which runs the
//! outlined function on a real `zomp` team — so a pragma-annotated Zag
//! program ends up executing on actual threads, completing the paper's
//! pipeline end to end.
//!
//! The default backend is the register-bytecode VM ([`Backend::Bytecode`]):
//! functions are lowered once by [`crate::compile`] and executed by
//! [`Vm::run_bytecode`] with a dense `match` dispatch over flat
//! instructions and unboxed register frames. The original tree-walker is
//! kept behind [`Backend::Ast`] as the differential-testing oracle; the
//! two are required to produce byte-identical output (including error
//! messages), which `crates/vm/tests/differential.rs` enforces.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use zomp_front::ast::{Ast, Node, NodeId, Tag as N};
use zomp_front::token::Tag as T;

use crate::builtins;
use crate::bytecode::{ArithOp, BuiltinOp, CmpOp, Image, Insn, Reg};
use crate::optimize::OptLevel;
use crate::value::{err, ArrF, ArrI, Slot, Value, VmError, VmResult};

/// Which execution engine runs function bodies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Flat register-bytecode VM (default).
    #[default]
    Bytecode,
    /// Original tree-walking interpreter, kept as the semantic oracle.
    Ast,
    /// Bytecode VM with the native bulk-kernel tier: shorthand that
    /// forces the image to `--opt=3` so recognised hot loops run as
    /// precompiled slice kernels ([`crate::kernels`]).
    Native,
}

impl Backend {
    /// Parse a CLI/ENV spelling (`ast` | `bytecode` | `native`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "ast" => Some(Backend::Ast),
            "bytecode" => Some(Backend::Bytecode),
            "native" => Some(Backend::Native),
            _ => None,
        }
    }
}

/// Map the core crate's backend selector (plain CLI/request data) onto
/// the VM's engine enum.
impl From<zomp::config::BackendSel> for Backend {
    fn from(sel: zomp::config::BackendSel) -> Backend {
        match sel {
            zomp::config::BackendSel::Ast => Backend::Ast,
            zomp::config::BackendSel::Bytecode => Backend::Bytecode,
            zomp::config::BackendSel::Native => Backend::Native,
        }
    }
}

/// A compiled (preprocessed + parsed + lowered) program.
pub struct Program {
    pub ast: Ast,
    pub functions: HashMap<String, NodeId>,
    /// The bytecode image: every function lowered to a flat instruction
    /// stream with resolved register slots.
    pub code: Image,
    /// The source before preprocessing, kept for display/teaching.
    pub original_source: String,
    /// The pragma-free source actually executed.
    pub final_source: String,
    /// Data-sharing lint findings from `zomp_front::analyze`, produced
    /// against `original_source`. Warnings only — the embedder decides
    /// whether to surface or deny them (`zag` prints them by default).
    pub diags: Vec<zomp_front::Diag>,
    /// Optimization level the image was compiled at. Also gates the
    /// runtime tiers: the call-frame arena needs `>= O1`, quickening `O2`.
    pub opt: OptLevel,
}

/// Compile Zag source: preprocess pragmas away, parse, index functions.
pub fn compile(source: &str) -> Result<Program, zomp_front::Diag> {
    compile_inner(source, None, OptLevel::default())
}

/// [`compile`] with a compilation-unit name (normally the source path):
/// parallel regions are labelled `unit:line` of their pragma, so runtime
/// traces and profiles point back at the directive.
pub fn compile_named(source: &str, unit: &str) -> Result<Program, zomp_front::Diag> {
    compile_inner(source, Some(unit), OptLevel::default())
}

/// [`compile`] at an explicit optimization level (`zag --opt=N`).
pub fn compile_opt(
    source: &str,
    unit: Option<&str>,
    opt: OptLevel,
) -> Result<Program, zomp_front::Diag> {
    compile_inner(source, unit, opt)
}

fn compile_inner(
    source: &str,
    unit: Option<&str>,
    opt: OptLevel,
) -> Result<Program, zomp_front::Diag> {
    // The data-sharing lint runs on the original, still-pragma'd parse so
    // its diagnostics point at the user's directives, not the rewritten
    // driver loops.
    let diags = zomp_front::analyze(&zomp_front::parse(source)?, unit.unwrap_or("<input>"));
    let final_source = match unit {
        Some(u) => zomp_front::preprocess::preprocess_named(source, u)?,
        None => zomp_front::preprocess(source)?,
    };
    let ast = zomp_front::parse(&final_source)?;
    let mut functions = HashMap::new();
    let root = *ast.node(ast.root);
    for &decl in ast.range(&root) {
        let node = ast.node(decl);
        if node.tag == N::FnDecl {
            functions.insert(ast.token_text(node.main_token).to_string(), decl);
        }
    }
    let code = crate::compile::compile_image_opt(&ast, opt);
    Ok(Program {
        ast,
        functions,
        code,
        original_source: source.to_string(),
        final_source,
        diags,
        opt,
    })
}

/// The virtual machine: a compiled program plus captured output.
pub struct Vm {
    pub program: Arc<Program>,
    /// Lines produced by `print(...)`, in order.
    pub output: Mutex<Vec<String>>,
    /// Echo `print` output to stdout as well.
    pub echo: bool,
    /// Execution engine for function bodies (bytecode by default).
    pub backend: Backend,
    /// The parallel runtime instance this VM executes against. Every
    /// `omp.*` builtin — fork, ICV queries, critical sections — resolves
    /// through this handle, so two `Vm`s with distinct runtimes share
    /// nothing but the worker pool. Defaults to the process-wide runtime.
    pub runtime: Arc<zomp::Runtime>,
}

/// Lexical environment of one function activation.
struct Frame {
    scopes: Vec<HashMap<String, Slot>>,
}

impl Frame {
    fn new() -> Frame {
        Frame {
            scopes: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, v: Value) {
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), Arc::new(Mutex::new(v)));
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name).cloned())
    }
}

/// Statement outcome.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// A resolved assignment target.
enum Place {
    Slot(Slot),
    ElemF(Arc<ArrF>, i64),
    ElemI(Arc<ArrI>, i64),
}

impl Vm {
    /// Compile and wrap a program.
    pub fn new(source: &str) -> Result<Vm, zomp_front::Diag> {
        Ok(Vm::from_program(
            Arc::new(compile(source)?),
            Backend::default(),
            Arc::clone(zomp::Runtime::global()),
        ))
    }

    /// [`Vm::new`] with a compilation-unit name: region trace/profile
    /// labels become the pragma's `unit:line`.
    pub fn with_unit(source: &str, unit: &str) -> Result<Vm, zomp_front::Diag> {
        Ok(Vm::from_program(
            Arc::new(compile_named(source, unit)?),
            Backend::default(),
            Arc::clone(zomp::Runtime::global()),
        ))
    }

    /// [`Vm::new`] with an explicit execution backend.
    pub fn with_backend(source: &str, backend: Backend) -> Result<Vm, zomp_front::Diag> {
        Ok(Vm {
            backend,
            ..Vm::new(source)?
        })
    }

    /// Fully-explicit constructor: compilation unit (for pragma `unit:line`
    /// labels), backend, and optimization level.
    pub fn build(
        source: &str,
        unit: Option<&str>,
        backend: Backend,
        opt: OptLevel,
    ) -> Result<Vm, zomp_front::Diag> {
        // The native backend is the bulk-kernel tier by definition.
        let opt = if backend == Backend::Native {
            OptLevel::O3
        } else {
            opt
        };
        Ok(Vm::from_program(
            Arc::new(compile_opt(source, unit, opt)?),
            backend,
            Arc::clone(zomp::Runtime::global()),
        ))
    }

    /// Wrap an already-compiled program. This is the constructor the `zagd`
    /// service uses: the `Arc<Program>` comes from its compiled-program
    /// cache (compile once, run many) and `runtime` is the per-request
    /// instance, so concurrent executions of the same cached program see
    /// independent ICVs, critical sections, and threadprivate storage.
    pub fn from_program(
        program: Arc<Program>,
        backend: Backend,
        runtime: Arc<zomp::Runtime>,
    ) -> Vm {
        Vm {
            program,
            output: Mutex::new(Vec::new()),
            echo: false,
            backend,
            runtime,
        }
    }

    /// Compile and run `main()`, returning the captured output lines.
    pub fn run(source: &str) -> Result<Vec<String>, VmError> {
        let vm = Vm::new(source).map_err(|e| VmError(e.render(source)))?;
        vm.call_function("main", Vec::new())?;
        Ok(vm.output.into_inner())
    }

    /// Call a function by name on the configured backend. The VM's runtime
    /// is entered for the dynamic extent of the call, so `omp.*` facade
    /// lookups made by program code resolve against [`Vm::runtime`] rather
    /// than whatever instance the calling thread happened to have current.
    pub fn call_function(&self, name: &str, args: Vec<Value>) -> VmResult<Value> {
        let _rt = self.runtime.enter();
        match self.backend {
            Backend::Bytecode | Backend::Native => {
                let &fi = self
                    .program
                    .code
                    .by_name
                    .get(name)
                    .ok_or_else(|| VmError(format!("unknown function `{name}`")))?;
                self.run_bytecode(fi, args)
            }
            Backend::Ast => self.call_function_ast(name, args),
        }
    }

    /// Tree-walker entry: the original interpreter, kept as the oracle.
    fn call_function_ast(&self, name: &str, args: Vec<Value>) -> VmResult<Value> {
        let ast = &self.program.ast;
        let &decl = self
            .program
            .functions
            .get(name)
            .ok_or_else(|| VmError(format!("unknown function `{name}`")))?;
        let node = ast.node(decl);
        let nparams = node.rhs as usize;
        let params = ast.extra(node.lhs, node.lhs + nparams as u32).to_vec();
        let body = ast.extra_data[(node.lhs as usize) + nparams];
        if args.len() != nparams {
            return err(format!(
                "`{name}` expects {nparams} arguments, got {}",
                args.len()
            ));
        }
        let mut frame = Frame::new();
        for (param, arg) in params.iter().zip(args) {
            let pname = ast.token_text(ast.node(*param).main_token);
            frame.declare(pname, arg);
        }
        match self.exec_block(&mut frame, body)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Void),
        }
    }

    // -- statements ---------------------------------------------------------

    fn exec_block(&self, frame: &mut Frame, block: NodeId) -> VmResult<Flow> {
        let ast = &self.program.ast;
        let node = *ast.node(block);
        debug_assert_eq!(node.tag, N::Block);
        frame.push();
        let stmts = ast.range(&node).to_vec();
        let mut out = Flow::Normal;
        for stmt in stmts {
            match self.exec_stmt(frame, stmt)? {
                Flow::Normal => {}
                flow => {
                    out = flow;
                    break;
                }
            }
        }
        frame.pop();
        Ok(out)
    }

    fn exec_stmt(&self, frame: &mut Frame, id: NodeId) -> VmResult<Flow> {
        let ast = &self.program.ast;
        let node = *ast.node(id);
        match node.tag {
            N::VarDecl | N::ConstDecl => {
                let init = if node.rhs > 0 {
                    self.eval(frame, node.rhs - 1)?
                } else {
                    Value::Undefined
                };
                frame.declare(ast.token_text(node.main_token), init);
                Ok(Flow::Normal)
            }
            N::Assign => {
                let v = self.eval(frame, node.rhs)?;
                let place = self.eval_place(frame, node.lhs)?;
                self.store(place, v)?;
                Ok(Flow::Normal)
            }
            N::CompoundAssign => {
                let rhs = self.eval(frame, node.rhs)?;
                let op = ast.tokens[node.main_token as usize].tag;
                let place = self.eval_place(frame, node.lhs)?;
                let old = self.load(&place)?;
                let new = binop_arith(compound_op(op)?, &old, &rhs)?;
                self.store(place, new)?;
                Ok(Flow::Normal)
            }
            N::While => {
                let body = ast.extra_data[node.rhs as usize];
                let cont = ast.extra_data[node.rhs as usize + 1];
                loop {
                    if !self.eval(frame, node.lhs)?.truthy()? {
                        break;
                    }
                    match self.exec_stmt(frame, body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    if cont > 0 {
                        self.exec_stmt(frame, cont - 1)?;
                    }
                }
                Ok(Flow::Normal)
            }
            N::If => {
                let then = ast.extra_data[node.rhs as usize];
                let els = ast.extra_data[node.rhs as usize + 1];
                if self.eval(frame, node.lhs)?.truthy()? {
                    self.exec_stmt(frame, then)
                } else if els > 0 {
                    self.exec_stmt(frame, els - 1)
                } else {
                    Ok(Flow::Normal)
                }
            }
            N::Return => {
                let v = if node.lhs > 0 {
                    self.eval(frame, node.lhs - 1)?
                } else {
                    Value::Void
                };
                Ok(Flow::Return(v))
            }
            N::Break => Ok(Flow::Break),
            N::Continue => Ok(Flow::Continue),
            N::Discard | N::ExprStmt => {
                self.eval(frame, node.lhs)?;
                Ok(Flow::Normal)
            }
            N::Block => self.exec_block(frame, id),
            other => err(format!("node {other:?} is not a statement")),
        }
    }

    // -- expressions ----------------------------------------------------------

    fn eval(&self, frame: &mut Frame, id: NodeId) -> VmResult<Value> {
        let ast = &self.program.ast;
        let node = *ast.node(id);
        match node.tag {
            N::IntLit => ast
                .token_text(node.main_token)
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| VmError("integer literal out of range".into())),
            N::FloatLit => ast
                .token_text(node.main_token)
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| VmError("bad float literal".into())),
            N::BoolLit => Ok(Value::Bool(
                ast.tokens[node.main_token as usize].tag == T::KwTrue,
            )),
            N::StrLit => {
                let raw = ast.token_text(node.main_token);
                let inner = &raw[1..raw.len() - 1];
                Ok(Value::Str(Arc::from(
                    inner.replace("\\\"", "\"").replace("\\n", "\n"),
                )))
            }
            N::UndefinedLit => Ok(Value::Undefined),
            N::Ident => {
                let name = ast.token_text(node.main_token);
                if let Some(slot) = frame.lookup(name) {
                    let v = slot.lock().clone();
                    return Ok(v);
                }
                if self.program.functions.contains_key(name) {
                    return Ok(Value::Fn(Arc::from(name)));
                }
                err(format!("unknown variable `{name}`"))
            }
            N::BinOp => {
                let op = ast.tokens[node.main_token as usize].tag;
                // Short-circuit logical operators.
                if op == T::KwAnd {
                    return Ok(Value::Bool(
                        self.eval(frame, node.lhs)?.truthy()?
                            && self.eval(frame, node.rhs)?.truthy()?,
                    ));
                }
                if op == T::KwOr {
                    return Ok(Value::Bool(
                        self.eval(frame, node.lhs)?.truthy()?
                            || self.eval(frame, node.rhs)?.truthy()?,
                    ));
                }
                let a = self.eval(frame, node.lhs)?;
                let b = self.eval(frame, node.rhs)?;
                binop(op, &a, &b)
            }
            N::UnOp => {
                let op = ast.tokens[node.main_token as usize].tag;
                match op {
                    T::Amp => self.eval_addr(frame, node.lhs),
                    T::Minus => match self.eval(frame, node.lhs)? {
                        Value::Int(v) => Ok(Value::Int(-v)),
                        Value::Float(v) => Ok(Value::Float(-v)),
                        other => err(format!("cannot negate {}", other.type_name())),
                    },
                    T::Bang => Ok(Value::Bool(!self.eval(frame, node.lhs)?.truthy()?)),
                    other => err(format!("bad unary operator {other:?}")),
                }
            }
            N::Deref => match self.eval(frame, node.lhs)? {
                Value::Ptr(slot) => {
                    let v = slot.lock().clone();
                    Ok(v)
                }
                Value::ElemPtrF(a, i) => a.get(i).map(Value::Float),
                Value::ElemPtrI(a, i) => a.get(i).map(Value::Int),
                other => err(format!("cannot dereference {}", other.type_name())),
            },
            N::Index => {
                let base = self.eval(frame, node.lhs)?;
                let idx = self.eval(frame, node.rhs)?.as_int()?;
                match base {
                    Value::ArrF(a) => a.get(idx).map(Value::Float),
                    Value::ArrI(a) => a.get(idx).map(Value::Int),
                    other => err(format!("cannot index {}", other.type_name())),
                }
            }
            N::Member => {
                // Bare member reads are only meaningful as call paths; a
                // stray one is an error.
                err(format!(
                    "`{}` has no readable fields",
                    ast.node_text(node.lhs)
                ))
            }
            N::Call => self.eval_call(frame, &node),
            N::BuiltinCall => self.eval_builtin(frame, &node),
            other => err(format!("node {other:?} is not an expression")),
        }
    }

    fn eval_addr(&self, frame: &mut Frame, target: NodeId) -> VmResult<Value> {
        match self.eval_place(frame, target)? {
            Place::Slot(s) => Ok(Value::Ptr(s)),
            Place::ElemF(a, i) => Ok(Value::ElemPtrF(a, i)),
            Place::ElemI(a, i) => Ok(Value::ElemPtrI(a, i)),
        }
    }

    fn eval_place(&self, frame: &mut Frame, id: NodeId) -> VmResult<Place> {
        let ast = &self.program.ast;
        let node = *ast.node(id);
        match node.tag {
            N::Ident => {
                let name = ast.token_text(node.main_token);
                frame
                    .lookup(name)
                    .map(Place::Slot)
                    .ok_or_else(|| VmError(format!("unknown variable `{name}`")))
            }
            N::Index => {
                let base = self.eval(frame, node.lhs)?;
                let idx = self.eval(frame, node.rhs)?.as_int()?;
                match base {
                    Value::ArrF(a) => Ok(Place::ElemF(a, idx)),
                    Value::ArrI(a) => Ok(Place::ElemI(a, idx)),
                    other => err(format!("cannot index {}", other.type_name())),
                }
            }
            N::Deref => match self.eval(frame, node.lhs)? {
                Value::Ptr(slot) => Ok(Place::Slot(slot)),
                Value::ElemPtrF(a, i) => Ok(Place::ElemF(a, i)),
                Value::ElemPtrI(a, i) => Ok(Place::ElemI(a, i)),
                other => err(format!("cannot store through {}", other.type_name())),
            },
            other => err(format!("{other:?} is not assignable")),
        }
    }

    fn load(&self, place: &Place) -> VmResult<Value> {
        match place {
            Place::Slot(s) => Ok(s.lock().clone()),
            Place::ElemF(a, i) => a.get(*i).map(Value::Float),
            Place::ElemI(a, i) => a.get(*i).map(Value::Int),
        }
    }

    fn store(&self, place: Place, v: Value) -> VmResult<()> {
        match place {
            Place::Slot(s) => {
                *s.lock() = v;
                Ok(())
            }
            Place::ElemF(a, i) => a.set(i, v.as_float()?),
            Place::ElemI(a, i) => a.set(i, v.as_int()?),
        }
    }

    fn eval_call(&self, frame: &mut Frame, node: &Node) -> VmResult<Value> {
        let ast = &self.program.ast;
        // Resolve the callee as a dotted path of identifiers if possible.
        let path = callee_path(ast, node.lhs);
        let arg_ids = ast.call_args(node).to_vec();
        let mut args = Vec::with_capacity(arg_ids.len());
        for a in arg_ids {
            args.push(self.eval(frame, a)?);
        }
        match path.as_deref() {
            Some(["print"]) => {
                let line = args
                    .iter()
                    .map(|v| v.render())
                    .collect::<Vec<_>>()
                    .join(" ");
                if self.echo {
                    println!("{line}");
                }
                self.output.lock().push(line);
                Ok(Value::Void)
            }
            Some(["omp", rest @ ..]) if !rest.is_empty() => builtins::call(self, rest, args),
            Some([name]) if self.program.functions.contains_key(*name) => {
                self.call_function(name, args)
            }
            _ => {
                // Fall back: callee evaluates to a function value.
                let callee = self.eval(frame, node.lhs)?;
                match callee {
                    Value::Fn(name) => self.call_function(&name, args),
                    other => err(format!("{} is not callable", other.type_name())),
                }
            }
        }
    }

    fn eval_builtin(&self, frame: &mut Frame, node: &Node) -> VmResult<Value> {
        let ast = &self.program.ast;
        let name = ast.token_text(node.main_token).to_string();
        let arg_ids = ast.extra(node.lhs, node.rhs).to_vec();
        let mut args = Vec::with_capacity(arg_ids.len());
        for a in arg_ids {
            args.push(self.eval(frame, a)?);
        }
        builtins::math_builtin(&name, &args)
    }

    // -- bytecode executor --------------------------------------------------

    /// Bytecode entry point for external callers (API calls, `fork_call`
    /// team workers): arguments arrive as a `Vec`, the frame comes from
    /// the per-thread arena at `--opt>=1`.
    fn run_bytecode(&self, fi: usize, mut args: Vec<Value>) -> VmResult<Value> {
        let f = &self.program.code.funcs[fi];
        if args.len() != f.nparams {
            return err(format!(
                "`{}` expects {} arguments, got {}",
                f.name,
                f.nparams,
                args.len()
            ));
        }
        let want = f.nregs.max(f.nparams);
        if self.program.opt >= OptLevel::O1 {
            let mut regs = acquire_frame(want);
            for (slot, arg) in regs.iter_mut().zip(args) {
                *slot = arg;
            }
            let r = self.exec_frame(fi, &mut regs);
            release_frame(regs);
            r
        } else {
            args.resize(want, Value::Undefined);
            self.exec_frame(fi, &mut args)
        }
    }

    /// Internal `Call`/`CallValue` path: arity-check, then move the
    /// argument block straight from the caller's registers into a pooled
    /// frame — no `Vec` allocation, no `Arc` traffic.
    fn call_fn(&self, fi: usize, regs: &mut [Value], base: Reg, n: u16) -> VmResult<Value> {
        if self.program.opt >= OptLevel::O1 {
            let f = &self.program.code.funcs[fi];
            if n as usize != f.nparams {
                return err(format!(
                    "`{}` expects {} arguments, got {n}",
                    f.name, f.nparams
                ));
            }
            let mut frame = acquire_frame(f.nregs.max(f.nparams));
            for i in 0..n as usize {
                frame[i] = std::mem::replace(&mut regs[base as usize + i], Value::Undefined);
            }
            let r = self.exec_frame(fi, &mut frame);
            release_frame(frame);
            r
        } else {
            let call_args = take_args(regs, base, n);
            self.run_bytecode(fi, call_args)
        }
    }

    /// Run one activation. At `--opt>=2` the function executes from the
    /// calling thread's quickening cache (a `Cell<Insn>` copy of the
    /// verified stream that type-specializes itself in place); below that,
    /// straight from the shared image. Statically specialized opcodes and
    /// `BulkLoop` deopts rely on the quickening cache to rewrite
    /// themselves back, so `--opt>=2` streams must never run on the fixed
    /// path.
    fn exec_frame(&self, fi: usize, regs: &mut [Value]) -> VmResult<Value> {
        if self.program.opt >= OptLevel::O2 {
            let qf = quick_fn(&self.program, fi);
            self.dispatch(fi, regs, &QuickCode(&qf.code))
        } else {
            let code: &[Insn] = &self.program.code.funcs[fi].code;
            self.dispatch(fi, regs, &FixedCode(code))
        }
    }

    /// The dispatch loop, monomorphized once per [`CodeStream`] (fixed
    /// stream for `--opt<=1`, self-quickening stream for `--opt=2`).
    ///
    /// Register and constant accesses go through [`rg`]/[`rg_mut`]/[`kc`],
    /// which skip bounds checks. The safety argument lives on those
    /// helpers: every instruction stream that reaches this loop passed
    /// `optimize::verify_fn` at compile time, and quickened rewrites
    /// preserve operands verbatim.
    fn dispatch<C: CodeStream>(&self, fi: usize, regs: &mut [Value], code: &C) -> VmResult<Value> {
        let f = &self.program.code.funcs[fi];
        let consts = &f.consts[..];
        let mut pc = 0usize;
        loop {
            let insn = code.fetch(pc);
            pc += 1;
            match insn {
                Insn::Const { dst, k } => {
                    let v = kc(consts, k).dup();
                    set(regs, dst, v);
                }
                Insn::Move { dst, src } => {
                    let v = rg(regs, src).dup();
                    set(regs, dst, v);
                }
                Insn::NewCell { dst, src } => {
                    let v = rg(regs, src).clone();
                    set(regs, dst, Value::Ptr(Arc::new(Mutex::new(v))));
                }
                Insn::CellGet { dst, cell } => match rg(regs, cell) {
                    Value::Ptr(slot) => {
                        let v = slot.lock().clone();
                        set(regs, dst, v);
                    }
                    other => return err(format!("cannot dereference {}", other.type_name())),
                },
                Insn::CellSet { cell, src } => match rg(regs, cell) {
                    Value::Ptr(slot) => {
                        let slot = slot.clone();
                        *slot.lock() = rg(regs, src).clone();
                    }
                    other => return err(format!("cannot store through {}", other.type_name())),
                },
                Insn::Deref { dst, ptr } => {
                    let v = match rg(regs, ptr) {
                        Value::Ptr(slot) => slot.lock().clone(),
                        Value::ElemPtrF(a, i) => Value::Float(a.get(*i)?),
                        Value::ElemPtrI(a, i) => Value::Int(a.get(*i)?),
                        other => return err(format!("cannot dereference {}", other.type_name())),
                    };
                    set(regs, dst, v);
                }
                Insn::StorePtr { ptr, src } => match rg(regs, ptr) {
                    Value::Ptr(slot) => {
                        let slot = slot.clone();
                        *slot.lock() = rg(regs, src).clone();
                    }
                    Value::ElemPtrF(a, i) => a.set(*i, rg(regs, src).as_float()?)?,
                    Value::ElemPtrI(a, i) => a.set(*i, rg(regs, src).as_int()?)?,
                    other => return err(format!("cannot store through {}", other.type_name())),
                },
                Insn::ElemAddr { dst, arr, idx } => {
                    let i = rg(regs, idx).as_int()?;
                    let v = match rg(regs, arr) {
                        Value::ArrF(a) => Value::ElemPtrF(a.clone(), i),
                        Value::ArrI(a) => Value::ElemPtrI(a.clone(), i),
                        other => return err(format!("cannot index {}", other.type_name())),
                    };
                    set(regs, dst, v);
                }
                Insn::AddrDeref { dst, src } => {
                    let v = match rg(regs, src) {
                        p @ (Value::Ptr(_) | Value::ElemPtrF(..) | Value::ElemPtrI(..)) => {
                            p.clone()
                        }
                        other => return err(format!("cannot store through {}", other.type_name())),
                    };
                    set(regs, dst, v);
                }
                Insn::Index { dst, arr, idx } => {
                    let i = rg(regs, idx).as_int()?;
                    let v = match rg(regs, arr) {
                        Value::ArrF(a) => {
                            if C::QUICKENS {
                                code.quicken(pc - 1, Insn::IndexF { dst, arr, idx });
                                zomp::trace::quicken("index->index.f", (pc - 1) as u32);
                            }
                            Value::Float(a.get(i)?)
                        }
                        Value::ArrI(a) => {
                            if C::QUICKENS {
                                code.quicken(pc - 1, Insn::IndexI { dst, arr, idx });
                                zomp::trace::quicken("index->index.i", (pc - 1) as u32);
                            }
                            Value::Int(a.get(i)?)
                        }
                        other => return err(format!("cannot index {}", other.type_name())),
                    };
                    set(regs, dst, v);
                }
                Insn::IndexF { dst, arr, idx } => match (rg(regs, arr), rg(regs, idx)) {
                    (Value::ArrF(a), Value::Int(i)) => {
                        let v = Value::Float(a.get(*i)?);
                        set(regs, dst, v);
                    }
                    _ => {
                        code.quicken(pc - 1, Insn::Index { dst, arr, idx });
                        zomp::trace::deopt("index.f->index", (pc - 1) as u32);
                        pc -= 1;
                        continue;
                    }
                },
                Insn::IndexI { dst, arr, idx } => match (rg(regs, arr), rg(regs, idx)) {
                    (Value::ArrI(a), Value::Int(i)) => {
                        let v = Value::Int(a.get(*i)?);
                        set(regs, dst, v);
                    }
                    _ => {
                        code.quicken(pc - 1, Insn::Index { dst, arr, idx });
                        zomp::trace::deopt("index.i->index", (pc - 1) as u32);
                        pc -= 1;
                        continue;
                    }
                },
                Insn::IndexSet { arr, idx, src } => {
                    let i = rg(regs, idx).as_int()?;
                    match rg(regs, arr) {
                        Value::ArrF(a) => {
                            let v = rg(regs, src).as_float()?;
                            if C::QUICKENS {
                                code.quicken(pc - 1, Insn::IndexSetF { arr, idx, src });
                                zomp::trace::quicken("index_set->index_set.f", (pc - 1) as u32);
                            }
                            a.set(i, v)?;
                        }
                        Value::ArrI(a) => {
                            let v = rg(regs, src).as_int()?;
                            if C::QUICKENS {
                                code.quicken(pc - 1, Insn::IndexSetI { arr, idx, src });
                                zomp::trace::quicken("index_set->index_set.i", (pc - 1) as u32);
                            }
                            a.set(i, v)?;
                        }
                        other => return err(format!("cannot index {}", other.type_name())),
                    }
                }
                Insn::IndexSetF { arr, idx, src } => {
                    match (rg(regs, arr), rg(regs, idx), rg(regs, src)) {
                        (Value::ArrF(a), Value::Int(i), Value::Float(v)) => a.set(*i, *v)?,
                        _ => {
                            code.quicken(pc - 1, Insn::IndexSet { arr, idx, src });
                            zomp::trace::deopt("index_set.f->index_set", (pc - 1) as u32);
                            pc -= 1;
                            continue;
                        }
                    }
                }
                Insn::IndexSetI { arr, idx, src } => {
                    match (rg(regs, arr), rg(regs, idx), rg(regs, src)) {
                        (Value::ArrI(a), Value::Int(i), Value::Int(v)) => a.set(*i, *v)?,
                        _ => {
                            code.quicken(pc - 1, Insn::IndexSet { arr, idx, src });
                            zomp::trace::deopt("index_set.i->index_set", (pc - 1) as u32);
                            pc -= 1;
                            continue;
                        }
                    }
                }
                Insn::Arith { op, dst, a, b } => {
                    let v = match (rg(regs, a), rg(regs, b)) {
                        (Value::Float(x), Value::Float(y)) => {
                            if C::QUICKENS {
                                code.quicken(pc - 1, Insn::ArithFF { op, dst, a, b });
                                zomp::trace::quicken("arith->arith.ff", (pc - 1) as u32);
                            }
                            Value::Float(float_arith(op, *x, *y))
                        }
                        (Value::Int(x), Value::Int(y)) => {
                            if C::QUICKENS {
                                code.quicken(pc - 1, Insn::ArithII { op, dst, a, b });
                                zomp::trace::quicken("arith->arith.ii", (pc - 1) as u32);
                            }
                            Value::Int(int_arith(op, *x, *y)?)
                        }
                        (x, y) => binop_arith(arith_token(op), x, y)?,
                    };
                    set(regs, dst, v);
                }
                Insn::ArithII { op, dst, a, b } => match (rg(regs, a), rg(regs, b)) {
                    (Value::Int(x), Value::Int(y)) => {
                        let v = Value::Int(int_arith(op, *x, *y)?);
                        set(regs, dst, v);
                    }
                    _ => {
                        code.quicken(pc - 1, Insn::Arith { op, dst, a, b });
                        zomp::trace::deopt("arith.ii->arith", (pc - 1) as u32);
                        pc -= 1;
                        continue;
                    }
                },
                Insn::ArithFF { op, dst, a, b } => match (rg(regs, a), rg(regs, b)) {
                    (Value::Float(x), Value::Float(y)) => {
                        let v = Value::Float(float_arith(op, *x, *y));
                        set(regs, dst, v);
                    }
                    _ => {
                        code.quicken(pc - 1, Insn::Arith { op, dst, a, b });
                        zomp::trace::deopt("arith.ff->arith", (pc - 1) as u32);
                        pc -= 1;
                        continue;
                    }
                },
                Insn::ArithK { op, dst, a, k } => {
                    let v = match (rg(regs, a), kc(consts, k)) {
                        (Value::Float(x), Value::Float(y)) => Value::Float(float_arith(op, *x, *y)),
                        (Value::Int(x), Value::Int(y)) => Value::Int(int_arith(op, *x, *y)?),
                        (x, y) => binop_arith(arith_token(op), x, y)?,
                    };
                    set(regs, dst, v);
                }
                Insn::ArithKL { op, dst, k, b } => {
                    let v = match (kc(consts, k), rg(regs, b)) {
                        (Value::Float(x), Value::Float(y)) => Value::Float(float_arith(op, *x, *y)),
                        (Value::Int(x), Value::Int(y)) => Value::Int(int_arith(op, *x, *y)?),
                        (x, y) => binop_arith(arith_token(op), x, y)?,
                    };
                    set(regs, dst, v);
                }
                Insn::IndexArith {
                    op,
                    dst,
                    arr,
                    idx,
                    rhs,
                } => {
                    // Same evaluation (and error) order as the unfused
                    // Index-then-Arith pair.
                    let i = rg(regs, idx).as_int()?;
                    let elem = match rg(regs, arr) {
                        Value::ArrF(a) => Value::Float(a.get(i)?),
                        Value::ArrI(a) => Value::Int(a.get(i)?),
                        other => return err(format!("cannot index {}", other.type_name())),
                    };
                    let v = match (&elem, rg(regs, rhs)) {
                        (Value::Float(x), Value::Float(y)) => Value::Float(float_arith(op, *x, *y)),
                        (Value::Int(x), Value::Int(y)) => Value::Int(int_arith(op, *x, *y)?),
                        (x, y) => binop_arith(arith_token(op), x, y)?,
                    };
                    set(regs, dst, v);
                }
                Insn::ArithStore { op, arr, idx, a, b } => {
                    // Arith first, then the IndexSet steps — unfused order.
                    let v = match (rg(regs, a), rg(regs, b)) {
                        (Value::Float(x), Value::Float(y)) => Value::Float(float_arith(op, *x, *y)),
                        (Value::Int(x), Value::Int(y)) => Value::Int(int_arith(op, *x, *y)?),
                        (x, y) => binop_arith(arith_token(op), x, y)?,
                    };
                    let i = rg(regs, idx).as_int()?;
                    match rg(regs, arr) {
                        Value::ArrF(arr) => arr.set(i, v.as_float()?)?,
                        Value::ArrI(arr) => arr.set(i, v.as_int()?)?,
                        other => return err(format!("cannot index {}", other.type_name())),
                    }
                }
                Insn::IncElemK { op, arr, idx, k } => {
                    // Unfused order: Index (idx, arr, bounds) → Arith with
                    // the constant → IndexSet.
                    let i = rg(regs, idx).as_int()?;
                    match (rg(regs, arr), kc(consts, k)) {
                        (Value::ArrF(a), Value::Float(c)) => {
                            let x = a.get(i)?;
                            a.set(i, float_arith(op, x, *c))?;
                        }
                        (Value::ArrI(a), Value::Int(c)) => {
                            let x = a.get(i)?;
                            a.set(i, int_arith(op, x, *c)?)?;
                        }
                        (other, c) => {
                            let elem = match other {
                                Value::ArrF(a) => Value::Float(a.get(i)?),
                                Value::ArrI(a) => Value::Int(a.get(i)?),
                                o => return err(format!("cannot index {}", o.type_name())),
                            };
                            let nv = binop_arith(arith_token(op), &elem, c)?;
                            match other {
                                Value::ArrF(a) => a.set(i, nv.as_float()?)?,
                                Value::ArrI(a) => a.set(i, nv.as_int()?)?,
                                _ => unreachable!(),
                            }
                        }
                    }
                }
                Insn::FmaIdx { dst, x, arr, idx } => {
                    match (rg(regs, arr), rg(regs, idx), rg(regs, x), rg(regs, dst)) {
                        (Value::ArrF(a), Value::Int(i), Value::Float(xv), Value::Float(acc)) => {
                            // Mul then add, separately — bit-identical to
                            // the unfused pair (no hardware fma).
                            let v = Value::Float(*acc + *xv * a.get(*i)?);
                            set(regs, dst, v);
                        }
                        _ => {
                            // Unfused order: Index; Mul; Add.
                            let i = rg(regs, idx).as_int()?;
                            let elem = match rg(regs, arr) {
                                Value::ArrF(a) => Value::Float(a.get(i)?),
                                Value::ArrI(a) => Value::Int(a.get(i)?),
                                other => return err(format!("cannot index {}", other.type_name())),
                            };
                            let prod = binop_arith(T::Star, rg(regs, x), &elem)?;
                            let v = binop_arith(T::Plus, rg(regs, dst), &prod)?;
                            set(regs, dst, v);
                        }
                    }
                }
                Insn::IndexOff { dst, arr, idx, off } => {
                    let i = index_off(rg(regs, idx), off)?;
                    let v = match rg(regs, arr) {
                        Value::ArrF(a) => Value::Float(a.get(i)?),
                        Value::ArrI(a) => Value::Int(a.get(i)?),
                        other => return err(format!("cannot index {}", other.type_name())),
                    };
                    set(regs, dst, v);
                }
                Insn::DerefIndex { dst, cell, idx } => {
                    let v = deref_index(regs, cell, idx)?;
                    set(regs, dst, v);
                }
                Insn::DerefIndexOff {
                    dst,
                    cell,
                    idx,
                    off,
                } => {
                    // Unfused order: Deref, then IndexOff (index arithmetic
                    // before the array type check).
                    let v = match rg(regs, cell) {
                        Value::Ptr(slot) => {
                            let i = index_off(rg(regs, idx), off)?;
                            let g = slot.lock();
                            match &*g {
                                Value::ArrF(a) => Value::Float(a.get(i)?),
                                Value::ArrI(a) => Value::Int(a.get(i)?),
                                other => return err(format!("cannot index {}", other.type_name())),
                            }
                        }
                        Value::ElemPtrF(a, i2) => {
                            let elem = Value::Float(a.get(*i2)?);
                            index_off(rg(regs, idx), off)?;
                            return err(format!("cannot index {}", elem.type_name()));
                        }
                        Value::ElemPtrI(a, i2) => {
                            let elem = Value::Int(a.get(*i2)?);
                            index_off(rg(regs, idx), off)?;
                            return err(format!("cannot index {}", elem.type_name()));
                        }
                        other => return err(format!("cannot dereference {}", other.type_name())),
                    };
                    set(regs, dst, v);
                }
                Insn::DerefIndexSet { cell, idx, src } => match rg(regs, cell) {
                    Value::Ptr(slot) => {
                        let i = rg(regs, idx).as_int()?;
                        let g = slot.lock();
                        match &*g {
                            Value::ArrF(a) => {
                                let v = rg(regs, src).as_float()?;
                                a.set(i, v)?;
                            }
                            Value::ArrI(a) => {
                                let v = rg(regs, src).as_int()?;
                                a.set(i, v)?;
                            }
                            other => return err(format!("cannot index {}", other.type_name())),
                        }
                    }
                    Value::ElemPtrF(a, i2) => {
                        let elem = Value::Float(a.get(*i2)?);
                        rg(regs, idx).as_int()?;
                        return err(format!("cannot index {}", elem.type_name()));
                    }
                    Value::ElemPtrI(a, i2) => {
                        let elem = Value::Int(a.get(*i2)?);
                        rg(regs, idx).as_int()?;
                        return err(format!("cannot index {}", elem.type_name()));
                    }
                    other => return err(format!("cannot store through {}", other.type_name())),
                },
                Insn::DerefIncElemK { op, cell, idx, k } => match rg(regs, cell) {
                    Value::Ptr(slot) => {
                        // Unfused chain: DerefIndex → ArithK → DerefIndexSet
                        // on the same cell register; one lock covers the
                        // read-modify-write (the unfused pair re-derefs the
                        // same unchanged register, so collapsing the two
                        // locks is only observable to racy rebinds of the
                        // cell, which are unspecified).
                        let i = rg(regs, idx).as_int()?;
                        let g = slot.lock();
                        match (&*g, kc(consts, k)) {
                            (Value::ArrI(a), Value::Int(c)) => {
                                let x = a.get(i)?;
                                a.set(i, int_arith(op, x, *c)?)?;
                            }
                            (Value::ArrF(a), Value::Float(c)) => {
                                let x = a.get(i)?;
                                a.set(i, float_arith(op, x, *c))?;
                            }
                            (other, c) => {
                                let elem = match other {
                                    Value::ArrF(a) => Value::Float(a.get(i)?),
                                    Value::ArrI(a) => Value::Int(a.get(i)?),
                                    o => return err(format!("cannot index {}", o.type_name())),
                                };
                                let nv = binop_arith(arith_token(op), &elem, c)?;
                                match other {
                                    Value::ArrF(a) => a.set(i, nv.as_float()?)?,
                                    Value::ArrI(a) => a.set(i, nv.as_int()?)?,
                                    _ => unreachable!(),
                                }
                            }
                        }
                    }
                    Value::ElemPtrF(a, i2) => {
                        let elem = Value::Float(a.get(*i2)?);
                        rg(regs, idx).as_int()?;
                        return err(format!("cannot index {}", elem.type_name()));
                    }
                    Value::ElemPtrI(a, i2) => {
                        let elem = Value::Int(a.get(*i2)?);
                        rg(regs, idx).as_int()?;
                        return err(format!("cannot index {}", elem.type_name()));
                    }
                    other => return err(format!("cannot dereference {}", other.type_name())),
                },
                Insn::DerefFmaIdx { dst, x, cell, idx } => match rg(regs, cell) {
                    Value::Ptr(slot) => {
                        let g = slot.lock();
                        let v = match (&*g, rg(regs, idx), rg(regs, x), rg(regs, dst)) {
                            (
                                Value::ArrF(a),
                                Value::Int(i),
                                Value::Float(xv),
                                Value::Float(acc),
                            ) => {
                                // Mul then add, as the unfused pair.
                                Value::Float(*acc + *xv * a.get(*i)?)
                            }
                            _ => {
                                // Unfused order: Index; Mul; Add.
                                let i = rg(regs, idx).as_int()?;
                                let elem = match &*g {
                                    Value::ArrF(a) => Value::Float(a.get(i)?),
                                    Value::ArrI(a) => Value::Int(a.get(i)?),
                                    other => {
                                        return err(format!("cannot index {}", other.type_name()))
                                    }
                                };
                                let prod = binop_arith(T::Star, rg(regs, x), &elem)?;
                                binop_arith(T::Plus, rg(regs, dst), &prod)?
                            }
                        };
                        drop(g);
                        set(regs, dst, v);
                    }
                    Value::ElemPtrF(a, i2) => {
                        let elem = Value::Float(a.get(*i2)?);
                        rg(regs, idx).as_int()?;
                        return err(format!("cannot index {}", elem.type_name()));
                    }
                    Value::ElemPtrI(a, i2) => {
                        let elem = Value::Int(a.get(*i2)?);
                        rg(regs, idx).as_int()?;
                        return err(format!("cannot index {}", elem.type_name()));
                    }
                    other => return err(format!("cannot dereference {}", other.type_name())),
                },
                Insn::FmaIdxCC {
                    dst,
                    x,
                    acell,
                    icell,
                    idx,
                } => match rg(regs, acell) {
                    Value::Ptr(ps) => {
                        // Unfused order: Deref(acell) ran first — for a live
                        // `Ptr` it cannot fail, so only the pointer *check*
                        // stays in place and the read is deferred past the
                        // index gather (observable only to racy rebinds of
                        // the cell itself, which are unspecified).
                        let iv = deref_index(regs, icell, idx)?;
                        let g = ps.lock();
                        let v = match (&*g, &iv, rg(regs, x), rg(regs, dst)) {
                            (
                                Value::ArrF(a),
                                Value::Int(i),
                                Value::Float(xv),
                                Value::Float(acc),
                            ) => {
                                // Mul then add, as the unfused pair.
                                Value::Float(*acc + *xv * a.get(*i)?)
                            }
                            _ => {
                                // Unfused FmaIdx order: Index; Mul; Add.
                                let i = iv.as_int()?;
                                let elem = match &*g {
                                    Value::ArrF(a) => Value::Float(a.get(i)?),
                                    Value::ArrI(a) => Value::Int(a.get(i)?),
                                    other => {
                                        return err(format!("cannot index {}", other.type_name()))
                                    }
                                };
                                let prod = binop_arith(T::Star, rg(regs, x), &elem)?;
                                binop_arith(T::Plus, rg(regs, dst), &prod)?
                            }
                        };
                        drop(g);
                        set(regs, dst, v);
                    }
                    Value::ElemPtrF(a, i2) => {
                        // Deref yields a scalar; the gather still runs, then
                        // the FmaIdx slow path rejects the non-array operand.
                        let elem_a = Value::Float(a.get(*i2)?);
                        let iv = deref_index(regs, icell, idx)?;
                        iv.as_int()?;
                        return err(format!("cannot index {}", elem_a.type_name()));
                    }
                    Value::ElemPtrI(a, i2) => {
                        let elem_a = Value::Int(a.get(*i2)?);
                        let iv = deref_index(regs, icell, idx)?;
                        iv.as_int()?;
                        return err(format!("cannot index {}", elem_a.type_name()));
                    }
                    other => return err(format!("cannot dereference {}", other.type_name())),
                },
                Insn::FmaGather {
                    dst,
                    xcell,
                    acell,
                    icell,
                    idx,
                } => {
                    // Unfused order: DerefIndex(xcell)[idx] produced the
                    // multiplier first, then the FmaIdxCC chain ran.
                    let xv = deref_index(regs, xcell, idx)?;
                    match rg(regs, acell) {
                        Value::Ptr(ps) => {
                            let iv = deref_index(regs, icell, idx)?;
                            let g = ps.lock();
                            let v = match (&*g, &iv, &xv, rg(regs, dst)) {
                                (
                                    Value::ArrF(a),
                                    Value::Int(i),
                                    Value::Float(xf),
                                    Value::Float(acc),
                                ) => {
                                    // Mul then add, as the unfused pair.
                                    Value::Float(*acc + *xf * a.get(*i)?)
                                }
                                _ => {
                                    // Unfused FmaIdx order: Index; Mul; Add.
                                    let i = iv.as_int()?;
                                    let elem = match &*g {
                                        Value::ArrF(a) => Value::Float(a.get(i)?),
                                        Value::ArrI(a) => Value::Int(a.get(i)?),
                                        other => {
                                            return err(format!(
                                                "cannot index {}",
                                                other.type_name()
                                            ))
                                        }
                                    };
                                    let prod = binop_arith(T::Star, &xv, &elem)?;
                                    binop_arith(T::Plus, rg(regs, dst), &prod)?
                                }
                            };
                            drop(g);
                            set(regs, dst, v);
                        }
                        Value::ElemPtrF(a, i2) => {
                            let elem_a = Value::Float(a.get(*i2)?);
                            let iv = deref_index(regs, icell, idx)?;
                            iv.as_int()?;
                            return err(format!("cannot index {}", elem_a.type_name()));
                        }
                        Value::ElemPtrI(a, i2) => {
                            let elem_a = Value::Int(a.get(*i2)?);
                            let iv = deref_index(regs, icell, idx)?;
                            iv.as_int()?;
                            return err(format!("cannot index {}", elem_a.type_name()));
                        }
                        other => return err(format!("cannot dereference {}", other.type_name())),
                    }
                }
                Insn::Cmp { op, dst, a, b } => {
                    let v = match (rg(regs, a), rg(regs, b)) {
                        (Value::Int(x), Value::Int(y)) => {
                            if C::QUICKENS {
                                code.quicken(pc - 1, Insn::CmpII { op, dst, a, b });
                                zomp::trace::quicken("cmp->cmp.ii", (pc - 1) as u32);
                            }
                            Value::Bool(cmp_int(op, *x, *y))
                        }
                        (Value::Float(x), Value::Float(y)) => {
                            if C::QUICKENS {
                                code.quicken(pc - 1, Insn::CmpFF { op, dst, a, b });
                                zomp::trace::quicken("cmp->cmp.ff", (pc - 1) as u32);
                            }
                            Value::Bool(cmp_float(op, *x, *y))
                        }
                        (x, y) => binop(cmp_token(op), x, y)?,
                    };
                    set(regs, dst, v);
                }
                Insn::CmpII { op, dst, a, b } => match (rg(regs, a), rg(regs, b)) {
                    (Value::Int(x), Value::Int(y)) => {
                        let v = Value::Bool(cmp_int(op, *x, *y));
                        set(regs, dst, v);
                    }
                    _ => {
                        code.quicken(pc - 1, Insn::Cmp { op, dst, a, b });
                        zomp::trace::deopt("cmp.ii->cmp", (pc - 1) as u32);
                        pc -= 1;
                        continue;
                    }
                },
                Insn::CmpFF { op, dst, a, b } => match (rg(regs, a), rg(regs, b)) {
                    (Value::Float(x), Value::Float(y)) => {
                        let v = Value::Bool(cmp_float(op, *x, *y));
                        set(regs, dst, v);
                    }
                    _ => {
                        code.quicken(pc - 1, Insn::Cmp { op, dst, a, b });
                        zomp::trace::deopt("cmp.ff->cmp", (pc - 1) as u32);
                        pc -= 1;
                        continue;
                    }
                },
                Insn::Neg { dst, src } => {
                    let v = match rg(regs, src) {
                        Value::Int(v) => Value::Int(-v),
                        Value::Float(v) => Value::Float(-v),
                        other => return err(format!("cannot negate {}", other.type_name())),
                    };
                    set(regs, dst, v);
                }
                Insn::Not { dst, src } => {
                    let v = Value::Bool(!rg(regs, src).truthy()?);
                    set(regs, dst, v);
                }
                Insn::Truthy { dst, src } => {
                    let v = Value::Bool(rg(regs, src).truthy()?);
                    set(regs, dst, v);
                }
                Insn::Jump { to } => pc = to as usize,
                Insn::JumpIfFalse { cond, to } => {
                    if !rg(regs, cond).truthy()? {
                        pc = to as usize;
                    }
                }
                Insn::JumpIfTrue { cond, to } => {
                    if rg(regs, cond).truthy()? {
                        pc = to as usize;
                    }
                }
                Insn::CmpJumpFalse { op, a, b, to } => {
                    let taken = match (rg(regs, a), rg(regs, b)) {
                        (Value::Int(x), Value::Int(y)) => {
                            if C::QUICKENS {
                                code.quicken(pc - 1, Insn::CmpJumpFalseII { op, a, b, to });
                                zomp::trace::quicken("cmp_jf->cmp_jf.ii", (pc - 1) as u32);
                            }
                            cmp_int(op, *x, *y)
                        }
                        (Value::Float(x), Value::Float(y)) => {
                            if C::QUICKENS {
                                code.quicken(pc - 1, Insn::CmpJumpFalseFF { op, a, b, to });
                                zomp::trace::quicken("cmp_jf->cmp_jf.ff", (pc - 1) as u32);
                            }
                            cmp_float(op, *x, *y)
                        }
                        (x, y) => binop(cmp_token(op), x, y)?.truthy()?,
                    };
                    if !taken {
                        pc = to as usize;
                    }
                }
                Insn::CmpJumpFalseII { op, a, b, to } => match (rg(regs, a), rg(regs, b)) {
                    (Value::Int(x), Value::Int(y)) => {
                        if !cmp_int(op, *x, *y) {
                            pc = to as usize;
                        }
                    }
                    _ => {
                        code.quicken(pc - 1, Insn::CmpJumpFalse { op, a, b, to });
                        zomp::trace::deopt("cmp_jf.ii->cmp_jf", (pc - 1) as u32);
                        pc -= 1;
                        continue;
                    }
                },
                Insn::CmpJumpFalseFF { op, a, b, to } => match (rg(regs, a), rg(regs, b)) {
                    (Value::Float(x), Value::Float(y)) => {
                        if !cmp_float(op, *x, *y) {
                            pc = to as usize;
                        }
                    }
                    _ => {
                        code.quicken(pc - 1, Insn::CmpJumpFalse { op, a, b, to });
                        zomp::trace::deopt("cmp_jf.ff->cmp_jf", (pc - 1) as u32);
                        pc -= 1;
                        continue;
                    }
                },
                Insn::IncCmpJump {
                    var,
                    step,
                    limit,
                    op,
                    to,
                } => match (rg(regs, var), rg(regs, limit)) {
                    (Value::Int(v), Value::Int(l)) => {
                        let next = v.wrapping_add(step as i64);
                        let l = *l;
                        set(regs, var, Value::Int(next));
                        if cmp_int(op, next, l) {
                            pc = to as usize;
                        }
                    }
                    _ => {
                        // Slow path mirrors the walker: `v ±= k` through
                        // `binop_arith`, then the condition through `binop`.
                        let (tok, k) = if step >= 0 {
                            (T::Plus, step as i64)
                        } else {
                            (T::Minus, -(step as i64))
                        };
                        let next = binop_arith(tok, rg(regs, var), &Value::Int(k))?;
                        set(regs, var, next);
                        let taken =
                            binop(cmp_token(op), rg(regs, var), rg(regs, limit))?.truthy()?;
                        if taken {
                            pc = to as usize;
                        }
                    }
                },
                Insn::IncJump { var, step, to } => {
                    match rg(regs, var) {
                        Value::Int(v) => {
                            let next = Value::Int(v.wrapping_add(step as i64));
                            set(regs, var, next);
                        }
                        other => {
                            // Same slow path as IncCmpJump's.
                            let (tok, kv) = if step >= 0 {
                                (T::Plus, step as i64)
                            } else {
                                (T::Minus, -(step as i64))
                            };
                            let next = binop_arith(tok, other, &Value::Int(kv))?;
                            set(regs, var, next);
                        }
                    }
                    pc = to as usize;
                }
                Insn::Call { dst, func, base, n } => {
                    let v = self.call_fn(func as usize, regs, base, n)?;
                    set(regs, dst, v);
                }
                Insn::CallValue {
                    dst,
                    callee,
                    base,
                    n,
                } => {
                    let target = match rg(regs, callee) {
                        Value::Fn(name) => match self.program.code.by_name.get(name.as_ref()) {
                            Some(&target) => target,
                            None => return err(format!("unknown function `{name}`")),
                        },
                        other => return err(format!("{} is not callable", other.type_name())),
                    };
                    let v = self.call_fn(target, regs, base, n)?;
                    set(regs, dst, v);
                }
                Insn::OmpCall { dst, sym, base, n } => {
                    let call_args = take_args(regs, base, n);
                    let parts: Vec<&str> = f.omp_syms[sym as usize]
                        .iter()
                        .map(String::as_str)
                        .collect();
                    let v = builtins::call(self, &parts, call_args)?;
                    set(regs, dst, v);
                }
                Insn::Builtin {
                    dst,
                    op,
                    name_k,
                    base,
                    n,
                } => {
                    let v = {
                        let bargs = &regs[base as usize..(base + n) as usize];
                        match (op, bargs) {
                            (BuiltinOp::IntToFloat, [Value::Int(v)]) => Value::Float(*v as f64),
                            (BuiltinOp::FloatToInt, [Value::Float(v)]) => Value::Int(*v as i64),
                            (BuiltinOp::Sqrt, [Value::Float(v)]) => Value::Float(v.sqrt()),
                            (BuiltinOp::Log, [Value::Float(v)]) => Value::Float(v.ln()),
                            (BuiltinOp::Exp, [Value::Float(v)]) => Value::Float(v.exp()),
                            (BuiltinOp::Sin, [Value::Float(v)]) => Value::Float(v.sin()),
                            (BuiltinOp::Cos, [Value::Float(v)]) => Value::Float(v.cos()),
                            (BuiltinOp::Pow, [Value::Float(a), Value::Float(b)]) => {
                                Value::Float(a.powf(*b))
                            }
                            (BuiltinOp::Abs, [Value::Float(v)]) => Value::Float(v.abs()),
                            (BuiltinOp::Abs, [Value::Int(v)]) => Value::Int(v.abs()),
                            (BuiltinOp::Max, [Value::Float(a), Value::Float(b)]) => {
                                Value::Float(a.max(*b))
                            }
                            (BuiltinOp::Max, [Value::Int(a), Value::Int(b)]) => {
                                Value::Int(*a.max(b))
                            }
                            (BuiltinOp::Min, [Value::Float(a), Value::Float(b)]) => {
                                Value::Float(a.min(*b))
                            }
                            (BuiltinOp::Min, [Value::Int(a), Value::Int(b)]) => {
                                Value::Int(*a.min(b))
                            }
                            _ => {
                                let name = match kc(consts, name_k) {
                                    Value::Str(s) => s.clone(),
                                    _ => unreachable!("builtin name constant is not a string"),
                                };
                                builtins::math_builtin(&name, bargs)?
                            }
                        }
                    };
                    set(regs, dst, v);
                }
                Insn::Print { base, n } => {
                    let line = regs[base as usize..(base + n) as usize]
                        .iter()
                        .map(|v| v.render())
                        .collect::<Vec<_>>()
                        .join(" ");
                    if self.echo {
                        println!("{line}");
                    }
                    self.output.lock().push(line);
                }
                Insn::BulkLoop { kidx } => {
                    // Native tier (`--opt=3` only, hence always under
                    // QuickCode): run the whole recognised loop as a
                    // precompiled slice kernel. On success the kernel has
                    // written back every register the loop defines; on any
                    // precheck/bounds failure it wrote back the loop-carried
                    // state it advanced, and deopting to the original head
                    // instruction replays the failing iteration interpreted
                    // (raising the exact error the interpreter would).
                    let desc = &f.kernels[kidx as usize];
                    if crate::kernels::run(desc, (pc - 1) as u32, regs, consts) {
                        pc = desc.exit as usize;
                    } else {
                        code.quicken(pc - 1, desc.orig);
                        pc -= 1;
                        continue;
                    }
                }
                Insn::TemplateLoop { tidx } => {
                    // Typed-template tier (`--opt=3` only): run the
                    // whole loop as a chain of monomorphized template
                    // ops over an unboxed frame. Deopt contract is
                    // identical to `BulkLoop` above.
                    let desc = &f.templates[tidx as usize];
                    if crate::templates::run(desc, (pc - 1) as u32, regs) {
                        pc = desc.exit as usize;
                    } else {
                        code.quicken(pc - 1, desc.orig);
                        pc -= 1;
                        continue;
                    }
                }
                Insn::Trap { msg } => match kc(consts, msg) {
                    Value::Str(s) => return Err(VmError(s.to_string())),
                    _ => unreachable!("trap message constant is not a string"),
                },
                Insn::Ret { src } => {
                    // The frame is dead after this; stealing the value
                    // avoids an Arc clone when returning arrays/strings.
                    return Ok(std::mem::replace(rg_mut(regs, src), Value::Undefined));
                }
                Insn::RetVoid => return Ok(Value::Void),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Execution-tier machinery: frame arena, quickening cache, register access
// ---------------------------------------------------------------------------

/// Cap on pooled frames per thread; beyond this, frames just drop.
const FRAME_POOL_CAP: usize = 64;

thread_local! {
    /// Per-thread arena of register frames (`--opt>=1`). Frames are
    /// cleared on release, so acquire only pays one fill.
    static FRAME_POOL: RefCell<Vec<Vec<Value>>> = const { RefCell::new(Vec::new()) };
    /// Per-thread quickening cache (`--opt>=2`): one `Cell<Insn>` copy of
    /// each executed function, keyed to the owning program by weak pointer.
    static QUICK: RefCell<QuickCache> = const {
        RefCell::new(QuickCache {
            program: Weak::new(),
            fns: Vec::new(),
        })
    };
}

fn acquire_frame(n: usize) -> Vec<Value> {
    let mut v = FRAME_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    v.resize(n, Value::Undefined);
    v
}

fn release_frame(mut v: Vec<Value>) {
    v.clear();
    // `try_with` so frames dropped during thread teardown don't panic.
    let _ = FRAME_POOL.try_with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < FRAME_POOL_CAP {
            p.push(v);
        }
    });
}

/// A function's thread-private, self-modifying instruction stream.
struct QuickFn {
    code: Box<[Cell<Insn>]>,
}

struct QuickCache {
    /// Weak so a cached program can die; `upgrade` + `ptr_eq` guards
    /// against a new program reusing the allocation (ABA).
    program: Weak<Program>,
    fns: Vec<Option<Rc<QuickFn>>>,
}

/// Get (building on first use) the calling thread's quickenable copy of
/// function `fi`. The copy starts as the verified optimized stream;
/// rewrites stay invisible to other threads.
fn quick_fn(program: &Arc<Program>, fi: usize) -> Rc<QuickFn> {
    QUICK.with(|q| {
        let mut q = q.borrow_mut();
        let same = q
            .program
            .upgrade()
            .is_some_and(|p| Arc::ptr_eq(&p, program));
        if !same {
            q.program = Arc::downgrade(program);
            q.fns.clear();
            q.fns.resize(program.code.funcs.len(), None);
        }
        if let Some(qf) = &q.fns[fi] {
            return Rc::clone(qf);
        }
        let code: Box<[Cell<Insn>]> = program.code.funcs[fi]
            .code
            .iter()
            .copied()
            .map(Cell::new)
            .collect();
        let qf = Rc::new(QuickFn { code });
        q.fns[fi] = Some(Rc::clone(&qf));
        qf
    })
}

/// How the dispatch loop reads instructions. Two impls: a plain slice
/// (`--opt<=1`) and the per-thread quickening cache (`--opt=2`).
trait CodeStream {
    /// Whether `quicken` persists (lets the fixed-stream monomorphization
    /// drop all quickening branches).
    const QUICKENS: bool;
    fn fetch(&self, pc: usize) -> Insn;
    fn quicken(&self, pc: usize, insn: Insn);
}

struct FixedCode<'a>(&'a [Insn]);

impl CodeStream for FixedCode<'_> {
    const QUICKENS: bool = false;
    #[inline(always)]
    fn fetch(&self, pc: usize) -> Insn {
        self.0[pc]
    }
    #[inline(always)]
    fn quicken(&self, _pc: usize, _insn: Insn) {}
}

struct QuickCode<'a>(&'a [Cell<Insn>]);

impl CodeStream for QuickCode<'_> {
    const QUICKENS: bool = true;
    #[inline(always)]
    fn fetch(&self, pc: usize) -> Insn {
        self.0[pc].get()
    }
    #[inline(always)]
    fn quicken(&self, pc: usize, insn: Insn) {
        // Single-threaded interior mutability: this stream is owned by the
        // calling thread, and every rewrite is semantically equivalent to
        // the instruction it replaces (specialize on observed types, or
        // deopt back to the generic form).
        self.0[pc].set(insn);
    }
}

/// Unchecked register read.
///
/// SAFETY contract for `rg`/`rg_mut`/`set`/`kc`: every instruction stream
/// the dispatch loop executes passed `optimize::verify_fn` at compile
/// time, which proves every register operand `< nregs` and every constant
/// index `< consts.len()`; frames are allocated at exactly
/// `nregs.max(nparams)` slots, and runtime quickening copies operands
/// verbatim from verified instructions.
#[inline(always)]
fn rg(regs: &[Value], r: Reg) -> &Value {
    debug_assert!((r as usize) < regs.len());
    // SAFETY: see the function doc — r < nregs == regs.len() by verify_fn.
    unsafe { regs.get_unchecked(r as usize) }
}

/// Unchecked register write access (see [`rg`] for the safety contract).
#[inline(always)]
fn rg_mut(regs: &mut [Value], r: Reg) -> &mut Value {
    debug_assert!((r as usize) < regs.len());
    // SAFETY: see `rg` — r < nregs == regs.len() by verify_fn.
    unsafe { regs.get_unchecked_mut(r as usize) }
}

#[inline(always)]
fn set(regs: &mut [Value], r: Reg, v: Value) {
    *rg_mut(regs, r) = v;
}

/// Unchecked constant-pool read (see [`rg`] for the safety contract).
#[inline(always)]
fn kc(consts: &[Value], k: u16) -> &Value {
    debug_assert!((k as usize) < consts.len());
    // SAFETY: see `rg` — k < consts.len() by verify_fn.
    unsafe { consts.get_unchecked(k as usize) }
}

/// The `DerefIndex` computation: dereference the cell register and index
/// the result, with the element read under the cell guard on the `Ptr`
/// path (no array `Value` clone). Evaluation and error order match the
/// unfused `Deref`-then-`Index` pair: the deref completes first (its only
/// error is a non-pointer operand — the `ElemPtr` paths replay the `Index`
/// arm on the scalar for the exact unfused error), then the index
/// coercion, then the array type check and bounds check.
#[inline(always)]
fn deref_index(regs: &[Value], cell: Reg, idx: Reg) -> VmResult<Value> {
    match rg(regs, cell) {
        Value::Ptr(slot) => {
            let i = rg(regs, idx).as_int()?;
            let g = slot.lock();
            match &*g {
                Value::ArrF(a) => Ok(Value::Float(a.get(i)?)),
                Value::ArrI(a) => Ok(Value::Int(a.get(i)?)),
                other => err(format!("cannot index {}", other.type_name())),
            }
        }
        Value::ElemPtrF(a, i2) => {
            let elem = Value::Float(a.get(*i2)?);
            rg(regs, idx).as_int()?;
            err(format!("cannot index {}", elem.type_name()))
        }
        Value::ElemPtrI(a, i2) => {
            let elem = Value::Int(a.get(*i2)?);
            rg(regs, idx).as_int()?;
            err(format!("cannot index {}", elem.type_name()))
        }
        other => err(format!("cannot dereference {}", other.type_name())),
    }
}

/// The `IndexOff`/`DerefIndexOff` index computation: integer fast path,
/// with the non-int fallback reconstructing the unfused `j + k` / `j - k`
/// arithmetic error (the offset's sign encodes the source operator).
#[inline(always)]
fn index_off(v: &Value, off: i32) -> VmResult<i64> {
    match v {
        Value::Int(j) => Ok(j.wrapping_add(off as i64)),
        other => {
            let (tok, kv) = if off >= 0 {
                (T::Plus, off as i64)
            } else {
                (T::Minus, -(off as i64))
            };
            binop_arith(tok, other, &Value::Int(kv))?.as_int()
        }
    }
}

/// Integer arithmetic with the walker's wrapping/division semantics.
#[inline(always)]
fn int_arith(op: ArithOp, x: i64, y: i64) -> VmResult<i64> {
    Ok(match op {
        ArithOp::Add => x.wrapping_add(y),
        ArithOp::Sub => x.wrapping_sub(y),
        ArithOp::Mul => x.wrapping_mul(y),
        ArithOp::Div => {
            if y == 0 {
                return err("integer division by zero");
            }
            x / y
        }
        ArithOp::Rem => {
            if y == 0 {
                return err("remainder by zero");
            }
            x % y
        }
    })
}

#[inline(always)]
fn float_arith(op: ArithOp, x: f64, y: f64) -> f64 {
    match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => x / y,
        ArithOp::Rem => x % y,
    }
}

/// Move a contiguous argument block out of the caller's registers. Argument
/// slots are always freshly-written temporaries, so stealing them (instead
/// of cloning) is safe and avoids `Arc` traffic on hot call paths.
fn take_args(regs: &mut [Value], base: u16, n: u16) -> Vec<Value> {
    regs[base as usize..(base + n) as usize]
        .iter_mut()
        .map(|slot| std::mem::replace(slot, Value::Undefined))
        .collect()
}

fn cmp_int(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

/// Float comparison with the walker's NaN behaviour: ordering operators on
/// NaN are false (`partial_cmp` → `None`), `!=` on NaN is true.
fn cmp_float(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

pub(crate) fn arith_token(op: ArithOp) -> T {
    match op {
        ArithOp::Add => T::Plus,
        ArithOp::Sub => T::Minus,
        ArithOp::Mul => T::Star,
        ArithOp::Div => T::Slash,
        ArithOp::Rem => T::Percent,
    }
}

pub(crate) fn cmp_token(op: CmpOp) -> T {
    match op {
        CmpOp::Lt => T::Lt,
        CmpOp::Le => T::LtEq,
        CmpOp::Gt => T::Gt,
        CmpOp::Ge => T::GtEq,
        CmpOp::Eq => T::EqEq,
        CmpOp::Ne => T::BangEq,
    }
}

/// Extract a dotted identifier path from a callee expression
/// (`omp.internal.fork_call` → `["omp", "internal", "fork_call"]`).
pub(crate) fn callee_path(ast: &Ast, mut id: NodeId) -> Option<Vec<&str>> {
    let mut rev = Vec::new();
    loop {
        let node = ast.node(id);
        match node.tag {
            N::Member => {
                rev.push(ast.token_text(node.main_token));
                id = node.lhs;
            }
            N::Ident => {
                rev.push(ast.token_text(node.main_token));
                rev.reverse();
                return Some(rev);
            }
            _ => return None,
        }
    }
}

fn compound_op(op: T) -> VmResult<T> {
    Ok(match op {
        T::PlusEq => T::Plus,
        T::MinusEq => T::Minus,
        T::StarEq => T::Star,
        T::SlashEq => T::Slash,
        other => return err(format!("bad compound operator {other:?}")),
    })
}

pub(crate) fn binop_arith(op: T, a: &Value, b: &Value) -> VmResult<Value> {
    match (a, b) {
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(match op {
            T::Plus => a.wrapping_add(*b),
            T::Minus => a.wrapping_sub(*b),
            T::Star => a.wrapping_mul(*b),
            T::Slash => {
                if *b == 0 {
                    return err("integer division by zero");
                }
                a / b
            }
            T::Percent => {
                if *b == 0 {
                    return err("remainder by zero");
                }
                a % b
            }
            other => return err(format!("bad arithmetic operator {other:?}")),
        })),
        (Value::Float(a), Value::Float(b)) => Ok(Value::Float(match op {
            T::Plus => a + b,
            T::Minus => a - b,
            T::Star => a * b,
            T::Slash => a / b,
            T::Percent => a % b,
            other => return err(format!("bad arithmetic operator {other:?}")),
        })),
        _ => err(format!(
            "type mismatch: {} {op:?} {} (use @intToFloat/@floatToInt)",
            a.type_name(),
            b.type_name()
        )),
    }
}

pub(crate) fn binop(op: T, a: &Value, b: &Value) -> VmResult<Value> {
    match op {
        T::Plus | T::Minus | T::Star | T::Slash | T::Percent => binop_arith(op, a, b),
        T::EqEq | T::BangEq => {
            let eq = match (a, b) {
                (Value::Int(x), Value::Int(y)) => x == y,
                (Value::Float(x), Value::Float(y)) => x == y,
                (Value::Bool(x), Value::Bool(y)) => x == y,
                (Value::Str(x), Value::Str(y)) => x == y,
                _ => {
                    return err(format!(
                        "cannot compare {} and {}",
                        a.type_name(),
                        b.type_name()
                    ))
                }
            };
            Ok(Value::Bool(if op == T::EqEq { eq } else { !eq }))
        }
        T::Lt | T::LtEq | T::Gt | T::GtEq => {
            let ord = match (a, b) {
                (Value::Int(x), Value::Int(y)) => x.partial_cmp(y),
                (Value::Float(x), Value::Float(y)) => x.partial_cmp(y),
                _ => {
                    return err(format!(
                        "cannot order {} and {}",
                        a.type_name(),
                        b.type_name()
                    ))
                }
            };
            let Some(ord) = ord else {
                return Ok(Value::Bool(false)); // NaN comparisons
            };
            Ok(Value::Bool(match op {
                T::Lt => ord.is_lt(),
                T::LtEq => ord.is_le(),
                T::Gt => ord.is_gt(),
                _ => ord.is_ge(),
            }))
        }
        other => err(format!("bad binary operator {other:?}")),
    }
}
