//! The tree-walking interpreter.
//!
//! Executes the *preprocessed* (pragma-free) AST. All parallelism enters
//! through `omp.internal.fork_call`, which runs the outlined function on a
//! real `zomp` team — so a pragma-annotated Zag program ends up executing
//! on actual threads, completing the paper's pipeline end to end.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use zomp_front::ast::{Ast, Node, NodeId, Tag as N};
use zomp_front::token::Tag as T;

use crate::builtins;
use crate::value::{err, ArrF, ArrI, Slot, Value, VmError, VmResult};

/// A compiled (preprocessed + parsed) program.
pub struct Program {
    pub ast: Ast,
    pub functions: HashMap<String, NodeId>,
    /// The source before preprocessing, kept for display/teaching.
    pub original_source: String,
    /// The pragma-free source actually executed.
    pub final_source: String,
}

/// Compile Zag source: preprocess pragmas away, parse, index functions.
pub fn compile(source: &str) -> Result<Program, zomp_front::FrontError> {
    compile_inner(source, None)
}

/// [`compile`] with a compilation-unit name (normally the source path):
/// parallel regions are labelled `unit:line` of their pragma, so runtime
/// traces and profiles point back at the directive.
pub fn compile_named(source: &str, unit: &str) -> Result<Program, zomp_front::FrontError> {
    compile_inner(source, Some(unit))
}

fn compile_inner(source: &str, unit: Option<&str>) -> Result<Program, zomp_front::FrontError> {
    let final_source = match unit {
        Some(u) => zomp_front::preprocess::preprocess_named(source, u)?,
        None => zomp_front::preprocess(source)?,
    };
    let ast = zomp_front::parse(&final_source)?;
    let mut functions = HashMap::new();
    let root = *ast.node(ast.root);
    for &decl in ast.range(&root) {
        let node = ast.node(decl);
        if node.tag == N::FnDecl {
            functions.insert(ast.token_text(node.main_token).to_string(), decl);
        }
    }
    Ok(Program {
        ast,
        functions,
        original_source: source.to_string(),
        final_source,
    })
}

/// The virtual machine: a compiled program plus captured output.
pub struct Vm {
    pub program: Arc<Program>,
    /// Lines produced by `print(...)`, in order.
    pub output: Mutex<Vec<String>>,
    /// Echo `print` output to stdout as well.
    pub echo: bool,
}

/// Lexical environment of one function activation.
struct Frame {
    scopes: Vec<HashMap<String, Slot>>,
}

impl Frame {
    fn new() -> Frame {
        Frame {
            scopes: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, v: Value) {
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), Arc::new(Mutex::new(v)));
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name).cloned())
    }
}

/// Statement outcome.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// A resolved assignment target.
enum Place {
    Slot(Slot),
    ElemF(Arc<ArrF>, i64),
    ElemI(Arc<ArrI>, i64),
}

impl Vm {
    /// Compile and wrap a program.
    pub fn new(source: &str) -> Result<Vm, zomp_front::FrontError> {
        Ok(Vm {
            program: Arc::new(compile(source)?),
            output: Mutex::new(Vec::new()),
            echo: false,
        })
    }

    /// [`Vm::new`] with a compilation-unit name: region trace/profile
    /// labels become the pragma's `unit:line`.
    pub fn with_unit(source: &str, unit: &str) -> Result<Vm, zomp_front::FrontError> {
        Ok(Vm {
            program: Arc::new(compile_named(source, unit)?),
            output: Mutex::new(Vec::new()),
            echo: false,
        })
    }

    /// Compile and run `main()`, returning the captured output lines.
    pub fn run(source: &str) -> Result<Vec<String>, VmError> {
        let vm = Vm::new(source).map_err(|e| VmError(e.render(source)))?;
        vm.call_function("main", Vec::new())?;
        Ok(vm.output.into_inner())
    }

    /// Call a function by name.
    pub fn call_function(&self, name: &str, args: Vec<Value>) -> VmResult<Value> {
        let ast = &self.program.ast;
        let &decl = self
            .program
            .functions
            .get(name)
            .ok_or_else(|| VmError(format!("unknown function `{name}`")))?;
        let node = ast.node(decl);
        let nparams = node.rhs as usize;
        let params = ast.extra(node.lhs, node.lhs + nparams as u32).to_vec();
        let body = ast.extra_data[(node.lhs as usize) + nparams];
        if args.len() != nparams {
            return err(format!(
                "`{name}` expects {nparams} arguments, got {}",
                args.len()
            ));
        }
        let mut frame = Frame::new();
        for (param, arg) in params.iter().zip(args) {
            let pname = ast.token_text(ast.node(*param).main_token);
            frame.declare(pname, arg);
        }
        match self.exec_block(&mut frame, body)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Void),
        }
    }

    // -- statements ---------------------------------------------------------

    fn exec_block(&self, frame: &mut Frame, block: NodeId) -> VmResult<Flow> {
        let ast = &self.program.ast;
        let node = *ast.node(block);
        debug_assert_eq!(node.tag, N::Block);
        frame.push();
        let stmts = ast.range(&node).to_vec();
        let mut out = Flow::Normal;
        for stmt in stmts {
            match self.exec_stmt(frame, stmt)? {
                Flow::Normal => {}
                flow => {
                    out = flow;
                    break;
                }
            }
        }
        frame.pop();
        Ok(out)
    }

    fn exec_stmt(&self, frame: &mut Frame, id: NodeId) -> VmResult<Flow> {
        let ast = &self.program.ast;
        let node = *ast.node(id);
        match node.tag {
            N::VarDecl | N::ConstDecl => {
                let init = if node.rhs > 0 {
                    self.eval(frame, node.rhs - 1)?
                } else {
                    Value::Undefined
                };
                frame.declare(ast.token_text(node.main_token), init);
                Ok(Flow::Normal)
            }
            N::Assign => {
                let v = self.eval(frame, node.rhs)?;
                let place = self.eval_place(frame, node.lhs)?;
                self.store(place, v)?;
                Ok(Flow::Normal)
            }
            N::CompoundAssign => {
                let rhs = self.eval(frame, node.rhs)?;
                let op = ast.tokens[node.main_token as usize].tag;
                let place = self.eval_place(frame, node.lhs)?;
                let old = self.load(&place)?;
                let new = binop_arith(compound_op(op)?, &old, &rhs)?;
                self.store(place, new)?;
                Ok(Flow::Normal)
            }
            N::While => {
                let body = ast.extra_data[node.rhs as usize];
                let cont = ast.extra_data[node.rhs as usize + 1];
                loop {
                    if !self.eval(frame, node.lhs)?.truthy()? {
                        break;
                    }
                    match self.exec_stmt(frame, body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    if cont > 0 {
                        self.exec_stmt(frame, cont - 1)?;
                    }
                }
                Ok(Flow::Normal)
            }
            N::If => {
                let then = ast.extra_data[node.rhs as usize];
                let els = ast.extra_data[node.rhs as usize + 1];
                if self.eval(frame, node.lhs)?.truthy()? {
                    self.exec_stmt(frame, then)
                } else if els > 0 {
                    self.exec_stmt(frame, els - 1)
                } else {
                    Ok(Flow::Normal)
                }
            }
            N::Return => {
                let v = if node.lhs > 0 {
                    self.eval(frame, node.lhs - 1)?
                } else {
                    Value::Void
                };
                Ok(Flow::Return(v))
            }
            N::Break => Ok(Flow::Break),
            N::Continue => Ok(Flow::Continue),
            N::Discard | N::ExprStmt => {
                self.eval(frame, node.lhs)?;
                Ok(Flow::Normal)
            }
            N::Block => self.exec_block(frame, id),
            other => err(format!("node {other:?} is not a statement")),
        }
    }

    // -- expressions ----------------------------------------------------------

    fn eval(&self, frame: &mut Frame, id: NodeId) -> VmResult<Value> {
        let ast = &self.program.ast;
        let node = *ast.node(id);
        match node.tag {
            N::IntLit => ast
                .token_text(node.main_token)
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| VmError("integer literal out of range".into())),
            N::FloatLit => ast
                .token_text(node.main_token)
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| VmError("bad float literal".into())),
            N::BoolLit => Ok(Value::Bool(
                ast.tokens[node.main_token as usize].tag == T::KwTrue,
            )),
            N::StrLit => {
                let raw = ast.token_text(node.main_token);
                let inner = &raw[1..raw.len() - 1];
                Ok(Value::Str(Arc::from(
                    inner.replace("\\\"", "\"").replace("\\n", "\n"),
                )))
            }
            N::UndefinedLit => Ok(Value::Undefined),
            N::Ident => {
                let name = ast.token_text(node.main_token);
                if let Some(slot) = frame.lookup(name) {
                    let v = slot.lock().clone();
                    return Ok(v);
                }
                if self.program.functions.contains_key(name) {
                    return Ok(Value::Fn(Arc::from(name)));
                }
                err(format!("unknown variable `{name}`"))
            }
            N::BinOp => {
                let op = ast.tokens[node.main_token as usize].tag;
                // Short-circuit logical operators.
                if op == T::KwAnd {
                    return Ok(Value::Bool(
                        self.eval(frame, node.lhs)?.truthy()?
                            && self.eval(frame, node.rhs)?.truthy()?,
                    ));
                }
                if op == T::KwOr {
                    return Ok(Value::Bool(
                        self.eval(frame, node.lhs)?.truthy()?
                            || self.eval(frame, node.rhs)?.truthy()?,
                    ));
                }
                let a = self.eval(frame, node.lhs)?;
                let b = self.eval(frame, node.rhs)?;
                binop(op, &a, &b)
            }
            N::UnOp => {
                let op = ast.tokens[node.main_token as usize].tag;
                match op {
                    T::Amp => self.eval_addr(frame, node.lhs),
                    T::Minus => match self.eval(frame, node.lhs)? {
                        Value::Int(v) => Ok(Value::Int(-v)),
                        Value::Float(v) => Ok(Value::Float(-v)),
                        other => err(format!("cannot negate {}", other.type_name())),
                    },
                    T::Bang => Ok(Value::Bool(!self.eval(frame, node.lhs)?.truthy()?)),
                    other => err(format!("bad unary operator {other:?}")),
                }
            }
            N::Deref => match self.eval(frame, node.lhs)? {
                Value::Ptr(slot) => {
                    let v = slot.lock().clone();
                    Ok(v)
                }
                Value::ElemPtrF(a, i) => a.get(i).map(Value::Float),
                Value::ElemPtrI(a, i) => a.get(i).map(Value::Int),
                other => err(format!("cannot dereference {}", other.type_name())),
            },
            N::Index => {
                let base = self.eval(frame, node.lhs)?;
                let idx = self.eval(frame, node.rhs)?.as_int()?;
                match base {
                    Value::ArrF(a) => a.get(idx).map(Value::Float),
                    Value::ArrI(a) => a.get(idx).map(Value::Int),
                    other => err(format!("cannot index {}", other.type_name())),
                }
            }
            N::Member => {
                // Bare member reads are only meaningful as call paths; a
                // stray one is an error.
                err(format!(
                    "`{}` has no readable fields",
                    ast.node_text(node.lhs)
                ))
            }
            N::Call => self.eval_call(frame, &node),
            N::BuiltinCall => self.eval_builtin(frame, &node),
            other => err(format!("node {other:?} is not an expression")),
        }
    }

    fn eval_addr(&self, frame: &mut Frame, target: NodeId) -> VmResult<Value> {
        match self.eval_place(frame, target)? {
            Place::Slot(s) => Ok(Value::Ptr(s)),
            Place::ElemF(a, i) => Ok(Value::ElemPtrF(a, i)),
            Place::ElemI(a, i) => Ok(Value::ElemPtrI(a, i)),
        }
    }

    fn eval_place(&self, frame: &mut Frame, id: NodeId) -> VmResult<Place> {
        let ast = &self.program.ast;
        let node = *ast.node(id);
        match node.tag {
            N::Ident => {
                let name = ast.token_text(node.main_token);
                frame
                    .lookup(name)
                    .map(Place::Slot)
                    .ok_or_else(|| VmError(format!("unknown variable `{name}`")))
            }
            N::Index => {
                let base = self.eval(frame, node.lhs)?;
                let idx = self.eval(frame, node.rhs)?.as_int()?;
                match base {
                    Value::ArrF(a) => Ok(Place::ElemF(a, idx)),
                    Value::ArrI(a) => Ok(Place::ElemI(a, idx)),
                    other => err(format!("cannot index {}", other.type_name())),
                }
            }
            N::Deref => match self.eval(frame, node.lhs)? {
                Value::Ptr(slot) => Ok(Place::Slot(slot)),
                Value::ElemPtrF(a, i) => Ok(Place::ElemF(a, i)),
                Value::ElemPtrI(a, i) => Ok(Place::ElemI(a, i)),
                other => err(format!("cannot store through {}", other.type_name())),
            },
            other => err(format!("{other:?} is not assignable")),
        }
    }

    fn load(&self, place: &Place) -> VmResult<Value> {
        match place {
            Place::Slot(s) => Ok(s.lock().clone()),
            Place::ElemF(a, i) => a.get(*i).map(Value::Float),
            Place::ElemI(a, i) => a.get(*i).map(Value::Int),
        }
    }

    fn store(&self, place: Place, v: Value) -> VmResult<()> {
        match place {
            Place::Slot(s) => {
                *s.lock() = v;
                Ok(())
            }
            Place::ElemF(a, i) => a.set(i, v.as_float()?),
            Place::ElemI(a, i) => a.set(i, v.as_int()?),
        }
    }

    fn eval_call(&self, frame: &mut Frame, node: &Node) -> VmResult<Value> {
        let ast = &self.program.ast;
        // Resolve the callee as a dotted path of identifiers if possible.
        let path = callee_path(ast, node.lhs);
        let arg_ids = ast.call_args(node).to_vec();
        let mut args = Vec::with_capacity(arg_ids.len());
        for a in arg_ids {
            args.push(self.eval(frame, a)?);
        }
        match path.as_deref() {
            Some(["print"]) => {
                let line = args
                    .iter()
                    .map(|v| v.render())
                    .collect::<Vec<_>>()
                    .join(" ");
                if self.echo {
                    println!("{line}");
                }
                self.output.lock().push(line);
                Ok(Value::Void)
            }
            Some(["omp", rest @ ..]) if !rest.is_empty() => builtins::call(self, rest, args),
            Some([name]) if self.program.functions.contains_key(*name) => {
                self.call_function(name, args)
            }
            _ => {
                // Fall back: callee evaluates to a function value.
                let callee = self.eval(frame, node.lhs)?;
                match callee {
                    Value::Fn(name) => self.call_function(&name, args),
                    other => err(format!("{} is not callable", other.type_name())),
                }
            }
        }
    }

    fn eval_builtin(&self, frame: &mut Frame, node: &Node) -> VmResult<Value> {
        let ast = &self.program.ast;
        let name = ast.token_text(node.main_token);
        let arg_ids = ast.extra(node.lhs, node.rhs).to_vec();
        let mut args = Vec::with_capacity(arg_ids.len());
        for a in arg_ids {
            args.push(self.eval(frame, a)?);
        }
        match (name, args.as_slice()) {
            ("@intToFloat", [Value::Int(v)]) => Ok(Value::Float(*v as f64)),
            ("@floatToInt", [Value::Float(v)]) => Ok(Value::Int(*v as i64)),
            ("@sqrt", [Value::Float(v)]) => Ok(Value::Float(v.sqrt())),
            ("@log", [Value::Float(v)]) => Ok(Value::Float(v.ln())),
            ("@exp", [Value::Float(v)]) => Ok(Value::Float(v.exp())),
            ("@sin", [Value::Float(v)]) => Ok(Value::Float(v.sin())),
            ("@cos", [Value::Float(v)]) => Ok(Value::Float(v.cos())),
            ("@pow", [Value::Float(a), Value::Float(b)]) => Ok(Value::Float(a.powf(*b))),
            ("@abs", [Value::Float(v)]) => Ok(Value::Float(v.abs())),
            ("@abs", [Value::Int(v)]) => Ok(Value::Int(v.abs())),
            ("@max", [Value::Float(a), Value::Float(b)]) => Ok(Value::Float(a.max(*b))),
            ("@max", [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.max(b))),
            ("@min", [Value::Float(a), Value::Float(b)]) => Ok(Value::Float(a.min(*b))),
            ("@min", [Value::Int(a), Value::Int(b)]) => Ok(Value::Int(*a.min(b))),
            ("@allocF", [Value::Int(n)]) => Ok(Value::ArrF(Arc::new(ArrF::new(*n as usize)))),
            ("@allocI", [Value::Int(n)]) => Ok(Value::ArrI(Arc::new(ArrI::new(*n as usize)))),
            ("@len", [Value::ArrF(a)]) => Ok(Value::Int(a.len() as i64)),
            ("@len", [Value::ArrI(a)]) => Ok(Value::Int(a.len() as i64)),
            (other, args) => err(format!(
                "unknown builtin {other} for ({})",
                args.iter()
                    .map(|a| a.type_name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        }
    }
}

/// Extract a dotted identifier path from a callee expression
/// (`omp.internal.fork_call` → `["omp", "internal", "fork_call"]`).
fn callee_path(ast: &Ast, mut id: NodeId) -> Option<Vec<&str>> {
    let mut rev = Vec::new();
    loop {
        let node = ast.node(id);
        match node.tag {
            N::Member => {
                rev.push(ast.token_text(node.main_token));
                id = node.lhs;
            }
            N::Ident => {
                rev.push(ast.token_text(node.main_token));
                rev.reverse();
                return Some(rev);
            }
            _ => return None,
        }
    }
}

fn compound_op(op: T) -> VmResult<T> {
    Ok(match op {
        T::PlusEq => T::Plus,
        T::MinusEq => T::Minus,
        T::StarEq => T::Star,
        T::SlashEq => T::Slash,
        other => return err(format!("bad compound operator {other:?}")),
    })
}

fn binop_arith(op: T, a: &Value, b: &Value) -> VmResult<Value> {
    match (a, b) {
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(match op {
            T::Plus => a.wrapping_add(*b),
            T::Minus => a.wrapping_sub(*b),
            T::Star => a.wrapping_mul(*b),
            T::Slash => {
                if *b == 0 {
                    return err("integer division by zero");
                }
                a / b
            }
            T::Percent => {
                if *b == 0 {
                    return err("remainder by zero");
                }
                a % b
            }
            other => return err(format!("bad arithmetic operator {other:?}")),
        })),
        (Value::Float(a), Value::Float(b)) => Ok(Value::Float(match op {
            T::Plus => a + b,
            T::Minus => a - b,
            T::Star => a * b,
            T::Slash => a / b,
            T::Percent => a % b,
            other => return err(format!("bad arithmetic operator {other:?}")),
        })),
        _ => err(format!(
            "type mismatch: {} {op:?} {} (use @intToFloat/@floatToInt)",
            a.type_name(),
            b.type_name()
        )),
    }
}

fn binop(op: T, a: &Value, b: &Value) -> VmResult<Value> {
    match op {
        T::Plus | T::Minus | T::Star | T::Slash | T::Percent => binop_arith(op, a, b),
        T::EqEq | T::BangEq => {
            let eq = match (a, b) {
                (Value::Int(x), Value::Int(y)) => x == y,
                (Value::Float(x), Value::Float(y)) => x == y,
                (Value::Bool(x), Value::Bool(y)) => x == y,
                (Value::Str(x), Value::Str(y)) => x == y,
                _ => {
                    return err(format!(
                        "cannot compare {} and {}",
                        a.type_name(),
                        b.type_name()
                    ))
                }
            };
            Ok(Value::Bool(if op == T::EqEq { eq } else { !eq }))
        }
        T::Lt | T::LtEq | T::Gt | T::GtEq => {
            let ord = match (a, b) {
                (Value::Int(x), Value::Int(y)) => x.partial_cmp(y),
                (Value::Float(x), Value::Float(y)) => x.partial_cmp(y),
                _ => {
                    return err(format!(
                        "cannot order {} and {}",
                        a.type_name(),
                        b.type_name()
                    ))
                }
            };
            let Some(ord) = ord else {
                return Ok(Value::Bool(false)); // NaN comparisons
            };
            Ok(Value::Bool(match op {
                T::Lt => ord.is_lt(),
                T::LtEq => ord.is_le(),
                T::Gt => ord.is_gt(),
                _ => ord.is_ge(),
            }))
        }
        other => err(format!("bad binary operator {other:?}")),
    }
}
