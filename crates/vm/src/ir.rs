//! Block-structured view of a compiled function.
//!
//! The emitter produces a flat instruction stream; every analysis
//! that wants control-flow structure (type inference in
//! [`crate::typeck`], the loop matchers in [`crate::kernels`], the
//! `--dump-ir` pretty-printer) lifts it into basic blocks through
//! this module instead of re-deriving leaders ad hoc. The lift is a
//! view, not a new encoding: blocks are index ranges into
//! `CompiledFn::code`, so there is nothing to lower back — rewrites
//! happen in place on the flat stream and stay valid as long as they
//! do not move instructions (the specializer and kernel installer
//! both only overwrite single slots).

use crate::bytecode::{insn_text, CompiledFn, Image};
use crate::optimize::{falls_through, jump_target, leaders};
use crate::typeck::{self, Ty};

/// One basic block: the half-open instruction range plus its CFG
/// edges (as block indices).
pub struct Block {
    /// First instruction (inclusive).
    pub start: usize,
    /// Last instruction (inclusive) — the only one that may branch.
    pub end: usize,
    pub succs: Vec<usize>,
    pub preds: Vec<usize>,
}

/// Block-structured view of one function.
pub struct FnIr {
    pub blocks: Vec<Block>,
    /// Owning block index for every pc.
    pub block_of: Vec<usize>,
}

/// Lift a flat instruction stream into basic blocks.
pub fn lift(f: &CompiledFn) -> FnIr {
    let code = &f.code;
    let lead = leaders(code);
    let n = code.len();
    let mut block_of = vec![0usize; n];
    let mut blocks: Vec<Block> = Vec::new();
    for pc in 0..n {
        if lead[pc] {
            blocks.push(Block {
                start: pc,
                end: pc,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }
        let b = blocks.len() - 1;
        block_of[pc] = b;
        blocks[b].end = pc;
    }
    let ends: Vec<usize> = blocks.iter().map(|b| b.end).collect();
    for (b, &end) in ends.iter().enumerate() {
        let insn = &code[end];
        let succ = |pc: usize, blocks: &mut Vec<Block>| {
            let s = block_of[pc];
            if !blocks[b].succs.contains(&s) {
                blocks[b].succs.push(s);
                blocks[s].preds.push(b);
            }
        };
        if falls_through(insn) && end + 1 < n {
            succ(end + 1, &mut blocks);
        }
        if let Some(t) = jump_target(insn) {
            succ(t as usize, &mut blocks);
        }
    }
    FnIr { blocks, block_of }
}

/// Render the typed IR for a whole image (`zag --dump-ir`): each
/// function as its basic blocks, annotated with the register types
/// inference proves at block entry. Only slots with a useful static
/// type are listed — `dyn`/`undef` slots are elided to keep the dump
/// readable (and the golden test stable against register churn in
/// unrelated slots).
pub fn dump(image: &Image) -> String {
    use std::fmt::Write;
    let types = typeck::infer_image(image);
    let mut out = String::new();
    for (fi, f) in image.funcs.iter().enumerate() {
        let ft = &types.fns[fi];
        let fir = lift(f);
        let _ = writeln!(
            out,
            "fn {} (params {}, regs {}) ret {}",
            f.name,
            f.nparams,
            f.nregs,
            types.rets[fi].name()
        );
        if !f.locals.is_empty() {
            let names: Vec<String> = f
                .locals
                .iter()
                .map(|(r, n, boxed)| format!("r{r}={}{n}", if *boxed { "&" } else { "" }))
                .collect();
            let _ = writeln!(out, "  locals: {}", names.join(" "));
        }
        for (b, blk) in fir.blocks.iter().enumerate() {
            let preds: Vec<String> = blk.preds.iter().map(|p| format!("b{p}")).collect();
            let succs: Vec<String> = blk.succs.iter().map(|s| format!("b{s}")).collect();
            let _ = writeln!(
                out,
                "  block b{b} @{}..{}  preds[{}] succs[{}]",
                blk.start,
                blk.end,
                preds.join(" "),
                succs.join(" ")
            );
            match &ft.entry[b] {
                None => {
                    let _ = writeln!(out, "    unreachable");
                    continue;
                }
                Some(env) => {
                    let typed: Vec<String> = env
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| !matches!(t, Ty::Dynamic | Ty::Undef | Ty::Bottom))
                        .map(|(r, t)| format!("r{r}:{}", t.name()))
                        .collect();
                    if !typed.is_empty() {
                        let _ = writeln!(out, "    types: {}", typed.join(" "));
                    }
                }
            }
            for pc in blk.start..=blk.end {
                let _ = writeln!(out, "    {pc:>4}  {}", insn_text(f, &f.code[pc]));
            }
        }
        out.push('\n');
    }
    out
}
