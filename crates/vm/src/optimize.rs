//! The bytecode optimization pipeline (`zag --opt=0|1|2`).
//!
//! Sits between [`crate::compile`] and [`crate::interp`]: `compile`
//! produces the naive stream (exactly the `--opt=0` behaviour), and this
//! module rewrites each [`CompiledFn`] in place. Pass ordering, repeated
//! to a fixpoint:
//!
//! 1. **Constant folding + copy propagation** (`--opt>=1`) — block-local
//!    forward walk: reads of registers holding a copy are redirected to
//!    the original; `Arith`/`Cmp`/`Neg`/`Not`/`Truthy` over constant
//!    operands fold to `Const` *only when evaluation succeeds* (an op
//!    that would raise, like `1/0`, is left for the runtime so the error
//!    and its text are preserved).
//! 2. **Dead-store elimination** (`--opt>=1`) — a backward liveness
//!    dataflow over basic blocks; only side-effect-free `Const`/`Move`
//!    whose destination is dead are removed, then jump targets are
//!    compacted.
//! 3. **Superinstruction fusion** (`--opt=2`) — a peephole scan over the
//!    shapes that dominate the NPB inner loops; see the catalogue below.
//!
//! # Fusion catalogue
//!
//! | pattern (after pass 1/2)              | fused                  |
//! |---------------------------------------|------------------------|
//! | `const t,k; arith d,a,t`              | `ArithK d,a,k`         |
//! | `const t,k; arith d,t,b`              | `ArithKL d,k,b`        |
//! | `index t,A[i]; arith d,t,r`           | `IndexArith d,A[i],r`  |
//! | `arith t,a,b; indexset A[i],t`        | `ArithStore A[i],a,b`  |
//! | `index t,A[i]; arithk u,t,k; indexset A[i],u` | `IncElemK A[i],k` |
//! | `index t,A[i]; mul u,x,t; add s,s,u`  | `FmaIdx s,x,A[i]`      |
//! | `arithk t,j,±k; index d,A[t]`         | `IndexOff d,A[j±k]`    |
//! | `arithk v,v,±k; jump`                 | `IncJump v,±k`         |
//! | `move t,x; builtin d,op,t..1`         | `builtin d,op,x..1`    |
//!
//! Every fusion requires the consumed temporaries to be dead (or
//! redefined) afterwards and no jump target inside the consumed window,
//! and every fused opcode's interpreter arm replays the *unfused*
//! evaluation order on its slow path so runtime errors (which message,
//! which operand order) are byte-identical with `--opt=0` and the
//! tree-walking oracle — the differential suite enforces this at every
//! level.
//!
//! # Verification
//!
//! [`verify_fn`] runs on every function both as it leaves `compile` and
//! again after optimization. It proves all register operands `< nregs`,
//! argument blocks in range, constant/symbol indices valid, jump targets
//! in bounds, and the stream properly terminated. The interpreter's
//! dispatch loop relies on this to use unchecked register access.

use std::collections::HashMap;
use std::fmt;

use crate::bytecode::{ArithOp, CompiledFn, Insn, PreOpt, Reg};
use crate::interp::{arith_token, binop, binop_arith, cmp_token};
use crate::value::Value;

/// Optimization level for the bytecode pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// The naive compile output, executed as-is (the PR 3 pipeline).
    O0,
    /// Constant folding, copy propagation, dead-store elimination, plus
    /// the runtime call-frame arena.
    O1,
    /// `O1` + superinstruction fusion, static type specialization from
    /// the typed IR ([`crate::typeck`]), and runtime quickening (default).
    #[default]
    O2,
    /// `O2` + the native bulk-kernel tier ([`crate::kernels`]): hot typed
    /// loop shapes lower to precompiled slice kernels.
    O3,
}

impl OptLevel {
    /// Parse a CLI spelling (`0` | `1` | `2` | `3`).
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s {
            "0" => Some(OptLevel::O0),
            "1" => Some(OptLevel::O1),
            "2" => Some(OptLevel::O2),
            "3" => Some(OptLevel::O3),
            _ => None,
        }
    }

    /// Map a numeric level (from `ExecConfig::opt` or a service request)
    /// onto the enum; values above 3 clamp to `O3`.
    pub fn from_index(n: u8) -> OptLevel {
        match n {
            0 => OptLevel::O0,
            1 => OptLevel::O1,
            2 => OptLevel::O2,
            _ => OptLevel::O3,
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptLevel::O0 => "0",
            OptLevel::O1 => "1",
            OptLevel::O2 => "2",
            OptLevel::O3 => "3",
        })
    }
}

// ---------------------------------------------------------------------------
// Operand visitors
// ---------------------------------------------------------------------------

/// Visit every register an instruction *reads*. Call-style instructions
/// read their whole argument block; `FmaIdx` reads its accumulator;
/// `IncCmpJump`/`IncJump` read the induction register they update.
/// `BulkLoop` reports nothing: kernels are installed after every
/// rewriting pass has run, and their registers are range-checked through
/// the kernel descriptor in [`verify_fn`].
pub(crate) fn visit_uses(insn: &Insn, mut f: impl FnMut(Reg)) {
    match *insn {
        Insn::Const { .. }
        | Insn::Jump { .. }
        | Insn::Trap { .. }
        | Insn::BulkLoop { .. }
        | Insn::TemplateLoop { .. }
        | Insn::RetVoid => {}
        Insn::Move { src, .. }
        | Insn::NewCell { src, .. }
        | Insn::AddrDeref { src, .. }
        | Insn::Neg { src, .. }
        | Insn::Not { src, .. }
        | Insn::Truthy { src, .. }
        | Insn::Ret { src } => f(src),
        Insn::CellGet { cell, .. } => f(cell),
        Insn::CellSet { cell, src } => {
            f(cell);
            f(src);
        }
        Insn::Deref { ptr, .. } => f(ptr),
        Insn::StorePtr { ptr, src } => {
            f(ptr);
            f(src);
        }
        Insn::ElemAddr { arr, idx, .. }
        | Insn::Index { arr, idx, .. }
        | Insn::IndexF { arr, idx, .. }
        | Insn::IndexI { arr, idx, .. }
        | Insn::IndexOff { arr, idx, .. }
        | Insn::IncElemK { arr, idx, .. } => {
            f(arr);
            f(idx);
        }
        Insn::DerefIndex { cell, idx, .. }
        | Insn::DerefIndexOff { cell, idx, .. }
        | Insn::DerefIncElemK { cell, idx, .. } => {
            f(cell);
            f(idx);
        }
        Insn::DerefIndexSet { cell, idx, src } => {
            f(cell);
            f(idx);
            f(src);
        }
        Insn::DerefFmaIdx { dst, x, cell, idx } => {
            f(dst);
            f(x);
            f(cell);
            f(idx);
        }
        Insn::FmaIdxCC {
            dst,
            x,
            acell,
            icell,
            idx,
        } => {
            f(dst);
            f(x);
            f(acell);
            f(icell);
            f(idx);
        }
        Insn::FmaGather {
            dst,
            xcell,
            acell,
            icell,
            idx,
        } => {
            f(dst);
            f(xcell);
            f(acell);
            f(icell);
            f(idx);
        }
        Insn::IndexSet { arr, idx, src }
        | Insn::IndexSetF { arr, idx, src }
        | Insn::IndexSetI { arr, idx, src } => {
            f(arr);
            f(idx);
            f(src);
        }
        Insn::Arith { a, b, .. }
        | Insn::ArithII { a, b, .. }
        | Insn::ArithFF { a, b, .. }
        | Insn::Cmp { a, b, .. }
        | Insn::CmpII { a, b, .. }
        | Insn::CmpFF { a, b, .. }
        | Insn::CmpJumpFalse { a, b, .. }
        | Insn::CmpJumpFalseII { a, b, .. }
        | Insn::CmpJumpFalseFF { a, b, .. } => {
            f(a);
            f(b);
        }
        Insn::ArithK { a, .. } => f(a),
        Insn::ArithKL { b, .. } => f(b),
        Insn::IndexArith { arr, idx, rhs, .. } => {
            f(arr);
            f(idx);
            f(rhs);
        }
        Insn::ArithStore { arr, idx, a, b, .. } => {
            f(arr);
            f(idx);
            f(a);
            f(b);
        }
        Insn::FmaIdx { dst, x, arr, idx } => {
            f(dst);
            f(x);
            f(arr);
            f(idx);
        }
        Insn::JumpIfFalse { cond, .. } | Insn::JumpIfTrue { cond, .. } => f(cond),
        Insn::IncCmpJump { var, limit, .. } => {
            f(var);
            f(limit);
        }
        Insn::IncJump { var, .. } => f(var),
        Insn::Call { base, n, .. } => {
            for r in base..base + n {
                f(r);
            }
        }
        Insn::CallValue {
            callee, base, n, ..
        } => {
            f(callee);
            for r in base..base + n {
                f(r);
            }
        }
        Insn::OmpCall { base, n, .. } | Insn::Builtin { base, n, .. } | Insn::Print { base, n } => {
            for r in base..base + n {
                f(r);
            }
        }
    }
}

/// Visit every register an instruction *writes*. Call argument blocks
/// count as defs: the interpreter moves them out (`take_args` /
/// `call_fn`) and leaves `Undefined` behind.
pub(crate) fn visit_defs(insn: &Insn, mut f: impl FnMut(Reg)) {
    match *insn {
        Insn::Const { dst, .. }
        | Insn::Move { dst, .. }
        | Insn::NewCell { dst, .. }
        | Insn::CellGet { dst, .. }
        | Insn::Deref { dst, .. }
        | Insn::ElemAddr { dst, .. }
        | Insn::AddrDeref { dst, .. }
        | Insn::Index { dst, .. }
        | Insn::IndexF { dst, .. }
        | Insn::IndexI { dst, .. }
        | Insn::IndexOff { dst, .. }
        | Insn::DerefIndex { dst, .. }
        | Insn::DerefIndexOff { dst, .. }
        | Insn::DerefFmaIdx { dst, .. }
        | Insn::FmaIdxCC { dst, .. }
        | Insn::FmaGather { dst, .. }
        | Insn::Arith { dst, .. }
        | Insn::ArithII { dst, .. }
        | Insn::ArithFF { dst, .. }
        | Insn::ArithK { dst, .. }
        | Insn::ArithKL { dst, .. }
        | Insn::IndexArith { dst, .. }
        | Insn::FmaIdx { dst, .. }
        | Insn::Cmp { dst, .. }
        | Insn::CmpII { dst, .. }
        | Insn::CmpFF { dst, .. }
        | Insn::Neg { dst, .. }
        | Insn::Not { dst, .. }
        | Insn::Truthy { dst, .. } => f(dst),
        Insn::IncCmpJump { var, .. } | Insn::IncJump { var, .. } => f(var),
        Insn::Call { dst, base, n, .. } | Insn::OmpCall { dst, base, n, .. } => {
            for r in base..base + n {
                f(r);
            }
            f(dst);
        }
        Insn::CallValue { dst, base, n, .. } => {
            for r in base..base + n {
                f(r);
            }
            f(dst);
        }
        Insn::Builtin { dst, .. } => f(dst),
        Insn::CellSet { .. }
        | Insn::StorePtr { .. }
        | Insn::IndexSet { .. }
        | Insn::IndexSetF { .. }
        | Insn::IndexSetI { .. }
        | Insn::ArithStore { .. }
        | Insn::IncElemK { .. }
        | Insn::DerefIndexSet { .. }
        | Insn::DerefIncElemK { .. }
        | Insn::Jump { .. }
        | Insn::JumpIfFalse { .. }
        | Insn::JumpIfTrue { .. }
        | Insn::CmpJumpFalse { .. }
        | Insn::CmpJumpFalseII { .. }
        | Insn::CmpJumpFalseFF { .. }
        | Insn::Print { .. }
        | Insn::Trap { .. }
        | Insn::BulkLoop { .. }
        | Insn::TemplateLoop { .. }
        | Insn::Ret { .. }
        | Insn::RetVoid => {}
    }
}

pub(crate) fn jump_target(insn: &Insn) -> Option<u32> {
    match *insn {
        Insn::Jump { to }
        | Insn::JumpIfFalse { to, .. }
        | Insn::JumpIfTrue { to, .. }
        | Insn::CmpJumpFalse { to, .. }
        | Insn::CmpJumpFalseII { to, .. }
        | Insn::CmpJumpFalseFF { to, .. }
        | Insn::IncCmpJump { to, .. }
        | Insn::IncJump { to, .. } => Some(to),
        _ => None,
    }
}

/// Rewrite an instruction's jump target through an old→new index map.
fn retarget(insn: &mut Insn, map: &[u32]) {
    match insn {
        Insn::Jump { to }
        | Insn::JumpIfFalse { to, .. }
        | Insn::JumpIfTrue { to, .. }
        | Insn::CmpJumpFalse { to, .. }
        | Insn::CmpJumpFalseII { to, .. }
        | Insn::CmpJumpFalseFF { to, .. }
        | Insn::IncCmpJump { to, .. }
        | Insn::IncJump { to, .. } => *to = map[*to as usize],
        _ => {}
    }
}

/// Whether control can fall through to the next instruction.
pub(crate) fn falls_through(insn: &Insn) -> bool {
    !matches!(
        insn,
        Insn::Jump { .. }
            | Insn::IncJump { .. }
            | Insn::Trap { .. }
            | Insn::Ret { .. }
            | Insn::RetVoid
    )
}

/// Basic-block leader marks: entry, every jump target, and every
/// instruction after a branch/terminator.
pub(crate) fn leaders(code: &[Insn]) -> Vec<bool> {
    let mut l = vec![false; code.len()];
    if let Some(first) = l.first_mut() {
        *first = true;
    }
    for (i, insn) in code.iter().enumerate() {
        if let Some(t) = jump_target(insn) {
            l[t as usize] = true;
        }
        let ends_block = jump_target(insn).is_some() || !falls_through(insn);
        if ends_block && i + 1 < code.len() {
            l[i + 1] = true;
        }
    }
    l
}

// ---------------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------------

/// Prove a compiled function safe to execute with unchecked register and
/// constant access: every operand in range, every argument block inside
/// the frame, every jump target inside the stream, and a terminator (or
/// unconditional jump) last. Runs on both the raw compile output and the
/// optimized stream; the interpreter's `rg`/`kc` helpers cite this.
pub fn verify_fn(f: &CompiledFn, nfuncs: usize) -> Result<(), String> {
    let bad = |pc: usize, what: String| Err(format!("fn `{}` pc {pc}: {what}", f.name));
    if f.nregs < f.nparams {
        return bad(0, format!("nregs {} < nparams {}", f.nregs, f.nparams));
    }
    if f.code.is_empty() {
        return bad(0, "empty instruction stream".into());
    }
    let n = f.code.len();
    for (pc, insn) in f.code.iter().enumerate() {
        let mut reg_err: Option<Reg> = None;
        let mut check = |r: Reg| {
            if (r as usize) >= f.nregs && reg_err.is_none() {
                reg_err = Some(r);
            }
        };
        visit_uses(insn, &mut check);
        visit_defs(insn, &mut check);
        if let Some(r) = reg_err {
            return bad(
                pc,
                format!("register r{r} out of range (nregs {})", f.nregs),
            );
        }
        // Argument blocks: `base + n` must not overflow the frame.
        if let Insn::Call { base, n: an, .. }
        | Insn::CallValue { base, n: an, .. }
        | Insn::OmpCall { base, n: an, .. }
        | Insn::Builtin { base, n: an, .. }
        | Insn::Print { base, n: an } = *insn
        {
            if base as usize + an as usize > f.nregs {
                return bad(pc, format!("arg block r{base}..{an} beyond frame"));
            }
        }
        let kcheck = |k: u16| (k as usize) < f.consts.len();
        let kbad = match *insn {
            Insn::Const { k, .. }
            | Insn::ArithK { k, .. }
            | Insn::ArithKL { k, .. }
            | Insn::IncElemK { k, .. }
            | Insn::DerefIncElemK { k, .. } => !kcheck(k),
            Insn::Builtin { name_k, .. } => !kcheck(name_k),
            Insn::Trap { msg } => !kcheck(msg),
            _ => false,
        };
        if kbad {
            return bad(pc, "constant index out of range".into());
        }
        if let Insn::OmpCall { sym, .. } = *insn {
            if sym as usize >= f.omp_syms.len() {
                return bad(pc, format!("omp symbol s{sym} out of range"));
            }
        }
        if let Insn::Call { func, .. } = *insn {
            if func as usize >= nfuncs {
                return bad(pc, format!("function index f{func} out of range"));
            }
        }
        if let Some(t) = jump_target(insn) {
            if t as usize >= n {
                return bad(pc, format!("jump target {t} out of range"));
            }
        }
        // BulkLoop carries its registers and exit pc in the kernel
        // descriptor (the instruction itself reports no operands).
        if let Insn::BulkLoop { kidx } = *insn {
            let Some(desc) = f.kernels.get(kidx as usize) else {
                return bad(pc, format!("kernel index {kidx} out of range"));
            };
            let mut reg_err = None;
            desc.visit_regs(|r| {
                if (r as usize) >= f.nregs && reg_err.is_none() {
                    reg_err = Some(r);
                }
            });
            if let Some(r) = reg_err {
                return bad(
                    pc,
                    format!("kernel register r{r} out of range (nregs {})", f.nregs),
                );
            }
            if desc.exit as usize >= n {
                return bad(pc, format!("kernel exit pc {} out of range", desc.exit));
            }
        }
        // TemplateLoop likewise carries its registers and exit pc in
        // the template descriptor.
        if let Insn::TemplateLoop { tidx } = *insn {
            let Some(desc) = f.templates.get(tidx as usize) else {
                return bad(pc, format!("template index {tidx} out of range"));
            };
            let mut reg_err = None;
            desc.visit_regs(|r| {
                if (r as usize) >= f.nregs && reg_err.is_none() {
                    reg_err = Some(r);
                }
            });
            if let Some(r) = reg_err {
                return bad(
                    pc,
                    format!("template register r{r} out of range (nregs {})", f.nregs),
                );
            }
            if desc.exit as usize >= n {
                return bad(pc, format!("template exit pc {} out of range", desc.exit));
            }
        }
    }
    if falls_through(&f.code[n - 1]) {
        return bad(n - 1, "stream does not end in a terminator".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

/// A dense register set.
#[derive(Clone, PartialEq)]
struct BitSet {
    w: Vec<u64>,
}

impl BitSet {
    fn new(nregs: usize) -> BitSet {
        BitSet {
            w: vec![0; nregs.div_ceil(64).max(1)],
        }
    }

    fn set(&mut self, r: Reg) {
        self.w[r as usize / 64] |= 1u64 << (r as usize % 64);
    }

    fn remove(&mut self, r: Reg) {
        self.w[r as usize / 64] &= !(1u64 << (r as usize % 64));
    }

    fn contains(&self, r: Reg) -> bool {
        self.w[r as usize / 64] & (1u64 << (r as usize % 64)) != 0
    }

    /// Union in `other`; reports whether anything changed.
    fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.w.iter_mut().zip(&other.w) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
}

/// Successor instruction indices of the block-ending instruction at `end`.
pub(crate) fn succs(code: &[Insn], end: usize, out: &mut Vec<usize>) {
    out.clear();
    if let Some(t) = jump_target(&code[end]) {
        out.push(t as usize);
    }
    if falls_through(&code[end]) && end + 1 < code.len() {
        out.push(end + 1);
    }
}

/// Backward liveness: for each instruction, the registers whose current
/// value may still be read afterwards (`live_after[i]`).
fn liveness(f: &CompiledFn) -> Vec<BitSet> {
    let code = &f.code;
    let n = code.len();
    let lead = leaders(code);
    let starts: Vec<usize> = (0..n).filter(|&i| lead[i]).collect();
    let nb = starts.len();
    let mut block_of = vec![0usize; n];
    {
        let mut b = 0usize;
        for (i, bo) in block_of.iter_mut().enumerate() {
            if i > 0 && lead[i] {
                b += 1;
            }
            *bo = b;
        }
    }
    let ends: Vec<usize> = (0..nb)
        .map(|b| if b + 1 < nb { starts[b + 1] - 1 } else { n - 1 })
        .collect();
    let mut live_in = vec![BitSet::new(f.nregs); nb];
    let mut live_out = vec![BitSet::new(f.nregs); nb];
    let mut sbuf = Vec::new();
    loop {
        let mut changed = false;
        for b in (0..nb).rev() {
            succs(code, ends[b], &mut sbuf);
            let mut out = BitSet::new(f.nregs);
            for &s in &sbuf {
                out.union_with(&live_in[block_of[s]]);
            }
            let mut cur = out.clone();
            for i in (starts[b]..=ends[b]).rev() {
                visit_defs(&code[i], |d| cur.remove(d));
                visit_uses(&code[i], |u| cur.set(u));
            }
            changed |= live_out[b].union_with(&out);
            changed |= live_in[b].union_with(&cur);
        }
        if !changed {
            break;
        }
    }
    let mut live_after = vec![BitSet::new(f.nregs); n];
    for b in 0..nb {
        let mut cur = live_out[b].clone();
        for i in (starts[b]..=ends[b]).rev() {
            live_after[i] = cur.clone();
            visit_defs(&code[i], |d| cur.remove(d));
            visit_uses(&code[i], |u| cur.set(u));
        }
    }
    live_after
}

// ---------------------------------------------------------------------------
// Pass 1: constant folding + copy propagation (block-local, forward)
// ---------------------------------------------------------------------------

fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        // Bit equality so folding can't merge 0.0 and -0.0 or lose a NaN.
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

/// Find-or-append a constant; `None` if the pool index space is full.
fn pool_const(consts: &mut Vec<Value>, v: &Value) -> Option<u16> {
    for (i, c) in consts.iter().enumerate() {
        if value_eq(c, v) {
            return Some(i as u16);
        }
    }
    if consts.len() > u16::MAX as usize {
        return None;
    }
    consts.push(v.clone());
    Some((consts.len() - 1) as u16)
}

/// Redirect an instruction's single-register *reads* through the copy
/// map. Argument blocks are never rewritten (the callee moves them out of
/// their slots), and in-place update registers (`IncCmpJump`/`IncJump`
/// `var`, `FmaIdx` accumulator) stay put because they are also defs.
fn rewrite_uses(insn: &mut Insn, copy_of: &HashMap<Reg, Reg>) -> bool {
    let mut changed = false;
    let mut m = |r: &mut Reg| {
        if let Some(&s) = copy_of.get(r) {
            if s != *r {
                *r = s;
                changed = true;
            }
        }
    };
    match insn {
        Insn::Move { src, .. }
        | Insn::NewCell { src, .. }
        | Insn::AddrDeref { src, .. }
        | Insn::Neg { src, .. }
        | Insn::Not { src, .. }
        | Insn::Truthy { src, .. }
        | Insn::Ret { src } => m(src),
        Insn::CellGet { cell, .. } => m(cell),
        Insn::CellSet { cell, src } => {
            m(cell);
            m(src);
        }
        Insn::Deref { ptr, .. } => m(ptr),
        Insn::StorePtr { ptr, src } => {
            m(ptr);
            m(src);
        }
        Insn::ElemAddr { arr, idx, .. }
        | Insn::Index { arr, idx, .. }
        | Insn::IndexOff { arr, idx, .. }
        | Insn::IncElemK { arr, idx, .. } => {
            m(arr);
            m(idx);
        }
        Insn::DerefIndex { cell, idx, .. }
        | Insn::DerefIndexOff { cell, idx, .. }
        | Insn::DerefIncElemK { cell, idx, .. } => {
            m(cell);
            m(idx);
        }
        Insn::DerefIndexSet { cell, idx, src } => {
            m(cell);
            m(idx);
            m(src);
        }
        Insn::DerefFmaIdx { x, cell, idx, .. } => {
            m(x);
            m(cell);
            m(idx);
        }
        Insn::FmaIdxCC {
            x,
            acell,
            icell,
            idx,
            ..
        } => {
            m(x);
            m(acell);
            m(icell);
            m(idx);
        }
        Insn::FmaGather {
            xcell,
            acell,
            icell,
            idx,
            ..
        } => {
            m(xcell);
            m(acell);
            m(icell);
            m(idx);
        }
        Insn::IndexSet { arr, idx, src } => {
            m(arr);
            m(idx);
            m(src);
        }
        Insn::Arith { a, b, .. } | Insn::Cmp { a, b, .. } | Insn::CmpJumpFalse { a, b, .. } => {
            m(a);
            m(b);
        }
        Insn::ArithK { a, .. } => m(a),
        Insn::ArithKL { b, .. } => m(b),
        Insn::IndexArith { arr, idx, rhs, .. } => {
            m(arr);
            m(idx);
            m(rhs);
        }
        Insn::ArithStore { arr, idx, a, b, .. } => {
            m(arr);
            m(idx);
            m(a);
            m(b);
        }
        Insn::FmaIdx { x, arr, idx, .. } => {
            m(x);
            m(arr);
            m(idx);
        }
        Insn::JumpIfFalse { cond, .. } | Insn::JumpIfTrue { cond, .. } => m(cond),
        Insn::IncCmpJump { limit, .. } => m(limit),
        Insn::CallValue { callee, .. } => m(callee),
        _ => {}
    }
    changed
}

/// If `insn` is a pure register-only scalar op, return it with `dst`
/// zeroed (the available-expression key) plus the real `dst`. Indexing is
/// deliberately excluded: array contents can change between occurrences.
/// Reusing the first occurrence's result is error-safe for `Div`/`Rem`
/// too — if the first evaluation succeeded, an identical re-evaluation
/// cannot fail.
fn cse_key(insn: &Insn) -> Option<(Insn, Reg)> {
    let mut key = *insn;
    let dst = match &mut key {
        Insn::Arith { dst, .. }
        | Insn::ArithK { dst, .. }
        | Insn::ArithKL { dst, .. }
        | Insn::Cmp { dst, .. }
        | Insn::Neg { dst, .. }
        | Insn::Not { dst, .. }
        | Insn::Truthy { dst, .. } => std::mem::replace(dst, 0),
        _ => return None,
    };
    Some((key, dst))
}

// Index loops throughout: the body reads `f.code[i]` while growing
// `f.consts` (folding) and consulting positionally-keyed side tables, so
// iterator forms would fight the borrow checker for no clarity gain.
#[allow(clippy::needless_range_loop)]
/// Per-function counts of what the optimization pipeline did, reported
/// through `zag --remarks` (`remarks::collect`). Instruction-granular:
/// `folded` counts rewrites by constant folding / copy propagation,
/// `cse` pure ops replaced with a copy of an earlier identical result,
/// `dse` dead stores removed, `fused` instructions eliminated by
/// superinstruction fusion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    pub folded: u32,
    pub cse: u32,
    pub dse: u32,
    pub fused: u32,
}

impl OptStats {
    pub fn any(&self) -> bool {
        self.folded + self.cse + self.dse + self.fused > 0
    }
}

fn fold_and_copyprop(f: &mut CompiledFn, stats: &mut OptStats) -> bool {
    let lead = leaders(&f.code);
    let mut changed = false;
    let mut copy_of: HashMap<Reg, Reg> = HashMap::new();
    let mut const_of: HashMap<Reg, u16> = HashMap::new();
    let mut avail: Vec<(Insn, Reg)> = Vec::new();
    let mut defs: Vec<Reg> = Vec::new();
    for (i, &is_lead) in lead.iter().enumerate() {
        if is_lead {
            copy_of.clear();
            const_of.clear();
            avail.clear();
        }
        let mut insn = f.code[i];
        rewrite_uses(&mut insn, &copy_of);
        // Folding: only when evaluation succeeds, so ops that would raise
        // at runtime (`1/0`) keep their instruction and their error.
        match insn {
            Insn::Arith { op, dst, a, b } => {
                if let (Some(&ka), Some(&kb)) = (const_of.get(&a), const_of.get(&b)) {
                    let (ca, cb) = (&f.consts[ka as usize], &f.consts[kb as usize]);
                    if let Ok(v) = binop_arith(arith_token(op), ca, cb) {
                        if let Some(k) = pool_const(&mut f.consts, &v) {
                            insn = Insn::Const { dst, k };
                        }
                    }
                }
            }
            Insn::Cmp { op, dst, a, b } => {
                if let (Some(&ka), Some(&kb)) = (const_of.get(&a), const_of.get(&b)) {
                    let (ca, cb) = (&f.consts[ka as usize], &f.consts[kb as usize]);
                    if let Ok(v) = binop(cmp_token(op), ca, cb) {
                        if let Some(k) = pool_const(&mut f.consts, &v) {
                            insn = Insn::Const { dst, k };
                        }
                    }
                }
            }
            Insn::Neg { dst, src } => {
                if let Some(&ks) = const_of.get(&src) {
                    let v = match &f.consts[ks as usize] {
                        Value::Int(v) => Some(Value::Int(-v)),
                        Value::Float(v) => Some(Value::Float(-v)),
                        _ => None,
                    };
                    if let Some(k) = v.and_then(|v| pool_const(&mut f.consts, &v)) {
                        insn = Insn::Const { dst, k };
                    }
                }
            }
            Insn::Not { dst, src } => {
                if let Some(&ks) = const_of.get(&src) {
                    if let Ok(t) = f.consts[ks as usize].truthy() {
                        if let Some(k) = pool_const(&mut f.consts, &Value::Bool(!t)) {
                            insn = Insn::Const { dst, k };
                        }
                    }
                }
            }
            Insn::Truthy { dst, src } => {
                if let Some(&ks) = const_of.get(&src) {
                    if let Ok(t) = f.consts[ks as usize].truthy() {
                        if let Some(k) = pool_const(&mut f.consts, &Value::Bool(t)) {
                            insn = Insn::Const { dst, k };
                        }
                    }
                }
            }
            // A copy of a known constant becomes a `Const` of its own —
            // this is what exposes `ArithK` fusion across moves.
            Insn::Move { dst, src } => {
                if let Some(&k) = const_of.get(&src) {
                    insn = Insn::Const { dst, k };
                }
            }
            _ => {}
        }
        // Local CSE: a pure scalar op whose exact operands were already
        // computed this block becomes a copy of the earlier result. (The
        // `i % 4` recomputed on both sides of `h[i % 4] = h[i % 4] + 1`
        // is what stands between that store and `IncElemK` fusion.)
        let mut new_avail: Option<(Insn, Reg)> = None;
        let mut cse_hit = false;
        if let Some((key, dst)) = cse_key(&insn) {
            if let Some(&(_, src)) = avail.iter().find(|(k2, _)| *k2 == key) {
                if src != dst {
                    insn = Insn::Move { dst, src };
                    cse_hit = true;
                }
            } else {
                // Only record when `dst` is not an operand: the key names
                // pre-execution values, which a self-update invalidates.
                let mut self_ref = false;
                visit_uses(&insn, |u| self_ref |= u == dst);
                if !self_ref {
                    new_avail = Some((key, dst));
                }
            }
        }
        if insn != f.code[i] {
            f.code[i] = insn;
            changed = true;
            if cse_hit {
                stats.cse += 1;
            } else {
                stats.folded += 1;
            }
        }
        // Map maintenance: kill everything the instruction defines, then
        // record what it establishes.
        defs.clear();
        visit_defs(&insn, |d| defs.push(d));
        for &d in &defs {
            copy_of.remove(&d);
            const_of.remove(&d);
        }
        copy_of.retain(|_, s| !defs.contains(s));
        avail.retain(|(key, r)| {
            if defs.contains(r) {
                return false;
            }
            let mut stale = false;
            visit_uses(key, |u| stale |= defs.contains(&u));
            !stale
        });
        if let Some(entry) = new_avail {
            avail.push(entry);
        }
        match insn {
            Insn::Const { dst, k } => {
                const_of.insert(dst, k);
            }
            Insn::Move { dst, src } if dst != src => {
                copy_of.insert(dst, src);
            }
            _ => {}
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// Pass 2: dead-store elimination
// ---------------------------------------------------------------------------

/// Remove side-effect-free stores (`Const`, `Move`) whose destination is
/// dead, plus self-moves, then compact jump targets.
// Index loops: `keep`/`map`/`f.code` are parallel positional tables.
#[allow(clippy::needless_range_loop)]
fn dse(f: &mut CompiledFn) -> bool {
    let live = liveness(f);
    let n = f.code.len();
    let mut keep = vec![true; n];
    let mut changed = false;
    for i in 0..n {
        let dead = match f.code[i] {
            Insn::Move { dst, src } => dst == src || !live[i].contains(dst),
            Insn::Const { dst, .. } => !live[i].contains(dst),
            _ => false,
        };
        if dead {
            keep[i] = false;
            changed = true;
        }
    }
    if !changed {
        return false;
    }
    let mut map = vec![0u32; n + 1];
    let mut kept = 0u32;
    for i in 0..n {
        map[i] = kept;
        if keep[i] {
            kept += 1;
        }
    }
    map[n] = kept;
    let mut out = Vec::with_capacity(kept as usize);
    for i in 0..n {
        if keep[i] {
            let mut insn = f.code[i];
            retarget(&mut insn, &map);
            out.push(insn);
        }
    }
    f.code = out;
    true
}

// ---------------------------------------------------------------------------
// Pass 3: superinstruction fusion
// ---------------------------------------------------------------------------

/// `true` when the value the pattern left in `t` is unobservable: `t` is
/// redefined by the fused instruction itself, or not live after old
/// instruction index `at`.
fn consumed(t: Reg, redef: Reg, live: &[BitSet], at: usize) -> bool {
    t == redef || !live[at].contains(t)
}

fn no_leader(lead: &[bool], i: usize, len: usize) -> bool {
    (1..len).all(|d| !lead[i + d])
}

/// Extract a small non-negative integer constant (for `IndexOff` /
/// `IncJump` immediates). Negative constants are rejected so the slow
/// path can reconstruct the exact `+ k` / `- k` source operator.
fn small_int_const(consts: &[Value], k: u16) -> Option<i32> {
    match consts.get(k as usize) {
        Some(Value::Int(v)) if (0..=i32::MAX as i64).contains(v) => Some(*v as i32),
        _ => None,
    }
}

/// Try to fuse the instruction window starting at `i`; returns the fused
/// instruction and how many instructions it consumed.
fn try_fuse_at(
    code: &[Insn],
    consts: &[Value],
    live: &[BitSet],
    lead: &[bool],
    i: usize,
) -> Option<(Insn, usize)> {
    let w = &code[i..];
    // IncElemK: index t1,A[i]; arithk t2,t1,k; indexset A[i],t2
    if let [Insn::Index { dst: t1, arr, idx }, Insn::ArithK { op, dst: t2, a, k }, Insn::IndexSet {
        arr: arr2,
        idx: idx2,
        src,
    }, ..] = *w
    {
        if a == t1
            && src == t2
            && arr2 == arr
            && idx2 == idx
            && t1 != arr
            && t1 != idx
            && t2 != arr
            && t2 != idx
            && no_leader(lead, i, 3)
            && consumed(t1, t2, live, i + 1)
            && !live[i + 2].contains(t2)
        {
            return Some((Insn::IncElemK { op, arr, idx, k }, 3));
        }
    }
    // FmaIdx: index tp,A[i]; mul tm,x,tp; add s,s,tm
    if let [Insn::Index { dst: tp, arr, idx }, Insn::Arith {
        op: ArithOp::Mul,
        dst: tm,
        a: x,
        b,
    }, Insn::Arith {
        op: ArithOp::Add,
        dst,
        a: acc,
        b: b2,
    }, ..] = *w
    {
        let temps_distinct =
            tp != tm && ![arr, idx, x, dst].contains(&tp) && ![arr, idx, x, dst].contains(&tm);
        if b == tp
            && b2 == tm
            && acc == dst
            && temps_distinct
            && no_leader(lead, i, 3)
            && !live[i + 2].contains(tp)
            && !live[i + 2].contains(tm)
        {
            return Some((Insn::FmaIdx { dst, x, arr, idx }, 3));
        }
    }
    // DerefIncElemK: dindex t1,(C)[i]; arithk t2,t1,k; dindexset (C)[i],t2
    // (appears once the two deref fusions below have fired in an earlier
    // round — the IS ranking body on a shared array).
    if let [Insn::DerefIndex { dst: t1, cell, idx }, Insn::ArithK { op, dst: t2, a, k }, Insn::DerefIndexSet {
        cell: c2,
        idx: i2,
        src,
    }, ..] = *w
    {
        if a == t1
            && src == t2
            && c2 == cell
            && i2 == idx
            && t1 != cell
            && t1 != idx
            && t2 != cell
            && t2 != idx
            && no_leader(lead, i, 3)
            && consumed(t1, t2, live, i + 1)
            && !live[i + 2].contains(t2)
        {
            return Some((Insn::DerefIncElemK { op, cell, idx, k }, 3));
        }
    }
    // FmaIdxCC: deref t,(A); dindex t2,(C)[i]; fmaidx d += x * t[t2] — the
    // matvec gather with both arrays shared. Sound without reordering
    // hazards: the fused arm checks `acell` is a pointer at the original
    // deref position and only defers the (infallible) read.
    if let [Insn::Deref { dst: t, ptr: acell }, Insn::DerefIndex {
        dst: t2,
        cell: icell,
        idx,
    }, Insn::FmaIdx {
        dst,
        x,
        arr,
        idx: fi,
    }, ..] = *w
    {
        let temps_ok = t != t2
            && ![dst, x, acell, icell, idx].contains(&t)
            && ![dst, x, acell, icell, idx].contains(&t2);
        if arr == t
            && fi == t2
            && temps_ok
            && no_leader(lead, i, 3)
            && !live[i + 2].contains(t)
            && !live[i + 2].contains(t2)
        {
            return Some((
                Insn::FmaIdxCC {
                    dst,
                    x,
                    acell,
                    icell,
                    idx,
                },
                3,
            ));
        }
    }
    // FmaGather: dindex t,(X)[i]; fmacc d += t * (A)[(C)[i]] — the
    // multiplier gathered from a shared array at the same index (appears
    // once FmaIdxCC has formed in an earlier round).
    if let [Insn::DerefIndex {
        dst: t,
        cell: xcell,
        idx,
    }, Insn::FmaIdxCC {
        dst,
        x,
        acell,
        icell,
        idx: i2,
    }, ..] = *w
    {
        if x == t
            && i2 == idx
            && ![dst, xcell, acell, icell, idx].contains(&t)
            && no_leader(lead, i, 2)
            && !live[i + 1].contains(t)
        {
            return Some((
                Insn::FmaGather {
                    dst,
                    xcell,
                    acell,
                    icell,
                    idx,
                },
                2,
            ));
        }
    }
    // DerefFmaIdx via load-mul-add: dindex tp,(C)[i]; mul tm,x,tp; add
    // d,d,tm — the accumulate chain when the gathered array is shared
    // (`d = d + p[j] * q[j]` after `q[j]` fused to a DerefIndex).
    if let [Insn::DerefIndex { dst: tp, cell, idx }, Insn::Arith {
        op: ArithOp::Mul,
        dst: tm,
        a: x,
        b,
    }, Insn::Arith {
        op: ArithOp::Add,
        dst,
        a: acc,
        b: b2,
    }, ..] = *w
    {
        let temps_distinct =
            tp != tm && ![cell, idx, x, dst].contains(&tp) && ![cell, idx, x, dst].contains(&tm);
        if b == tp
            && b2 == tm
            && acc == dst
            && temps_distinct
            && no_leader(lead, i, 3)
            && !live[i + 2].contains(tp)
            && !live[i + 2].contains(tm)
        {
            return Some((Insn::DerefFmaIdx { dst, x, cell, idx }, 3));
        }
    }
    // DerefIndex: deref t,C; index d,t[i] — the shared-array load with the
    // cell's `Value` never materialised in a register.
    if let [Insn::Deref { dst: t, ptr: cell }, Insn::Index { dst, arr, idx }, ..] = *w {
        if arr == t
            && idx != t
            && t != cell
            && no_leader(lead, i, 2)
            && consumed(t, dst, live, i + 1)
        {
            return Some((Insn::DerefIndex { dst, cell, idx }, 2));
        }
    }
    // DerefIndexOff: deref t,C; indexoff d,t[j+off]
    if let [Insn::Deref { dst: t, ptr: cell }, Insn::IndexOff { dst, arr, idx, off }, ..] = *w {
        if arr == t
            && idx != t
            && t != cell
            && no_leader(lead, i, 2)
            && consumed(t, dst, live, i + 1)
        {
            return Some((
                Insn::DerefIndexOff {
                    dst,
                    cell,
                    idx,
                    off,
                },
                2,
            ));
        }
    }
    // DerefIndexSet: deref t,C; indexset t[i],src
    if let [Insn::Deref { dst: t, ptr: cell }, Insn::IndexSet { arr, idx, src }, ..] = *w {
        if arr == t
            && idx != t
            && src != t
            && t != cell
            && no_leader(lead, i, 2)
            && !live[i + 1].contains(t)
        {
            return Some((Insn::DerefIndexSet { cell, idx, src }, 2));
        }
    }
    // DerefFmaIdx: deref t,C; fmaidx d += x * t[i]
    if let [Insn::Deref { dst: t, ptr: cell }, Insn::FmaIdx { dst, x, arr, idx }, ..] = *w {
        if arr == t
            && t != dst
            && t != x
            && t != idx
            && t != cell
            && no_leader(lead, i, 2)
            && !live[i + 1].contains(t)
        {
            return Some((Insn::DerefFmaIdx { dst, x, cell, idx }, 2));
        }
    }
    // IndexOff: arithk t,j±k; index d,A[t]
    if let [Insn::ArithK {
        op: op @ (ArithOp::Add | ArithOp::Sub),
        dst: t,
        a: j,
        k,
    }, Insn::Index { dst, arr, idx }, ..] = *w
    {
        if idx == t && j != t && t != arr && no_leader(lead, i, 2) && consumed(t, dst, live, i + 1)
        {
            if let Some(v) = small_int_const(consts, k) {
                let off = if op == ArithOp::Add { v } else { -v };
                return Some((
                    Insn::IndexOff {
                        dst,
                        arr,
                        idx: j,
                        off,
                    },
                    2,
                ));
            }
        }
    }
    // IncJump: arithk v,v,±k; jump
    if let [Insn::ArithK {
        op: op @ (ArithOp::Add | ArithOp::Sub),
        dst: v,
        a,
        k,
    }, Insn::Jump { to }, ..] = *w
    {
        if a == v && no_leader(lead, i, 2) {
            if let Some(c) = small_int_const(consts, k) {
                let step = if op == ArithOp::Add { c } else { -c };
                return Some((Insn::IncJump { var: v, step, to }, 2));
            }
        }
    }
    // IndexArith: index t,A[i]; arith d,t,rhs  (indexed left operand)
    if let [Insn::Index { dst: t, arr, idx }, Insn::Arith { op, dst, a, b: rhs }, ..] = *w {
        if a == t
            && rhs != t
            && t != arr
            && t != idx
            && no_leader(lead, i, 2)
            && consumed(t, dst, live, i + 1)
        {
            return Some((
                Insn::IndexArith {
                    op,
                    dst,
                    arr,
                    idx,
                    rhs,
                },
                2,
            ));
        }
    }
    // ArithStore: arith t,a,b; indexset A[i],t
    if let [Insn::Arith { op, dst: t, a, b }, Insn::IndexSet { arr, idx, src }, ..] = *w {
        if src == t && t != arr && t != idx && no_leader(lead, i, 2) && !live[i + 1].contains(t) {
            return Some((Insn::ArithStore { op, arr, idx, a, b }, 2));
        }
    }
    // ArithK / ArithKL: const t,k; arith d,a,b with t as one operand
    if let [Insn::Const { dst: t, k }, Insn::Arith { op, dst, a, b }, ..] = *w {
        if no_leader(lead, i, 2) && consumed(t, dst, live, i + 1) {
            if b == t && a != t {
                return Some((Insn::ArithK { op, dst, a, k }, 2));
            }
            if a == t && b != t {
                return Some((Insn::ArithKL { op, dst, k, b }, 2));
            }
        }
    }
    // Builtin/print argument forwarding for single-argument calls: the
    // callee only *reads* a 1-slot block, so the block can alias the
    // source register directly.
    if let [Insn::Move { dst: t, src }, Insn::Builtin {
        dst,
        op,
        name_k,
        base,
        n: 1,
    }, ..] = *w
    {
        if base == t && src != t && no_leader(lead, i, 2) && consumed(t, dst, live, i + 1) {
            return Some((
                Insn::Builtin {
                    dst,
                    op,
                    name_k,
                    base: src,
                    n: 1,
                },
                2,
            ));
        }
    }
    if let [Insn::Move { dst: t, src }, Insn::Print { base, n: 1 }, ..] = *w {
        if base == t && src != t && no_leader(lead, i, 2) && !live[i + 1].contains(t) {
            return Some((Insn::Print { base: src, n: 1 }, 2));
        }
    }
    None
}

// Index loop: `map` entries for consumed window interiors are assigned
// against the moving `out.len()` cursor, not iterated.
#[allow(clippy::needless_range_loop)]
fn fuse(f: &mut CompiledFn) -> bool {
    let live = liveness(f);
    let lead = leaders(&f.code);
    let n = f.code.len();
    let mut out: Vec<Insn> = Vec::with_capacity(n);
    let mut map = vec![0u32; n + 1];
    let mut i = 0usize;
    let mut changed = false;
    while i < n {
        map[i] = out.len() as u32;
        if let Some((fused, consumed)) = try_fuse_at(&f.code, &f.consts, &live, &lead, i) {
            for j in i + 1..i + consumed {
                // Interior indices are never jump targets (no_leader), but
                // keep the map total.
                map[j] = out.len() as u32;
            }
            out.push(fused);
            i += consumed;
            changed = true;
        } else {
            out.push(f.code[i]);
            i += 1;
        }
    }
    map[n] = out.len() as u32;
    if !changed {
        return false;
    }
    for insn in &mut out {
        retarget(insn, &map);
    }
    f.code = out;
    true
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Optimize one function in place at the given level. Keeps the original
/// stream on [`CompiledFn::pre_opt`] when anything changed, and verifies
/// the result — the interpreter's unchecked register access depends on
/// every executed stream having passed [`verify_fn`].
pub fn optimize_fn(f: &mut CompiledFn, opt: OptLevel, nfuncs: usize) {
    optimize_fn_stats(f, opt, nfuncs);
}

/// [`optimize_fn`], additionally reporting what each pass did — the
/// data source for `zag --remarks`.
pub fn optimize_fn_stats(f: &mut CompiledFn, opt: OptLevel, nfuncs: usize) -> OptStats {
    let mut stats = OptStats::default();
    if opt == OptLevel::O0 {
        return stats;
    }
    let orig_code = f.code.clone();
    let orig_nconsts = f.consts.len();
    for _ in 0..8 {
        let mut changed = fold_and_copyprop(f, &mut stats);
        let pre_dse = f.code.len();
        changed |= dse(f);
        stats.dse += (pre_dse - f.code.len()) as u32;
        if opt >= OptLevel::O2 {
            let pre_fuse = f.code.len();
            changed |= fuse(f);
            stats.fused += (pre_fuse - f.code.len()) as u32;
        }
        if !changed {
            break;
        }
    }
    if f.code != orig_code {
        f.pre_opt = Some(PreOpt {
            code: orig_code,
            nconsts: orig_nconsts,
        });
    } else {
        // Nothing changed; drop any constants folding may have parked.
        f.consts.truncate(orig_nconsts);
    }
    if let Err(e) = verify_fn(f, nfuncs) {
        panic!("optimizer produced invalid bytecode: {e}");
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Image;

    fn image(src: &str, opt: OptLevel) -> Image {
        let pre = zomp_front::preprocess(src).expect("preprocess");
        let ast = zomp_front::parse(&pre).expect("parse");
        crate::compile::compile_image_opt(&ast, opt)
    }

    fn count(image: &Image, name: &str, pred: impl Fn(&Insn) -> bool) -> usize {
        image
            .get(name)
            .expect("fn")
            .code
            .iter()
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn opt0_is_untouched() {
        let src = "fn main() void { var i: i64 = 0; while (i < 10) : (i += 1) { print(i); } }";
        let img = image(src, OptLevel::O0);
        assert!(img.get("main").unwrap().pre_opt.is_none());
    }

    #[test]
    fn histogram_body_fuses_to_incelem() {
        let src = "fn main() void {
            var h: []i64 = @allocI(4);
            var i: i64 = 0;
            while (i < 100) : (i += 1) {
                h[i % 4] = h[i % 4] + 1;
            }
            print(h[0]);
        }";
        let img = image(src, OptLevel::O2);
        assert!(
            count(&img, "main", |i| matches!(i, Insn::IncElemK { .. })) >= 1,
            "expected IncElemK in:\n{}",
            crate::bytecode::disasm(&img)
        );
    }

    #[test]
    fn matvec_body_fuses_accumulate_chain() {
        let src = "fn main() void {
            var a: []f64 = @allocF(8);
            var p: []f64 = @allocF(8);
            var col: []i64 = @allocI(8);
            var rowstr: []i64 = @allocI(4);
            var s: f64 = 0.0;
            var j: i64 = 0;
            while (j < 3) : (j += 1) {
                var k: i64 = rowstr[j];
                while (k < rowstr[j + 1]) : (k += 1) {
                    s = s + a[k] * p[col[k]];
                }
            }
            print(s);
        }";
        let img = image(src, OptLevel::O2);
        let dis = crate::bytecode::disasm(&img);
        assert!(
            count(&img, "main", |i| matches!(i, Insn::FmaIdx { .. })) >= 1,
            "expected FmaIdx in:\n{dis}"
        );
        assert!(
            count(&img, "main", |i| matches!(i, Insn::IndexOff { .. })) >= 1,
            "expected IndexOff in:\n{dis}"
        );
    }

    #[test]
    fn incjump_fuses_plain_backedge() {
        // `while` guard with a non-trivial condition keeps the loop out of
        // the IncCmpJump fast shape, leaving a const+arith+jump back-edge.
        let src = "fn main() void {
            var a: []i64 = @allocI(8);
            var i: i64 = 0;
            while (i < a[0] + 8) : (i += 1) { a[1] = i; }
            print(a[1]);
        }";
        let img = image(src, OptLevel::O2);
        let f = img.get("main").unwrap();
        let has_fused_backedge = f
            .code
            .iter()
            .any(|i| matches!(i, Insn::IncJump { .. } | Insn::IncCmpJump { .. }));
        assert!(
            has_fused_backedge,
            "expected a fused back-edge in:\n{}",
            crate::bytecode::disasm_fn(f)
        );
    }

    #[test]
    fn erroring_const_op_is_not_folded() {
        let src = "fn main() void { print(1 / 0); }";
        let img = image(src, OptLevel::O2);
        let f = img.get("main").unwrap();
        assert!(
            f.code.iter().any(|i| matches!(
                i,
                Insn::Arith { .. } | Insn::ArithK { .. } | Insn::ArithKL { .. }
            )),
            "1/0 must stay a runtime op:\n{}",
            crate::bytecode::disasm_fn(f)
        );
    }

    #[test]
    fn const_fold_collapses_pure_scalars() {
        let src = "fn main() void { var x: i64 = 2 + 3 * 4; print(x); }";
        let img = image(src, OptLevel::O1);
        let f = img.get("main").unwrap();
        assert!(
            !f.code.iter().any(|i| matches!(i, Insn::Arith { .. })),
            "2 + 3*4 should fold:\n{}",
            crate::bytecode::disasm_fn(f)
        );
        assert!(f.consts.iter().any(|c| value_eq(c, &Value::Int(14))));
    }

    #[test]
    fn verify_rejects_bad_register() {
        let src = "fn main() void { print(1); }";
        let pre = zomp_front::preprocess(src).unwrap();
        let ast = zomp_front::parse(&pre).unwrap();
        let mut img = crate::compile::compile_image_opt(&ast, OptLevel::O0);
        let fi = img.by_name["main"];
        let f = &mut img.funcs[fi];
        f.code.insert(
            0,
            Insn::Move {
                dst: 0,
                src: f.nregs as Reg,
            },
        );
        assert!(verify_fn(f, 1).is_err());
    }
}
