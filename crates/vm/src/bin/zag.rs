//! `zag` — run a pragma-annotated Zag program from the command line.
//!
//! ```text
//! zag program.zag                 # preprocess + execute main()
//! zag --check p.zag               # data-sharing lint report, no execution
//! zag --check=deny p.zag          # lint; non-zero exit on any finding
//! zag --emit-preprocessed p.zag   # print the pragma-free source and exit
//! zag --trace-passes p.zag        # print every preprocessor pass, then run
//! zag --threads 8 p.zag           # set the default team size (nthreads-var)
//! zag --safety production p.zag   # Zig-style build mode for shared arrays
//! zag --trace out.json p.zag      # write a chrome://tracing event file
//! zag --metrics m.json p.zag      # write aggregated runtime counters
//! zag --backend ast p.zag         # run on the tree-walking oracle
//! zag --backend native p.zag      # bytecode + native bulk kernels (--opt=3)
//! zag --opt 0 p.zag               # bytecode optimization level (0|1|2|3)
//! zag --dump-bytecode p.zag       # print pre- and post-opt streams
//! zag --dump-ir p.zag             # print the typed block-structured IR
//! zag --remarks p.zag             # optimization remarks, no execution
//! zag --remarks=json p.zag        # same, as a JSON array
//! ```
//!
//! The execution knobs shared with the other drivers (`--backend`, `--opt`,
//! `--threads`, `--schedule`, `--safety`, `--trace`, `--metrics`,
//! `--check`) are parsed by [`zomp::ExecConfig`]; only the flags unique to
//! `zag` are matched here.

use zomp::config::CheckMode;
use zomp::ExecConfig;
use zomp_front::Diag;
use zomp_vm::{Backend, OptLevel, Vm};

fn usage() -> ! {
    eprintln!(
        "usage: zag [--check[=deny]] [--remarks[=json]] [--emit-preprocessed] [--trace-passes] \
         [--dump-ast] [--dump-bytecode] [--dump-ir] [--backend ast|bytecode|native] \
         [--opt 0|1|2|3] [--threads N] [--schedule kind[,chunk]] \
         [--safety debug|production|paranoid] [--profile[=json]] \
         [--trace FILE] [--metrics FILE] <program.zag>"
    );
    std::process::exit(2);
}

/// The single diagnostic formatter: every front-end error and every
/// analyze finding goes through here.
fn render_diag(path: &str, source: &str, diag: &Diag) -> String {
    format!("zag: {path}:{}", diag.render(source))
}

fn fail(path: &str, source: &str, diag: &Diag) -> ! {
    eprintln!("{}", render_diag(path, source, diag));
    std::process::exit(1);
}

fn main() {
    let mut emit = false;
    let mut trace = false;
    let mut dump_ast = false;
    let mut dump_bytecode = false;
    let mut dump_ir = false;
    let mut profile = false;
    let mut profile_json = false;
    // `--remarks`: None = off, Some(true) = JSON output.
    let mut remarks: Option<bool> = None;
    let mut cfg = ExecConfig::new();
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match cfg.parse_flag(&a, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("zag: {e}");
                usage();
            }
        }
        match a.as_str() {
            "--emit-preprocessed" => emit = true,
            "--trace-passes" => trace = true,
            "--dump-ast" => dump_ast = true,
            "--dump-bytecode" => dump_bytecode = true,
            "--dump-ir" => dump_ir = true,
            "--remarks" => remarks = Some(false),
            "--remarks=json" => remarks = Some(true),
            "--profile" => profile = true,
            "--profile=json" => {
                profile = true;
                profile_json = true;
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("zag: cannot read {path}: {e}");
        std::process::exit(1);
    });

    let backend = cfg.backend.map(Backend::from).unwrap_or_default();
    let opt = cfg.opt.map(OptLevel::from_index).unwrap_or_default();
    cfg.apply_global();

    if cfg.check != CheckMode::Warn {
        // Lint-only modes: parse the pragma'd source and run the
        // data-sharing analysis, nothing else.
        let ast = match zomp_front::parse(&source) {
            Ok(ast) => ast,
            Err(e) => fail(&path, &source, &e),
        };
        let findings = zomp_front::analyze(&ast, &path);
        for d in &findings {
            eprintln!("{}", render_diag(&path, &source, d));
        }
        if findings.is_empty() {
            eprintln!("zag: {path}: check clean");
        } else if cfg.check == CheckMode::Deny {
            eprintln!(
                "zag: {path}: {} finding(s); refusing to compile (--check=deny)",
                findings.len()
            );
            std::process::exit(1);
        }
        return;
    }

    if let Some(json) = remarks {
        // Remark collection recompiles with the pipeline instrumented;
        // default to --opt=3 so kernel-installed/missed remarks appear
        // unless the user pinned a lower level explicitly.
        let ropt = if cfg.opt.is_some() { opt } else { OptLevel::O3 };
        match zomp_vm::remarks::collect(&source, &path, ropt) {
            Ok(diags) => {
                if json {
                    print!("{}", zomp_vm::remarks::render_json(&diags, &source));
                } else {
                    for d in &diags {
                        println!("{}", render_diag(&path, &source, d));
                    }
                    if diags.is_empty() {
                        println!("zag: {path}: no remarks at --opt={ropt}");
                    }
                }
                return;
            }
            Err(e) => fail(&path, &source, &e),
        }
    }

    if dump_ast {
        match zomp_front::parse(&source) {
            Ok(ast) => {
                println!("{}", zomp_front::dump::dump_tree(&ast));
                return;
            }
            Err(e) => fail(&path, &source, &e),
        }
    }

    if trace {
        match zomp_front::preprocess::preprocess_trace(&source) {
            Ok((_, passes)) => {
                for (i, p) in passes.iter().enumerate() {
                    println!("=== pass {} ===\n{p}", i + 1);
                }
            }
            Err(e) => fail(&path, &source, &e),
        }
    }

    if emit {
        match zomp_front::preprocess(&source) {
            Ok(out) => {
                println!("{out}");
                return;
            }
            Err(e) => fail(&path, &source, &e),
        }
    }

    if profile {
        zomp::profile::enable();
    }

    let vm = match Vm::build(&source, Some(&path), backend, opt) {
        Ok(vm) => Vm { echo: true, ..vm },
        Err(e) => fail(&path, &source, &e),
    };

    // The lint runs as a default warning pass before execution.
    for d in &vm.program.diags {
        eprintln!("{}", render_diag(&path, &source, d));
    }

    if dump_bytecode {
        print!("{}", zomp_vm::bytecode::disasm_stages(&vm.program.code));
        return;
    }
    if dump_ir {
        print!("{}", zomp_vm::ir::dump(&vm.program.code));
        return;
    }
    if let Err(e) = vm.call_function("main", Vec::new()) {
        eprintln!("zag: {e}");
        std::process::exit(1);
    }

    if profile {
        zomp::profile::disable();
        if profile_json {
            print!("{}", zomp::profile::render_json());
        } else {
            eprintln!("\n--- region profile (gprof-style) ---");
            eprint!("{}", zomp::profile::render_report());
            eprintln!("\n--- per-construct breakdown ---");
            eprint!("{}", zomp::profile::render_breakdown());
            eprintln!("\n--- per-loop tier residency ---");
            eprint!("{}", zomp::profile::render_tiers());
        }
    }
    match zomp::trace::finish() {
        Ok(written) => {
            for p in written {
                eprintln!("zag: wrote {p}");
            }
        }
        Err(e) => {
            eprintln!("zag: could not write trace output: {e}");
            std::process::exit(1);
        }
    }
}
