//! `zag` — run a pragma-annotated Zag program from the command line.
//!
//! ```text
//! zag program.zag                 # preprocess + execute main()
//! zag --check p.zag               # data-sharing lint report, no execution
//! zag --check=deny p.zag          # lint; non-zero exit on any finding
//! zag --emit-preprocessed p.zag   # print the pragma-free source and exit
//! zag --trace-passes p.zag        # print every preprocessor pass, then run
//! zag --threads 8 p.zag           # set the default team size (nthreads-var)
//! zag --safety production p.zag   # Zig-style build mode for shared arrays
//! zag --trace out.json p.zag      # write a chrome://tracing event file
//! zag --metrics m.json p.zag      # write aggregated runtime counters
//! zag --backend ast p.zag         # run on the tree-walking oracle
//! zag --backend native p.zag      # bytecode + native bulk kernels (--opt=3)
//! zag --opt 0 p.zag               # bytecode optimization level (0|1|2|3)
//! zag --dump-bytecode p.zag       # print pre- and post-opt streams
//! zag --dump-ir p.zag             # print the typed block-structured IR
//! zag --remarks p.zag             # optimization remarks, no execution
//! zag --remarks=json p.zag        # same, as a JSON array
//! ```

use zomp::safety::SafetyMode;
use zomp_front::Diag;
use zomp_vm::{Backend, OptLevel, Vm};

fn usage() -> ! {
    eprintln!(
        "usage: zag [--check[=deny]] [--remarks[=json]] [--emit-preprocessed] [--trace-passes] \
         [--dump-ast] [--dump-bytecode] [--dump-ir] [--backend ast|bytecode|native] \
         [--opt 0|1|2|3] [--threads N] [--safety debug|production|paranoid] [--profile[=json]] \
         [--trace FILE] [--metrics FILE] <program.zag>"
    );
    std::process::exit(2);
}

/// How `--check` findings gate execution.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CheckMode {
    /// Default run mode: print findings as warnings, then execute.
    Warn,
    /// `--check`: report findings and exit without executing.
    Report,
    /// `--check=deny`: report findings; any finding refuses compilation
    /// with a non-zero exit.
    Deny,
}

/// The single diagnostic formatter: every front-end error and every
/// analyze finding goes through here.
fn render_diag(path: &str, source: &str, diag: &Diag) -> String {
    format!("zag: {path}:{}", diag.render(source))
}

fn fail(path: &str, source: &str, diag: &Diag) -> ! {
    eprintln!("{}", render_diag(path, source, diag));
    std::process::exit(1);
}

fn main() {
    let mut emit = false;
    let mut trace = false;
    let mut dump_ast = false;
    let mut dump_bytecode = false;
    let mut dump_ir = false;
    let mut profile = false;
    let mut profile_json = false;
    let mut check = CheckMode::Warn;
    // `--remarks`: None = off, Some(true) = JSON output.
    let mut remarks: Option<bool> = None;
    let mut backend = Backend::default();
    let mut opt = OptLevel::default();
    let mut opt_explicit = false;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--emit-preprocessed" => emit = true,
            "--trace-passes" => trace = true,
            "--dump-ast" => dump_ast = true,
            "--dump-bytecode" => dump_bytecode = true,
            "--dump-ir" => dump_ir = true,
            "--check" => check = CheckMode::Report,
            "--check=deny" => check = CheckMode::Deny,
            "--remarks" => remarks = Some(false),
            "--remarks=json" => remarks = Some(true),
            "--backend" => {
                backend = args
                    .next()
                    .as_deref()
                    .and_then(Backend::parse)
                    .unwrap_or_else(|| usage());
            }
            _ if a.starts_with("--backend=") => {
                backend = Backend::parse(&a["--backend=".len()..]).unwrap_or_else(|| usage());
            }
            "--opt" => {
                opt = args
                    .next()
                    .as_deref()
                    .and_then(OptLevel::parse)
                    .unwrap_or_else(|| usage());
                opt_explicit = true;
            }
            _ if a.starts_with("--opt=") => {
                opt = OptLevel::parse(&a["--opt=".len()..]).unwrap_or_else(|| usage());
                opt_explicit = true;
            }
            "--profile" => profile = true,
            "--profile=json" => {
                profile = true;
                profile_json = true;
            }
            "--trace" => {
                let f = args.next().unwrap_or_else(|| usage());
                zomp::trace::set_trace_path(&f);
            }
            "--metrics" => {
                let f = args.next().unwrap_or_else(|| usage());
                zomp::trace::set_metrics_path(&f);
            }
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                zomp::omp::set_num_threads(n);
            }
            "--safety" => {
                let mode = match args.next().as_deref() {
                    Some("debug") => SafetyMode::Debug,
                    Some("production") => SafetyMode::Production,
                    Some("paranoid") => SafetyMode::Paranoid,
                    _ => usage(),
                };
                zomp::safety::set_safety_mode(mode);
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("zag: cannot read {path}: {e}");
        std::process::exit(1);
    });

    if check != CheckMode::Warn {
        // Lint-only modes: parse the pragma'd source and run the
        // data-sharing analysis, nothing else.
        let ast = match zomp_front::parse(&source) {
            Ok(ast) => ast,
            Err(e) => fail(&path, &source, &e),
        };
        let findings = zomp_front::analyze(&ast, &path);
        for d in &findings {
            eprintln!("{}", render_diag(&path, &source, d));
        }
        if findings.is_empty() {
            eprintln!("zag: {path}: check clean");
        } else if check == CheckMode::Deny {
            eprintln!(
                "zag: {path}: {} finding(s); refusing to compile (--check=deny)",
                findings.len()
            );
            std::process::exit(1);
        }
        return;
    }

    if let Some(json) = remarks {
        // Remark collection recompiles with the pipeline instrumented;
        // default to --opt=3 so kernel-installed/missed remarks appear
        // unless the user pinned a lower level explicitly.
        let ropt = if opt_explicit { opt } else { OptLevel::O3 };
        match zomp_vm::remarks::collect(&source, &path, ropt) {
            Ok(diags) => {
                if json {
                    print!("{}", zomp_vm::remarks::render_json(&diags, &source));
                } else {
                    for d in &diags {
                        println!("{}", render_diag(&path, &source, d));
                    }
                    if diags.is_empty() {
                        println!("zag: {path}: no remarks at --opt={ropt}");
                    }
                }
                return;
            }
            Err(e) => fail(&path, &source, &e),
        }
    }

    if dump_ast {
        match zomp_front::parse(&source) {
            Ok(ast) => {
                println!("{}", zomp_front::dump::dump_tree(&ast));
                return;
            }
            Err(e) => fail(&path, &source, &e),
        }
    }

    if trace {
        match zomp_front::preprocess::preprocess_trace(&source) {
            Ok((_, passes)) => {
                for (i, p) in passes.iter().enumerate() {
                    println!("=== pass {} ===\n{p}", i + 1);
                }
            }
            Err(e) => fail(&path, &source, &e),
        }
    }

    if emit {
        match zomp_front::preprocess(&source) {
            Ok(out) => {
                println!("{out}");
                return;
            }
            Err(e) => fail(&path, &source, &e),
        }
    }

    if profile {
        zomp::profile::enable();
    }

    let vm = match Vm::build(&source, Some(&path), backend, opt) {
        Ok(vm) => Vm { echo: true, ..vm },
        Err(e) => fail(&path, &source, &e),
    };

    // The lint runs as a default warning pass before execution.
    for d in &vm.program.diags {
        eprintln!("{}", render_diag(&path, &source, d));
    }

    if dump_bytecode {
        print!("{}", zomp_vm::bytecode::disasm_stages(&vm.program.code));
        return;
    }
    if dump_ir {
        print!("{}", zomp_vm::ir::dump(&vm.program.code));
        return;
    }
    if let Err(e) = vm.call_function("main", Vec::new()) {
        eprintln!("zag: {e}");
        std::process::exit(1);
    }

    if profile {
        zomp::profile::disable();
        if profile_json {
            print!("{}", zomp::profile::render_json());
        } else {
            eprintln!("\n--- region profile (gprof-style) ---");
            eprint!("{}", zomp::profile::render_report());
            eprintln!("\n--- per-construct breakdown ---");
            eprint!("{}", zomp::profile::render_breakdown());
            eprintln!("\n--- per-loop tier residency ---");
            eprint!("{}", zomp::profile::render_tiers());
        }
    }
    match zomp::trace::finish() {
        Ok(written) => {
            for p in written {
                eprintln!("zag: wrote {p}");
            }
        }
        Err(e) => {
            eprintln!("zag: could not write trace output: {e}");
            std::process::exit(1);
        }
    }
}
