//! Static type inference over the block-structured IR and the
//! Int/Float specialization pass driven by it (`--opt>=2`).
//!
//! The interpreter historically discovered slot types at runtime:
//! the first execution of a generic [`Insn::Arith`] inspects its
//! operands and quickens itself into [`Insn::ArithII`] /
//! [`Insn::ArithFF`]. That works, but every hot loop pays one generic
//! dispatch per site per thread, and the bytecode stream the native
//! tier ([`crate::kernels`]) wants to pattern-match is only in its
//! final shape after warm-up. This pass computes the same facts
//! *statically*: a forward dataflow over [`crate::ir`] basic blocks
//! assigns every register a lattice type per block entry, and every
//! Arith/Cmp/Index/IndexSet site whose operands are provably
//! Int/Float gets its specialized opcode emitted directly. Runtime
//! quickening remains in place for the slots inference leaves
//! [`Ty::Dynamic`] — and for the (sound but conservative) case where
//! inference is wrong about nothing: the specialized opcodes keep
//! their deopt arms, so a mis-specialized site falls back to the
//! generic instruction instead of misbehaving.
//!
//! The lattice is deliberately flat: `Bottom < {Int, Float, Bool, …}
//! < Dynamic`. Joining two different concrete types goes straight to
//! `Dynamic`, except inside the pointer and reduction families which
//! collapse to their generic member (`Ptr` / `Red`) first. Calls are
//! handled with interprocedural summaries computed to fixpoint across
//! the image: a return type per function, and a parameter-type vector
//! seeded from (in priority order) the source-level type annotations
//! the parser recorded, then the join of every internal `Call` /
//! `fork_call` argument. Parameters with neither — entry points only
//! reachable from the host, and functions whose `Fn` value escapes
//! first-class — stay `Dynamic`.
//!
//! Annotation-seeded and cell-content types (`*f64` params, `NewCell`
//! of a known scalar) are *speculative*: Zag does not enforce
//! annotations at call boundaries, and an aliased `CellSet` can
//! change a cell's pointee type at any time. That is safe here for
//! the same reason quickening is: every consumer of these facts —
//! the specialized opcodes and the native kernels — re-checks types
//! at runtime and deopts to the generic path, so a wrong guess costs
//! speed, never behavior.

use crate::bytecode::{BuiltinOp, CompiledFn, Image, Insn, PreOpt, Reg};
use crate::ir;
use crate::optimize::verify_fn;
use crate::value::Value;

/// Static type of a register slot. One variant per runtime
/// [`Value`] shape the specializer cares about, plus the two lattice
/// extremes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ty {
    /// Dataflow ⊥: no path has defined this slot yet. Never appears
    /// in the entry environment of a reachable block.
    Bottom,
    Int,
    Float,
    Bool,
    Str,
    /// `[]f64` shared array.
    ArrF,
    /// `[]i64` shared array.
    ArrI,
    /// Boxed scalar cell (`Value::Ptr`) of unknown pointee type.
    Ptr,
    /// Pointer to an `f64`: a cell currently holding a float, or an
    /// element pointer — either way `.*` yields `Float`. Speculative
    /// (see module docs).
    PtrF,
    /// Pointer to an `i64`.
    PtrI,
    /// Boxed shared array (`NewCell` of a `[]f64`): `.*` yields
    /// `ArrF`. The preprocessor boxes every `shared(...)` array this
    /// way, so the outlined-body cells dominating NPB loops land here.
    /// Speculative like the scalar cell types (see module docs).
    PtrAF,
    /// Boxed `[]i64` shared array.
    PtrAI,
    /// Element pointer into a `[]f64` (`&a[i]`).
    ElemPtrF,
    /// Element pointer into a `[]i64`.
    ElemPtrI,
    /// First-class function reference.
    FnRef,
    Void,
    /// Slot not yet initialised at runtime (`Value::Undefined`).
    Undef,
    /// Reduction handle of unknown element type.
    Red,
    /// Reduction handle over `i64` (seed was provably Int).
    RedI,
    /// Reduction handle over `f64`.
    RedF,
    /// Work-sharing iterator handle.
    Ws,
    /// Dataflow ⊤: statically unknown; runtime quickening owns it.
    Dynamic,
}

impl Ty {
    /// Lattice join: `⊥ ∨ t = t`, `t ∨ t = t`; mismatches inside the
    /// pointer family collapse to the widest member that still derefs
    /// usefully (`PtrF`/`PtrI` when the pointee agrees, else `Ptr`),
    /// reduction handles collapse to `Red`, anything else is
    /// `Dynamic`.
    pub fn join(self, other: Ty) -> Ty {
        use Ty::*;
        match (self, other) {
            (Bottom, t) | (t, Bottom) => t,
            (a, b) if a == b => a,
            (PtrF | ElemPtrF, PtrF | ElemPtrF) => PtrF,
            (PtrI | ElemPtrI, PtrI | ElemPtrI) => PtrI,
            (
                Ptr | PtrF | PtrI | PtrAF | PtrAI | ElemPtrF | ElemPtrI,
                Ptr | PtrF | PtrI | PtrAF | PtrAI | ElemPtrF | ElemPtrI,
            ) => Ptr,
            (Red | RedI | RedF, Red | RedI | RedF) => Red,
            _ => Dynamic,
        }
    }

    /// Short stable name used by the `--dump-ir` pretty-printer.
    pub fn name(self) -> &'static str {
        match self {
            Ty::Bottom => "none",
            Ty::Int => "i64",
            Ty::Float => "f64",
            Ty::Bool => "bool",
            Ty::Str => "str",
            Ty::ArrF => "[]f64",
            Ty::ArrI => "[]i64",
            Ty::Ptr => "*any",
            Ty::PtrF => "ptr.f64",
            Ty::PtrI => "ptr.i64",
            Ty::PtrAF => "ptr.[]f64",
            Ty::PtrAI => "ptr.[]i64",
            Ty::ElemPtrF => "*f64",
            Ty::ElemPtrI => "*i64",
            Ty::FnRef => "fn",
            Ty::Void => "void",
            Ty::Undef => "undef",
            Ty::Red => "red",
            Ty::RedI => "red.i64",
            Ty::RedF => "red.f64",
            Ty::Ws => "ws",
            Ty::Dynamic => "dyn",
        }
    }

    fn of_const(v: &Value) -> Ty {
        match v {
            Value::Int(_) => Ty::Int,
            Value::Float(_) => Ty::Float,
            Value::Bool(_) => Ty::Bool,
            Value::Str(_) => Ty::Str,
            Value::Fn(_) => Ty::FnRef,
            Value::Void => Ty::Void,
            Value::Undefined => Ty::Undef,
            _ => Ty::Dynamic,
        }
    }

    /// Static type named by a source-level annotation, `None` for
    /// `any` and everything we do not model. `*f64`/`*i64` map to the
    /// pointee-typed pointer variants: a `&local` argument and a
    /// `&arr[i]` element pointer both deref to the annotated scalar.
    pub fn of_decl(s: &str) -> Option<Ty> {
        Some(match s {
            "i64" => Ty::Int,
            "f64" => Ty::Float,
            "bool" => Ty::Bool,
            "str" => Ty::Str,
            "[]f64" => Ty::ArrF,
            "[]i64" => Ty::ArrI,
            "*f64" => Ty::PtrF,
            "*i64" => Ty::PtrI,
            _ => return None,
        })
    }
}

/// Inference result for one function.
pub struct FnTypes {
    /// Register types at each block entry; `None` = block is
    /// statically unreachable.
    pub entry: Vec<Option<Vec<Ty>>>,
    /// Join of all reachable `ret` sources (`Bottom` if the function
    /// never returns normally).
    pub ret: Ty,
}

/// Inference result for a whole image.
pub struct ImageTypes {
    /// Per-function block-entry environments, indexed like
    /// `image.funcs`.
    pub fns: Vec<FnTypes>,
    /// Per-function return-type summaries (the fixpoint the `fns`
    /// environments were computed against).
    pub rets: Vec<Ty>,
    /// Per-function parameter-type summaries: annotation pins plus
    /// internal call-site evidence, `Dynamic` where neither exists.
    pub params: Vec<Vec<Ty>>,
}

/// Run type inference over every function, iterating the
/// interprocedural return and parameter summaries to fixpoint.
pub fn infer_image(image: &Image) -> ImageTypes {
    let firs: Vec<ir::FnIr> = image.funcs.iter().map(ir::lift).collect();
    let n = image.funcs.len();
    let mut rets = vec![Ty::Bottom; n];
    // A function whose `Fn` const appears in some pool is usable
    // first-class: it can be stored, passed around, and invoked via
    // `CallValue` with arguments we cannot enumerate. Compiler-
    // generated outlined bodies are exempt — their consts pair only
    // with `fork_call`, whose arguments the seeding pass reads.
    let mut open = vec![false; n];
    for f in &image.funcs {
        for v in &f.consts {
            if let Value::Fn(name) = v {
                if let Some(&fi) = image.by_name.get(&**name) {
                    if !image.funcs[fi].name.starts_with("__omp_outlined_") {
                        open[fi] = true;
                    }
                }
            }
        }
    }
    // Source annotations pin a parameter's type outright (speculative,
    // deopt-guarded — see module docs); everything else accumulates
    // call-site evidence starting from ⊥.
    let pins: Vec<Vec<Option<Ty>>> = image
        .funcs
        .iter()
        .map(|f| f.param_tys.iter().map(|s| Ty::of_decl(s)).collect())
        .collect();
    let mut params: Vec<Vec<Ty>> = image
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| {
            (0..f.nparams)
                .map(|j| match pins[i].get(j) {
                    Some(&Some(t)) => t,
                    _ if open[i] => Ty::Dynamic,
                    _ => Ty::Bottom,
                })
                .collect()
        })
        .collect();
    loop {
        let mut fns = Vec::with_capacity(n);
        let mut changed = false;
        for (i, f) in image.funcs.iter().enumerate() {
            let ft = infer_fn(f, &firs[i], &rets, &params[i]);
            let joined = rets[i].join(ft.ret);
            if joined != rets[i] {
                rets[i] = joined;
                changed = true;
            }
            fns.push(ft);
        }
        for (i, f) in image.funcs.iter().enumerate() {
            seed_params(
                f,
                &firs[i],
                &fns[i],
                &rets,
                image,
                &pins,
                &mut params,
                &mut changed,
            );
        }
        // Summaries only ever move up the lattice, so this converges
        // in a handful of rounds.
        if changed {
            continue;
        }
        // A parameter still ⊥ has no internal caller and never will:
        // the function is only reachable from the host, which can
        // pass anything. Promoting may widen return summaries, so
        // fall through into another fixpoint round.
        let mut promoted = false;
        for p in params.iter_mut().flat_map(|v| v.iter_mut()) {
            if *p == Ty::Bottom {
                *p = Ty::Dynamic;
                promoted = true;
            }
        }
        if !promoted {
            return ImageTypes { fns, rets, params };
        }
    }
}

/// Register written by an instruction, if any — used to invalidate
/// the `Fn`-const tracking in [`seed_params`].
fn written_reg(insn: &Insn) -> Option<Reg> {
    match *insn {
        Insn::Const { dst, .. }
        | Insn::Move { dst, .. }
        | Insn::NewCell { dst, .. }
        | Insn::CellGet { dst, .. }
        | Insn::Deref { dst, .. }
        | Insn::ElemAddr { dst, .. }
        | Insn::AddrDeref { dst, .. }
        | Insn::Index { dst, .. }
        | Insn::IndexOff { dst, .. }
        | Insn::IndexF { dst, .. }
        | Insn::IndexI { dst, .. }
        | Insn::Arith { dst, .. }
        | Insn::ArithII { dst, .. }
        | Insn::ArithFF { dst, .. }
        | Insn::ArithK { dst, .. }
        | Insn::ArithKL { dst, .. }
        | Insn::IndexArith { dst, .. }
        | Insn::FmaIdx { dst, .. }
        | Insn::DerefFmaIdx { dst, .. }
        | Insn::FmaIdxCC { dst, .. }
        | Insn::FmaGather { dst, .. }
        | Insn::DerefIndex { dst, .. }
        | Insn::DerefIndexOff { dst, .. }
        | Insn::Cmp { dst, .. }
        | Insn::CmpII { dst, .. }
        | Insn::CmpFF { dst, .. }
        | Insn::Neg { dst, .. }
        | Insn::Not { dst, .. }
        | Insn::Truthy { dst, .. }
        | Insn::Call { dst, .. }
        | Insn::CallValue { dst, .. }
        | Insn::OmpCall { dst, .. }
        | Insn::Builtin { dst, .. } => Some(dst),
        Insn::IncCmpJump { var, .. } | Insn::IncJump { var, .. } => Some(var),
        _ => None,
    }
}

/// Join call-site argument evidence into the parameter summaries.
/// Walks every reachable block with the converged environments,
/// tracking which registers provably hold a specific `Fn` const so
/// `fork_call` and `CallValue` callees resolve without a CFG walk
/// (the const is emitted adjacent to its use by codegen; losing track
/// across a block boundary just costs evidence, never correctness).
#[allow(clippy::too_many_arguments)]
fn seed_params(
    f: &CompiledFn,
    fir: &ir::FnIr,
    types: &FnTypes,
    rets: &[Ty],
    image: &Image,
    pins: &[Vec<Option<Ty>>],
    params: &mut [Vec<Ty>],
    changed: &mut bool,
) {
    let join_arg = |params: &mut [Vec<Ty>], fi: usize, j: usize, t: Ty, changed: &mut bool| {
        if pins[fi].get(j).is_some_and(|p| p.is_some()) {
            return; // annotation pin wins over evidence
        }
        if let Some(slot) = params[fi].get_mut(j) {
            let joined = slot.join(t);
            if joined != *slot {
                *slot = joined;
                *changed = true;
            }
        }
    };
    for (b, blk) in fir.blocks.iter().enumerate() {
        let Some(entry) = &types.entry[b] else {
            continue;
        };
        let mut env = entry.clone();
        let mut known_fn: Vec<Option<usize>> = vec![None; f.nregs];
        for insn in &f.code[blk.start..=blk.end] {
            // New Fn-const knowledge this instruction establishes.
            let kf = match *insn {
                Insn::Const { dst, k } => Some((
                    dst,
                    match &f.consts[k as usize] {
                        Value::Fn(name) => image.by_name.get(&**name).copied(),
                        _ => None,
                    },
                )),
                Insn::Move { dst, src } => Some((dst, known_fn[src as usize])),
                _ => None,
            };
            match *insn {
                Insn::Call { func, base, n, .. } => {
                    let fi = func as usize;
                    for j in 0..(n as usize).min(image.funcs[fi].nparams) {
                        join_arg(params, fi, j, env[base as usize + j], changed);
                    }
                }
                Insn::CallValue {
                    callee, base, n, ..
                } => {
                    if let Some(fi) = known_fn[callee as usize] {
                        for j in 0..(n as usize).min(image.funcs[fi].nparams) {
                            join_arg(params, fi, j, env[base as usize + j], changed);
                        }
                    }
                    // Unknown callee: the target's Fn value escaped
                    // first-class, so `open` already made it Dynamic.
                }
                Insn::OmpCall { sym, base, n, .. }
                    if matches!(f.omp_syms[sym as usize].as_slice(),
                        [a, b] if a == "internal" && b == "fork_call") =>
                {
                    // fork_call([label,] nt, fname, args...): the label
                    // is statically a Str const when present, nt an
                    // Int; anything else means we cannot trust the
                    // layout, so contribute no evidence.
                    let b0 = base as usize;
                    let fnpos = match env.get(b0) {
                        Some(Ty::Str) => Some(b0 + 2),
                        Some(Ty::Int) => Some(b0 + 1),
                        _ => None,
                    };
                    if let Some(fnpos) = fnpos.filter(|&p| p < b0 + n as usize) {
                        if let Some(fi) = known_fn[fnpos] {
                            let nargs = b0 + n as usize - (fnpos + 1);
                            for j in 0..nargs.min(image.funcs[fi].nparams) {
                                join_arg(params, fi, j, env[fnpos + 1 + j], changed);
                            }
                        }
                    }
                }
                _ => {}
            }
            transfer(insn, &mut env, f, rets);
            match kf {
                Some((d, v)) => known_fn[d as usize] = v,
                None => {
                    if let Some(d) = written_reg(insn) {
                        known_fn[d as usize] = None;
                    }
                }
            }
            // Argument windows are consumed by calls; their Fn-const
            // knowledge dies with them.
            if let Insn::Call { base, n, .. }
            | Insn::CallValue { base, n, .. }
            | Insn::OmpCall { base, n, .. } = *insn
            {
                for r in base..base + n as Reg {
                    known_fn[r as usize] = None;
                }
            }
        }
    }
}

/// Forward dataflow over one function's blocks.
fn infer_fn(f: &CompiledFn, fir: &ir::FnIr, rets: &[Ty], params: &[Ty]) -> FnTypes {
    let nb = fir.blocks.len();
    let mut entry: Vec<Option<Vec<Ty>>> = vec![None; nb];
    // Runtime truth at function entry: parameters hold caller values
    // (typed by the interprocedural summary), every other slot is
    // Value::Undefined.
    let mut env0 = vec![Ty::Undef; f.nregs];
    for (j, t) in env0.iter_mut().take(f.nparams).enumerate() {
        *t = params.get(j).copied().unwrap_or(Ty::Dynamic);
    }
    entry[0] = Some(env0);
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let mut env = entry[b].clone().expect("worklist block has env");
        let blk = &fir.blocks[b];
        for insn in &f.code[blk.start..=blk.end] {
            transfer(insn, &mut env, f, rets);
        }
        for &s in &blk.succs {
            match &mut entry[s] {
                Some(e) => {
                    let mut widened = false;
                    for (old, new) in e.iter_mut().zip(&env) {
                        let j = old.join(*new);
                        if j != *old {
                            *old = j;
                            widened = true;
                        }
                    }
                    if widened && !work.contains(&s) {
                        work.push(s);
                    }
                }
                None => {
                    entry[s] = Some(env.clone());
                    work.push(s);
                }
            }
        }
    }
    // Collect the return summary in a final deterministic pass now
    // that the environments have converged.
    let mut ret = Ty::Bottom;
    for (b, e) in entry.iter().enumerate() {
        let Some(e) = e else { continue };
        let mut env = e.clone();
        let blk = &fir.blocks[b];
        for insn in &f.code[blk.start..=blk.end] {
            match insn {
                Insn::Ret { src } => ret = ret.join(env[*src as usize]),
                Insn::RetVoid => ret = ret.join(Ty::Void),
                _ => {}
            }
            transfer(insn, &mut env, f, rets);
        }
    }
    FnTypes { entry, ret }
}

/// Result type of a binary arithmetic op given operand types. Mixed
/// or non-numeric operands raise at runtime, so `Dynamic` (the dst is
/// then never observed) is sound.
fn arith_ty(a: Ty, b: Ty) -> Ty {
    match (a, b) {
        (Ty::Int, Ty::Int) => Ty::Int,
        (Ty::Float, Ty::Float) => Ty::Float,
        _ => Ty::Dynamic,
    }
}

/// Element type of an indexed array.
fn elem_ty(arr: Ty) -> Ty {
    match arr {
        Ty::ArrF => Ty::Float,
        Ty::ArrI => Ty::Int,
        _ => Ty::Dynamic,
    }
}

/// Reduction-handle type for a seed value type.
fn red_of(seed: Ty) -> Ty {
    match seed {
        Ty::Int => Ty::RedI,
        Ty::Float => Ty::RedF,
        _ => Ty::Red,
    }
}

/// Element type carried by a reduction handle.
fn red_elem(h: Ty) -> Ty {
    match h {
        Ty::RedI => Ty::Int,
        Ty::RedF => Ty::Float,
        _ => Ty::Dynamic,
    }
}

/// Return type of an `omp.*` runtime call, by symbol path. `env`,
/// `base` give the argument types at the site — the reduction
/// builtins' results are typed by their seed/handle argument.
fn omp_ret_ty(path: &[String], env: &[Ty], base: Reg) -> Ty {
    let parts: Vec<&str> = path.iter().map(|s| s.as_str()).collect();
    let arg = |i: usize| env.get(base as usize + i).copied().unwrap_or(Ty::Dynamic);
    match parts.as_slice() {
        ["internal", name] => match *name {
            "ws_next" | "is_master" | "single_begin" => Ty::Bool,
            "ws_lb" | "ws_ub" | "trip_count" | "if_threads" => Ty::Int,
            "ws_begin" | "ws_begin_bulk" => Ty::Ws,
            "red_cell" | "red_loop_begin" => red_of(arg(1)),
            "red_identity" | "red_get" | "red_loop_end" => red_elem(arg(0)),
            "ws_fini" | "barrier" | "single_end" | "critical_enter" | "critical_exit"
            | "atomic_rmw" | "red_combine" | "fork_call" => Ty::Void,
            _ => Ty::Dynamic,
        },
        [name] => match *name {
            "get_thread_num" | "get_num_threads" | "get_max_threads" | "get_num_procs"
            | "get_level" => Ty::Int,
            "in_parallel" => Ty::Bool,
            "get_wtime" => Ty::Float,
            "set_num_threads" => Ty::Void,
            _ => Ty::Dynamic,
        },
        _ => Ty::Dynamic,
    }
}

/// Apply one instruction's effect to the environment. Must
/// over-approximate the interpreter (including every quickened
/// variant, which share the generic semantics).
fn transfer(insn: &Insn, env: &mut [Ty], f: &CompiledFn, rets: &[Ty]) {
    let get = |env: &[Ty], r: Reg| env[r as usize];
    let set = |env: &mut [Ty], r: Reg, t: Ty| env[r as usize] = t;
    // Argument windows are consumed by take_args, leaving Undefined.
    let clear_args = |env: &mut [Ty], base: Reg, n: u16| {
        for r in base..base + n as Reg {
            env[r as usize] = Ty::Undef;
        }
    };
    match *insn {
        Insn::Const { dst, k } => set(env, dst, Ty::of_const(&f.consts[k as usize])),
        Insn::Move { dst, src } => set(env, dst, get(env, src)),
        Insn::NewCell { dst, src } => {
            // The cell's pointee type is the boxed value's type at
            // creation — speculative past any aliased CellSet (module
            // docs), which the deopt arms absorb.
            let t = match get(env, src) {
                Ty::Float => Ty::PtrF,
                Ty::Int => Ty::PtrI,
                Ty::ArrF => Ty::PtrAF,
                Ty::ArrI => Ty::PtrAI,
                _ => Ty::Ptr,
            };
            set(env, dst, t);
        }
        Insn::CellGet { dst, cell } => {
            let t = match get(env, cell) {
                Ty::PtrF => Ty::Float,
                Ty::PtrI => Ty::Int,
                Ty::PtrAF => Ty::ArrF,
                Ty::PtrAI => Ty::ArrI,
                _ => Ty::Dynamic,
            };
            set(env, dst, t);
        }
        Insn::CellSet { .. } | Insn::StorePtr { .. } => {}
        Insn::Deref { dst, ptr } => {
            let t = match get(env, ptr) {
                Ty::ElemPtrF | Ty::PtrF => Ty::Float,
                Ty::ElemPtrI | Ty::PtrI => Ty::Int,
                Ty::PtrAF => Ty::ArrF,
                Ty::PtrAI => Ty::ArrI,
                _ => Ty::Dynamic,
            };
            set(env, dst, t);
        }
        Insn::ElemAddr { dst, arr, .. } => {
            let t = match get(env, arr) {
                Ty::ArrF => Ty::ElemPtrF,
                Ty::ArrI => Ty::ElemPtrI,
                _ => Ty::Dynamic,
            };
            set(env, dst, t);
        }
        Insn::AddrDeref { dst, src } => {
            let t = match get(env, src) {
                t @ (Ty::Ptr | Ty::PtrF | Ty::PtrI | Ty::PtrAF | Ty::PtrAI | Ty::ElemPtrF
                | Ty::ElemPtrI) => t,
                _ => Ty::Dynamic,
            };
            set(env, dst, t);
        }
        Insn::Index { dst, arr, .. } | Insn::IndexOff { dst, arr, .. } => {
            let t = elem_ty(get(env, arr));
            set(env, dst, t);
        }
        Insn::IndexF { dst, .. } => set(env, dst, Ty::Float),
        Insn::IndexI { dst, .. } => set(env, dst, Ty::Int),
        Insn::IndexSet { .. } | Insn::IndexSetF { .. } | Insn::IndexSetI { .. } => {}
        Insn::Arith { op: _, dst, a, b }
        | Insn::ArithII { op: _, dst, a, b }
        | Insn::ArithFF { op: _, dst, a, b } => {
            let t = arith_ty(get(env, a), get(env, b));
            set(env, dst, t);
        }
        Insn::ArithK { op: _, dst, a, k } => {
            let t = arith_ty(get(env, a), Ty::of_const(&f.consts[k as usize]));
            set(env, dst, t);
        }
        Insn::ArithKL { op: _, dst, k, b } => {
            let t = arith_ty(Ty::of_const(&f.consts[k as usize]), get(env, b));
            set(env, dst, t);
        }
        Insn::IndexArith { dst, arr, rhs, .. } => {
            let t = arith_ty(elem_ty(get(env, arr)), get(env, rhs));
            set(env, dst, t);
        }
        Insn::ArithStore { .. } | Insn::IncElemK { .. } | Insn::DerefIncElemK { .. } => {}
        Insn::FmaIdx { dst, x, arr, .. } => {
            let prod = arith_ty(get(env, x), elem_ty(get(env, arr)));
            let t = arith_ty(get(env, dst), prod);
            set(env, dst, t);
        }
        Insn::DerefFmaIdx { dst, .. }
        | Insn::FmaIdxCC { dst, .. }
        | Insn::FmaGather { dst, .. } => {
            // Float-only fused accumulators; the result joins the
            // accumulator with a gathered product whose types the
            // runtime re-checks anyway.
            set(env, dst, Ty::Dynamic);
        }
        Insn::DerefIndex { dst, cell, .. } | Insn::DerefIndexOff { dst, cell, .. } => {
            let t = match get(env, cell) {
                Ty::PtrAF => Ty::Float,
                Ty::PtrAI => Ty::Int,
                _ => Ty::Dynamic,
            };
            set(env, dst, t);
        }
        Insn::DerefIndexSet { .. } => {}
        Insn::Cmp { dst, .. } | Insn::CmpII { dst, .. } | Insn::CmpFF { dst, .. } => {
            set(env, dst, Ty::Bool)
        }
        Insn::Neg { dst, src } => {
            let t = match get(env, src) {
                t @ (Ty::Int | Ty::Float) => t,
                _ => Ty::Dynamic,
            };
            set(env, dst, t);
        }
        Insn::Not { dst, .. } | Insn::Truthy { dst, .. } => set(env, dst, Ty::Bool),
        Insn::Jump { .. }
        | Insn::JumpIfFalse { .. }
        | Insn::JumpIfTrue { .. }
        | Insn::CmpJumpFalse { .. }
        | Insn::CmpJumpFalseII { .. }
        | Insn::CmpJumpFalseFF { .. } => {}
        // The increment only succeeds when the counter was Int, so on
        // every path out of this instruction the register is Int.
        Insn::IncCmpJump { var, .. } | Insn::IncJump { var, .. } => set(env, var, Ty::Int),
        Insn::Call { dst, func, base, n } => {
            clear_args(env, base, n);
            let t = rets[func as usize];
            set(env, dst, if t == Ty::Bottom { Ty::Dynamic } else { t });
        }
        Insn::CallValue { dst, base, n, .. } => {
            clear_args(env, base, n);
            set(env, dst, Ty::Dynamic);
        }
        Insn::OmpCall { dst, sym, base, n } => {
            // Result typing reads the argument types, so compute it
            // before the argument window is consumed.
            let t = omp_ret_ty(&f.omp_syms[sym as usize], env, base);
            clear_args(env, base, n);
            set(env, dst, t);
        }
        Insn::Builtin {
            dst, op, base, n, ..
        } => {
            let t = match op {
                BuiltinOp::IntToFloat
                | BuiltinOp::Sqrt
                | BuiltinOp::Log
                | BuiltinOp::Exp
                | BuiltinOp::Sin
                | BuiltinOp::Cos
                | BuiltinOp::Pow => Ty::Float,
                BuiltinOp::FloatToInt | BuiltinOp::Len => Ty::Int,
                BuiltinOp::AllocF => Ty::ArrF,
                BuiltinOp::AllocI => Ty::ArrI,
                BuiltinOp::Abs | BuiltinOp::Max | BuiltinOp::Min => {
                    let mut t = Ty::Bottom;
                    for r in base..base + n as Reg {
                        t = t.join(get(env, r));
                    }
                    match t {
                        Ty::Int | Ty::Float => t,
                        _ => Ty::Dynamic,
                    }
                }
                BuiltinOp::Dyn => Ty::Dynamic,
            };
            set(env, dst, t);
        }
        Insn::Print { .. } => {}
        // Installed after inference/specialization; nothing to model.
        Insn::BulkLoop { .. } | Insn::TemplateLoop { .. } => {}
        Insn::Trap { .. } | Insn::Ret { .. } | Insn::RetVoid => {}
    }
}

/// Rewrite of one site permitted by the environment, if any.
fn specialize_insn(insn: &Insn, env: &[Ty]) -> Option<Insn> {
    let t = |r: Reg| env[r as usize];
    match *insn {
        Insn::Arith { op, dst, a, b } => match (t(a), t(b)) {
            (Ty::Int, Ty::Int) => Some(Insn::ArithII { op, dst, a, b }),
            (Ty::Float, Ty::Float) => Some(Insn::ArithFF { op, dst, a, b }),
            _ => None,
        },
        Insn::Cmp { op, dst, a, b } => match (t(a), t(b)) {
            (Ty::Int, Ty::Int) => Some(Insn::CmpII { op, dst, a, b }),
            (Ty::Float, Ty::Float) => Some(Insn::CmpFF { op, dst, a, b }),
            _ => None,
        },
        Insn::CmpJumpFalse { op, a, b, to } => match (t(a), t(b)) {
            (Ty::Int, Ty::Int) => Some(Insn::CmpJumpFalseII { op, a, b, to }),
            (Ty::Float, Ty::Float) => Some(Insn::CmpJumpFalseFF { op, a, b, to }),
            _ => None,
        },
        Insn::Index { dst, arr, idx } => match (t(arr), t(idx)) {
            (Ty::ArrF, Ty::Int) => Some(Insn::IndexF { dst, arr, idx }),
            (Ty::ArrI, Ty::Int) => Some(Insn::IndexI { dst, arr, idx }),
            _ => None,
        },
        Insn::IndexSet { arr, idx, src } => match (t(arr), t(idx), t(src)) {
            (Ty::ArrF, Ty::Int, Ty::Float) => Some(Insn::IndexSetF { arr, idx, src }),
            (Ty::ArrI, Ty::Int, Ty::Int) => Some(Insn::IndexSetI { arr, idx, src }),
            _ => None,
        },
        _ => None,
    }
}

/// Statically specialize every function in the image in place
/// (`--opt>=2`). Sites whose operands inference can prove Int/Float
/// get their quickened opcode emitted directly; everything else is
/// left for runtime quickening.
pub fn specialize_image(image: &mut Image) {
    let types = infer_image(image);
    let nfuncs = image.funcs.len();
    for (fi, f) in image.funcs.iter_mut().enumerate() {
        specialize_fn(f, &types.fns[fi], &types.rets, nfuncs, None);
    }
}

/// Outcome of one statically-specializable site, reported through
/// `zag --remarks`: did inference prove the operand types, and if
/// not, what it saw instead (the "why it stayed dynamic").
#[derive(Debug, Clone)]
pub struct SiteOutcome {
    pub pc: u32,
    /// Generic opcode at the site (`arith`, `index`, ...).
    pub insn: &'static str,
    /// `Some(specialized opcode)` when the rewrite fired; `None` when
    /// the site is left to runtime quickening.
    pub specialized: Option<&'static str>,
    /// The operand types inference had at the site.
    pub operands: Vec<Ty>,
}

/// [`specialize_image`], additionally reporting every specializable
/// site's outcome per function — the data source for `--remarks`.
pub fn specialize_image_remarked(image: &mut Image) -> Vec<Vec<SiteOutcome>> {
    let types = infer_image(image);
    let nfuncs = image.funcs.len();
    let mut all = Vec::with_capacity(image.funcs.len());
    for (fi, f) in image.funcs.iter_mut().enumerate() {
        let mut sink = Vec::new();
        specialize_fn(f, &types.fns[fi], &types.rets, nfuncs, Some(&mut sink));
        all.push(sink);
    }
    all
}

/// The generic opcode name and operand registers of a specializable
/// site, or `None` for every other instruction.
fn site_shape(insn: &Insn) -> Option<(&'static str, Vec<Reg>)> {
    match *insn {
        Insn::Arith { a, b, .. } => Some(("arith", vec![a, b])),
        Insn::Cmp { a, b, .. } => Some(("cmp", vec![a, b])),
        Insn::CmpJumpFalse { a, b, .. } => Some(("cmp_jf", vec![a, b])),
        Insn::Index { arr, idx, .. } => Some(("index", vec![arr, idx])),
        Insn::IndexSet { arr, idx, src } => Some(("index_set", vec![arr, idx, src])),
        _ => None,
    }
}

/// Name of the specialized opcode a rewrite produced.
fn spec_name(insn: &Insn) -> &'static str {
    match insn {
        Insn::ArithII { .. } => "arith.ii",
        Insn::ArithFF { .. } => "arith.ff",
        Insn::CmpII { .. } => "cmp.ii",
        Insn::CmpFF { .. } => "cmp.ff",
        Insn::CmpJumpFalseII { .. } => "cmp_jf.ii",
        Insn::CmpJumpFalseFF { .. } => "cmp_jf.ff",
        Insn::IndexF { .. } => "index.f",
        Insn::IndexI { .. } => "index.i",
        Insn::IndexSetF { .. } => "index_set.f",
        Insn::IndexSetI { .. } => "index_set.i",
        _ => "specialized",
    }
}

fn specialize_fn(
    f: &mut CompiledFn,
    types: &FnTypes,
    rets: &[Ty],
    nfuncs: usize,
    mut sink: Option<&mut Vec<SiteOutcome>>,
) {
    let fir = ir::lift(f);
    let orig = if f.pre_opt.is_none() {
        Some(f.code.clone())
    } else {
        None
    };
    let mut changed = false;
    for (b, blk) in fir.blocks.iter().enumerate() {
        let Some(entry) = &types.entry[b] else {
            continue;
        };
        let mut env = entry.clone();
        for pc in blk.start..=blk.end {
            let insn = f.code[pc];
            let spec = specialize_insn(&insn, &env);
            if let (Some(out), Some((name, regs))) = (sink.as_deref_mut(), site_shape(&insn)) {
                out.push(SiteOutcome {
                    pc: pc as u32,
                    insn: name,
                    specialized: spec.as_ref().map(spec_name),
                    operands: regs.iter().map(|&r| env[r as usize]).collect(),
                });
            }
            if let Some(spec) = spec {
                f.code[pc] = spec;
                changed = true;
            }
            transfer(&insn, &mut env, f, rets);
        }
    }
    if changed {
        if let Some(code) = orig {
            f.pre_opt = Some(PreOpt {
                code,
                nconsts: f.consts.len(),
            });
        }
        if let Err(e) = verify_fn(f, nfuncs) {
            panic!("type specialization produced invalid bytecode: {e}");
        }
    }
}
