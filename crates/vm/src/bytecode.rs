//! The register-bytecode instruction set and its disassembler.
//!
//! Each Zag function compiles once (at program load) into a flat
//! [`CompiledFn`]: a `Vec<Insn>` over a dense register file plus a constant
//! pool. Registers are `u16` indices into a per-activation `Vec<Value>` —
//! locals get fixed slots resolved at compile time (no name lookup, no
//! `Arc<Mutex>` unless the local's address is taken), temporaries are
//! stack-disciplined slots above the locals.
//!
//! The hot shapes the preprocessor emits get fused opcodes:
//!
//! * [`Insn::CmpJumpFalse`] — a comparison guard branch with no
//!   materialised boolean (`while (i < n)`, `if (a == b)`).
//! * [`Insn::IncCmpJump`] — the induction-variable back-edge
//!   `i += step; if (i < limit) goto body` of `while (i < n) : (i += 1)`
//!   loops, one instruction per iteration of the driver loops that
//!   dominate worksharing bodies.
//! * [`Insn::Index`]/[`Insn::IndexSet`] — unboxed `f64`/`i64` array
//!   element access with the bounds policy inlined.
//!
//! On top of those, two more instruction families exist (see
//! [`crate::optimize`]):
//!
//! * **Superinstructions** emitted by the `--opt≥2` peephole fuser:
//!   constant-operand arithmetic ([`Insn::ArithK`]/[`Insn::ArithKL`] — the
//!   "AddSlots" family that removes the const-reload register shuffle),
//!   load-op ([`Insn::IndexArith`]), op-store ([`Insn::ArithStore`]),
//!   element increment ([`Insn::IncElemK`] — IS histogram body), the CG
//!   matvec accumulate chain ([`Insn::FmaIdx`]), offset indexing
//!   ([`Insn::IndexOff`] — `rowstr[j + 1]`), the unconditional
//!   increment back-edge ([`Insn::IncJump`]), and the deref-fused family
//!   ([`Insn::DerefIndex`], [`Insn::DerefIndexOff`], [`Insn::DerefIndexSet`],
//!   [`Insn::DerefIncElemK`], [`Insn::DerefFmaIdx`]) that accesses
//!   `shared(...)` arrays under a single cell lock without cloning the
//!   array value into a register.
//! * **Type-specialised instructions** — generic
//!   `Arith`/`Cmp`/`Index`/`IndexSet`/`CmpJumpFalse` have `i64`/`f64`
//!   forms ([`Insn::ArithII`] is the AddII/SubII/MulII… family,
//!   [`Insn::ArithFF`] the AddFF/MulFF… family, [`Insn::IndexF`], …).
//!   At `--opt>=2` the typed-IR pass ([`crate::typeck`]) emits them
//!   statically wherever forward type inference proves the operand types;
//!   slots inference leaves `Dynamic` still specialise *at runtime*
//!   through the interpreter's per-thread quickening cache, and both
//!   kinds deopt back to the generic form when a slot changes type
//!   mid-loop.
//! * [`Insn::BulkLoop`] — the `--opt=3` native tier ([`crate::kernels`]):
//!   a recognised hot loop shape replaced by one dispatch into a
//!   precompiled slice kernel, with the original loop-head instruction
//!   kept in the kernel descriptor as the deopt target.

use std::collections::HashMap;

use crate::value::Value;

/// A register index into the activation frame.
pub type Reg = u16;

/// Arithmetic instruction kinds (mirrors the token-level operators the
/// tree-walker dispatches on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

/// Comparison instruction kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// Builtin operations resolved at compile time. `Dyn` keeps the
/// tree-walker's behaviour for names unknown at compile time: the error
/// surfaces only if the call executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinOp {
    IntToFloat,
    FloatToInt,
    Sqrt,
    Log,
    Exp,
    Sin,
    Cos,
    Pow,
    Abs,
    Max,
    Min,
    AllocF,
    AllocI,
    Len,
    Dyn,
}

impl BuiltinOp {
    pub fn from_name(name: &str) -> BuiltinOp {
        match name {
            "@intToFloat" => BuiltinOp::IntToFloat,
            "@floatToInt" => BuiltinOp::FloatToInt,
            "@sqrt" => BuiltinOp::Sqrt,
            "@log" => BuiltinOp::Log,
            "@exp" => BuiltinOp::Exp,
            "@sin" => BuiltinOp::Sin,
            "@cos" => BuiltinOp::Cos,
            "@pow" => BuiltinOp::Pow,
            "@abs" => BuiltinOp::Abs,
            "@max" => BuiltinOp::Max,
            "@min" => BuiltinOp::Min,
            "@allocF" => BuiltinOp::AllocF,
            "@allocI" => BuiltinOp::AllocI,
            "@len" => BuiltinOp::Len,
            _ => BuiltinOp::Dyn,
        }
    }
}

/// One bytecode instruction. Calls pass arguments in a contiguous register
/// range `[base, base + n)` so no argument vector is built until the
/// callee boundary requires one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `r[dst] = consts[k]`
    Const {
        dst: Reg,
        k: u16,
    },
    /// `r[dst] = r[src]`
    Move {
        dst: Reg,
        src: Reg,
    },
    /// `r[dst] = Ptr(fresh cell seeded with r[src])` — declaration of an
    /// address-taken local; a fresh cell per execution of the declaration,
    /// matching the tree-walker's per-iteration `declare`.
    NewCell {
        dst: Reg,
        src: Reg,
    },
    /// `r[dst] = *cell` where `r[cell]` is the `Ptr` of a boxed local.
    CellGet {
        dst: Reg,
        cell: Reg,
    },
    /// `*cell = r[src]`.
    CellSet {
        cell: Reg,
        src: Reg,
    },
    /// `r[dst] = r[ptr].*` for any pointer value (`Ptr`, `ElemPtrF/I`).
    Deref {
        dst: Reg,
        ptr: Reg,
    },
    /// `r[ptr].* = r[src]`.
    StorePtr {
        ptr: Reg,
        src: Reg,
    },
    /// `r[dst] = &r[arr][r[idx]]` (an `ElemPtrF`/`ElemPtrI`).
    ElemAddr {
        dst: Reg,
        arr: Reg,
        idx: Reg,
    },
    /// `r[dst] = &(r[src].*)` — identity on pointer values, error otherwise.
    AddrDeref {
        dst: Reg,
        src: Reg,
    },
    /// `r[dst] = r[arr][r[idx]]`, unboxed fast path for `ArrF`/`ArrI`.
    Index {
        dst: Reg,
        arr: Reg,
        idx: Reg,
    },
    /// `r[arr][r[idx]] = r[src]`.
    IndexSet {
        arr: Reg,
        idx: Reg,
        src: Reg,
    },
    /// `r[dst] = r[a] op r[b]` (typed fast paths, tree-walker fallback).
    Arith {
        op: ArithOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `r[dst] = Bool(r[a] cmp r[b])`.
    Cmp {
        op: CmpOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `r[dst] = -r[src]`.
    Neg {
        dst: Reg,
        src: Reg,
    },
    /// `r[dst] = !truthy(r[src])`.
    Not {
        dst: Reg,
        src: Reg,
    },
    /// `r[dst] = Bool(truthy(r[src]))` (logical-operator result coercion).
    Truthy {
        dst: Reg,
        src: Reg,
    },
    Jump {
        to: u32,
    },
    /// Branch if `truthy(r[cond])` is false.
    JumpIfFalse {
        cond: Reg,
        to: u32,
    },
    /// Branch if `truthy(r[cond])` is true.
    JumpIfTrue {
        cond: Reg,
        to: u32,
    },
    /// Fused guard: branch to `to` when `r[a] cmp r[b]` is false.
    CmpJumpFalse {
        op: CmpOp,
        a: Reg,
        b: Reg,
        to: u32,
    },
    /// Fused induction back-edge: `r[var] += step; if r[var] cmp r[limit]
    /// jump to` (the loop body head). Integer fast path; generic fallback
    /// reproduces the tree-walker's compound-assign + compare semantics.
    IncCmpJump {
        var: Reg,
        step: i32,
        limit: Reg,
        op: CmpOp,
        to: u32,
    },
    /// `r[dst] = r[a] op consts[k]` — fused constant right operand
    /// (`--opt=2` peephole; "AddSlots" family: the `const` reload and its
    /// temporary register disappear).
    ArithK {
        op: ArithOp,
        dst: Reg,
        a: Reg,
        k: u16,
    },
    /// `r[dst] = consts[k] op r[b]` — fused constant left operand. A
    /// separate opcode from [`Insn::ArithK`] so type-mismatch error
    /// messages keep the original operand order.
    ArithKL {
        op: ArithOp,
        dst: Reg,
        k: u16,
        b: Reg,
    },
    /// `r[dst] = r[arr][r[idx]] op r[rhs]` — fused load-op (indexed left
    /// operand only, again to preserve error-message operand order).
    IndexArith {
        op: ArithOp,
        dst: Reg,
        arr: Reg,
        idx: Reg,
        rhs: Reg,
    },
    /// `r[arr][r[idx]] = r[a] op r[b]` — fused op-store.
    ArithStore {
        op: ArithOp,
        arr: Reg,
        idx: Reg,
        a: Reg,
        b: Reg,
    },
    /// `r[arr][r[idx]] = r[arr][r[idx]] op consts[k]` — fused element
    /// increment (the IS histogram body `counts[b] += 1`).
    IncElemK {
        op: ArithOp,
        arr: Reg,
        idx: Reg,
        k: u16,
    },
    /// `r[dst] = r[dst] + r[x] * r[arr][r[idx]]` — the CG matvec
    /// accumulate chain (`s = s + a[k] * p[colidx[k]]`) as one dispatch.
    /// The float fast path still evaluates mul-then-add (no hardware fma)
    /// so results stay bit-identical with the unfused stream.
    FmaIdx {
        dst: Reg,
        x: Reg,
        arr: Reg,
        idx: Reg,
    },
    /// `r[dst] = r[arr][r[idx] + off]` — offset indexing (`rowstr[j + 1]`).
    /// `off >= 0` came from a `+ k` source form, `off < 0` from `- k`; the
    /// generic fallback reconstructs the matching operator for error text.
    IndexOff {
        dst: Reg,
        arr: Reg,
        idx: Reg,
        off: i32,
    },
    /// `r[var] += step; jump to` — the unconditional loop back-edge of
    /// `continue`-expression loops whose guard sits at the head.
    IncJump {
        var: Reg,
        step: i32,
        to: u32,
    },
    /// `r[dst] = (*r[cell])[r[idx]]` — deref-fused indexing of a shared
    /// array. The cell (`shared(...)` variables are `Ptr` slots) is locked
    /// once and the element read under the guard, so the array `Value`
    /// never round-trips through a register (no `Arc` clone, no overwrite
    /// drop). Evaluation and error order match the unfused
    /// `Deref`-then-`Index` pair exactly.
    DerefIndex {
        dst: Reg,
        cell: Reg,
        idx: Reg,
    },
    /// `r[dst] = (*r[cell])[r[idx] + off]` — deref-fused [`Insn::IndexOff`]
    /// (the CG row-bound load `rowstr[j + 1]` on a shared array).
    DerefIndexOff {
        dst: Reg,
        cell: Reg,
        idx: Reg,
        off: i32,
    },
    /// `(*r[cell])[r[idx]] = r[src]` — deref-fused [`Insn::IndexSet`].
    DerefIndexSet {
        cell: Reg,
        idx: Reg,
        src: Reg,
    },
    /// `(*r[cell])[r[idx]] op= consts[k]` — deref-fused
    /// [`Insn::IncElemK`] (the IS ranking body `ranks[b] += 1` on a shared
    /// array): one lock covers the whole read-modify-write.
    DerefIncElemK {
        op: ArithOp,
        cell: Reg,
        idx: Reg,
        k: u16,
    },
    /// `r[dst] = r[dst] + r[x] * (*r[cell])[r[idx]]` — [`Insn::FmaIdx`]
    /// with the array operand read through a shared cell under one lock
    /// (the CG dot-product body `d = d + p[j] * q[j]`).
    DerefFmaIdx {
        dst: Reg,
        x: Reg,
        cell: Reg,
        idx: Reg,
    },
    /// `r[dst] = r[dst] + r[x] * (*r[acell])[(*r[icell])[r[idx]]]` — the
    /// whole CG matvec gather (`s = s + a[k] * p[colidx[k]]` with `p` and
    /// `colidx` both shared) as one dispatch. The `acell` pointer check
    /// happens first (unfused `Deref` position); its *read* is deferred to
    /// after the `icell` gather, which is unobservable because dereferencing
    /// a checked `Ptr` cannot fail.
    FmaIdxCC {
        dst: Reg,
        x: Reg,
        acell: Reg,
        icell: Reg,
        idx: Reg,
    },
    /// `r[dst] += (*r[xcell])[r[idx]] * (*r[acell])[(*r[icell])[r[idx]]]`
    /// — [`Insn::FmaIdxCC`] with the multiplier itself gathered from a
    /// shared array at the same index: the complete matvec body
    /// `s = s + a[k] * p[colidx[k]]` with `a`, `p`, `colidx` all shared,
    /// one dispatch per nonzero.
    FmaGather {
        dst: Reg,
        xcell: Reg,
        acell: Reg,
        icell: Reg,
        idx: Reg,
    },
    /// Quickened [`Insn::Arith`]: both operands observed `i64`. Runtime
    /// only — written by the interpreter's per-thread quickening cache,
    /// never by the compiler/optimizer. Deopts back to `Arith` (and
    /// re-executes the generic arm) when a slot changes type.
    ArithII {
        op: ArithOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Quickened [`Insn::Arith`]: both operands observed `f64`.
    ArithFF {
        op: ArithOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Quickened [`Insn::Cmp`]: both operands observed `i64`.
    CmpII {
        op: CmpOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Quickened [`Insn::Cmp`]: both operands observed `f64`.
    CmpFF {
        op: CmpOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Quickened [`Insn::CmpJumpFalse`]: both operands observed `i64`.
    CmpJumpFalseII {
        op: CmpOp,
        a: Reg,
        b: Reg,
        to: u32,
    },
    /// Quickened [`Insn::CmpJumpFalse`]: both operands observed `f64`.
    CmpJumpFalseFF {
        op: CmpOp,
        a: Reg,
        b: Reg,
        to: u32,
    },
    /// Quickened [`Insn::Index`]: array observed `ArrF`.
    IndexF {
        dst: Reg,
        arr: Reg,
        idx: Reg,
    },
    /// Quickened [`Insn::Index`]: array observed `ArrI`.
    IndexI {
        dst: Reg,
        arr: Reg,
        idx: Reg,
    },
    /// Quickened [`Insn::IndexSet`]: `ArrF` target, `f64` source observed.
    IndexSetF {
        arr: Reg,
        idx: Reg,
        src: Reg,
    },
    /// Quickened [`Insn::IndexSet`]: `ArrI` target, `i64` source observed.
    IndexSetI {
        arr: Reg,
        idx: Reg,
        src: Reg,
    },
    /// Direct call of program function `func` (compile-time resolved).
    Call {
        dst: Reg,
        func: u16,
        base: Reg,
        n: u16,
    },
    /// Indirect call through a `Fn` value in `r[callee]`.
    CallValue {
        dst: Reg,
        callee: Reg,
        base: Reg,
        n: u16,
    },
    /// Call into the `omp.*` namespace: `syms[sym]` is the dotted path
    /// after `omp`, dispatched through `builtins::call` so the runtime
    /// bindings keep their existing signatures.
    OmpCall {
        dst: Reg,
        sym: u16,
        base: Reg,
        n: u16,
    },
    /// `@name(...)` with the operation resolved at compile time; `name_k`
    /// is the name string in the pool, for `Dyn` dispatch and error text.
    Builtin {
        dst: Reg,
        op: BuiltinOp,
        name_k: u16,
        base: Reg,
        n: u16,
    },
    /// `print(...)` — render, capture, optionally echo.
    Print {
        base: Reg,
        n: u16,
    },
    /// Native bulk-kernel dispatch (`--opt=3` only, installed by
    /// [`crate::kernels`] after every other pass): replaces the head
    /// instruction of a recognised hot loop. `kidx` indexes
    /// [`CompiledFn::kernels`]; the descriptor carries the bound
    /// registers, the exit pc, and the replaced original instruction.
    /// On a type-precheck failure (or a data-dependent mid-loop bail)
    /// the interpreter quickens this instruction back to the original
    /// and resumes the interpreted loop at the exact iteration, so the
    /// kernel is semantically transparent.
    BulkLoop {
        kidx: u16,
    },
    /// Typed-template loop dispatch (`--opt=3` only, installed by
    /// [`crate::templates`] after the fixed kernels): replaces the
    /// head instruction of a short typed loop that missed every fixed
    /// kernel shape. `tidx` indexes [`CompiledFn::templates`]; the
    /// descriptor carries the monomorphized op chain, the exit pc,
    /// and the replaced original instruction. Deopt behaviour is
    /// identical to [`Insn::BulkLoop`]: on a type precheck failure or
    /// a mid-loop bail the interpreter quickens back to the original
    /// and replays the loop interpreted.
    TemplateLoop {
        tidx: u16,
    },
    /// Unconditional runtime error with the pooled message (compile-time
    /// detected failures that the tree-walker would only raise when the
    /// offending node executes).
    Trap {
        msg: u16,
    },
    Ret {
        src: Reg,
    },
    RetVoid,
}

/// The pre-optimization instruction stream, kept on [`CompiledFn`] when
/// the optimizer changed anything so `--dump-bytecode` can show both
/// stages. `nconsts` is the pool length before optimization (folding only
/// ever appends constants, so pre-opt indices stay valid).
pub struct PreOpt {
    pub code: Vec<Insn>,
    pub nconsts: usize,
}

/// One compiled function.
pub struct CompiledFn {
    pub name: String,
    pub nparams: usize,
    /// Source-level parameter type annotations, verbatim (`"i64"`,
    /// `"[]f64"`, `"*f64"`, `"any"`, ...), one per parameter. Zag does
    /// not enforce these at call boundaries; the type inference pass
    /// reads them as speculative seeds (see [`crate::typeck`]).
    pub param_tys: Vec<String>,
    /// Register-file size: params, locals, then temporaries.
    pub nregs: usize,
    pub code: Vec<Insn>,
    pub consts: Vec<Value>,
    /// Dotted `omp.` call paths referenced by [`Insn::OmpCall`].
    pub omp_syms: Vec<Vec<String>>,
    /// Debug names of named registers (params and locals), in allocation
    /// order: (register, name, address-taken?).
    pub locals: Vec<(Reg, String, bool)>,
    /// `Some` iff the optimizer rewrote `code` (see [`PreOpt`]).
    pub pre_opt: Option<PreOpt>,
    /// Native bulk-kernel descriptors referenced by [`Insn::BulkLoop`]
    /// (`--opt=3` only; empty below that).
    pub kernels: Vec<crate::kernels::KernelDesc>,
    /// Typed-template descriptors referenced by
    /// [`Insn::TemplateLoop`] (`--opt=3` only; empty below that).
    pub templates: Vec<crate::templates::TemplateDesc>,
}

/// A whole program's compiled image, functions in declaration order.
pub struct Image {
    pub funcs: Vec<CompiledFn>,
    pub by_name: HashMap<String, usize>,
}

impl Image {
    pub fn get(&self, name: &str) -> Option<&CompiledFn> {
        self.by_name.get(name).map(|&i| &self.funcs[i])
    }
}

// ---------------------------------------------------------------------------
// Disassembler (the `--dump-bytecode` surface; golden-tested)
// ---------------------------------------------------------------------------

fn const_text(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("{s:?}"),
        Value::Fn(name) => format!("fn {name}"),
        other => other.render(),
    }
}

fn cmp_text(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
    }
}

fn arith_text(op: ArithOp) -> &'static str {
    match op {
        ArithOp::Add => "add",
        ArithOp::Sub => "sub",
        ArithOp::Mul => "mul",
        ArithOp::Div => "div",
        ArithOp::Rem => "rem",
    }
}

/// Render one function's bytecode as stable, diffable text.
pub fn disasm_fn(f: &CompiledFn) -> String {
    disasm_fn_code(f, &f.code, f.consts.len(), "")
}

/// Render one function with an explicit instruction stream / pool length
/// (the `--dump-bytecode` pre/post-optimization view).
fn disasm_fn_code(f: &CompiledFn, code: &[Insn], nconsts: usize, tag: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fn {}{tag} (params {}, regs {})",
        f.name, f.nparams, f.nregs
    );
    if !f.locals.is_empty() {
        let names: Vec<String> = f
            .locals
            .iter()
            .map(|(r, n, boxed)| format!("r{r}={}{n}", if *boxed { "&" } else { "" }))
            .collect();
        let _ = writeln!(out, "  locals: {}", names.join(" "));
    }
    for (i, k) in f.consts.iter().take(nconsts).enumerate() {
        let _ = writeln!(out, "  k{i} = {}", const_text(k));
    }
    for (i, s) in f.omp_syms.iter().enumerate() {
        let _ = writeln!(out, "  s{i} = omp.{}", s.join("."));
    }
    for (pc, insn) in code.iter().enumerate() {
        let _ = writeln!(out, "  {pc:>4}  {}", insn_text(f, insn));
    }
    out
}

/// Render one instruction as the stable mnemonic text shared by
/// `--dump-bytecode` and the typed-IR dump (`--dump-ir`).
pub(crate) fn insn_text(f: &CompiledFn, insn: &Insn) -> String {
    match insn {
        Insn::Const { dst, k } => format!("const      r{dst}, k{k}"),
        Insn::Move { dst, src } => format!("move       r{dst}, r{src}"),
        Insn::NewCell { dst, src } => format!("newcell    r{dst}, r{src}"),
        Insn::CellGet { dst, cell } => format!("cellget    r{dst}, r{cell}"),
        Insn::CellSet { cell, src } => format!("cellset    r{cell}, r{src}"),
        Insn::Deref { dst, ptr } => format!("deref      r{dst}, r{ptr}"),
        Insn::StorePtr { ptr, src } => format!("storeptr   r{ptr}, r{src}"),
        Insn::ElemAddr { dst, arr, idx } => format!("elemaddr   r{dst}, r{arr}[r{idx}]"),
        Insn::AddrDeref { dst, src } => format!("addrderef  r{dst}, r{src}"),
        Insn::Index { dst, arr, idx } => format!("index      r{dst}, r{arr}[r{idx}]"),
        Insn::IndexSet { arr, idx, src } => format!("indexset   r{arr}[r{idx}], r{src}"),
        Insn::Arith { op, dst, a, b } => {
            format!("{:<10} r{dst}, r{a}, r{b}", arith_text(*op))
        }
        Insn::Cmp { op, dst, a, b } => {
            format!("cmp        r{dst}, r{a} {} r{b}", cmp_text(*op))
        }
        Insn::Neg { dst, src } => format!("neg        r{dst}, r{src}"),
        Insn::Not { dst, src } => format!("not        r{dst}, r{src}"),
        Insn::Truthy { dst, src } => format!("truthy     r{dst}, r{src}"),
        Insn::Jump { to } => format!("jump       -> {to}"),
        Insn::JumpIfFalse { cond, to } => format!("jfalse     r{cond} -> {to}"),
        Insn::JumpIfTrue { cond, to } => format!("jtrue      r{cond} -> {to}"),
        Insn::CmpJumpFalse { op, a, b, to } => {
            format!("cjfalse    r{a} {} r{b} -> {to}", cmp_text(*op))
        }
        Insn::IncCmpJump {
            var,
            step,
            limit,
            op,
            to,
        } => format!(
            "inccmpj    r{var} += {step}; r{var} {} r{limit} -> {to}",
            cmp_text(*op)
        ),
        Insn::ArithK { op, dst, a, k } => {
            format!("{:<10} r{dst}, r{a}, k{k}", format!("{}k", arith_text(*op)))
        }
        Insn::ArithKL { op, dst, k, b } => {
            format!("{:<10} r{dst}, k{k}, r{b}", format!("k{}", arith_text(*op)))
        }
        Insn::IndexArith {
            op,
            dst,
            arr,
            idx,
            rhs,
        } => format!("idx{:<7} r{dst}, r{arr}[r{idx}], r{rhs}", arith_text(*op)),
        Insn::ArithStore { op, arr, idx, a, b } => format!(
            "{:<10} r{arr}[r{idx}], r{a}, r{b}",
            format!("{}st", arith_text(*op))
        ),
        Insn::IncElemK { op, arr, idx, k } => {
            format!("incelem    r{arr}[r{idx}] {}= k{k}", arith_text(*op))
        }
        Insn::FmaIdx { dst, x, arr, idx } => {
            format!("fmaidx     r{dst} += r{x} * r{arr}[r{idx}]")
        }
        Insn::IndexOff { dst, arr, idx, off } => {
            format!("indexoff   r{dst}, r{arr}[r{idx}{off:+}]")
        }
        Insn::IncJump { var, step, to } => {
            format!("incjump    r{var} += {step} -> {to}")
        }
        Insn::DerefIndex { dst, cell, idx } => {
            format!("dindex     r{dst}, (r{cell})[r{idx}]")
        }
        Insn::DerefIndexOff {
            dst,
            cell,
            idx,
            off,
        } => {
            format!("dindexoff  r{dst}, (r{cell})[r{idx}{off:+}]")
        }
        Insn::DerefIndexSet { cell, idx, src } => {
            format!("dindexset  (r{cell})[r{idx}], r{src}")
        }
        Insn::DerefIncElemK { op, cell, idx, k } => {
            format!("dincelem   (r{cell})[r{idx}] {}= k{k}", arith_text(*op))
        }
        Insn::DerefFmaIdx { dst, x, cell, idx } => {
            format!("dfmaidx    r{dst} += r{x} * (r{cell})[r{idx}]")
        }
        Insn::FmaIdxCC {
            dst,
            x,
            acell,
            icell,
            idx,
        } => {
            format!("fmacc      r{dst} += r{x} * (r{acell})[(r{icell})[r{idx}]]")
        }
        Insn::FmaGather {
            dst,
            xcell,
            acell,
            icell,
            idx,
        } => {
            format!("fmagather  r{dst} += (r{xcell})[r{idx}] * (r{acell})[(r{icell})[r{idx}]]")
        }
        Insn::ArithII { op, dst, a, b } => {
            format!(
                "{:<10} r{dst}, r{a}, r{b}",
                format!("{}ii", arith_text(*op))
            )
        }
        Insn::ArithFF { op, dst, a, b } => {
            format!(
                "{:<10} r{dst}, r{a}, r{b}",
                format!("{}ff", arith_text(*op))
            )
        }
        Insn::CmpII { op, dst, a, b } => {
            format!("cmpii      r{dst}, r{a} {} r{b}", cmp_text(*op))
        }
        Insn::CmpFF { op, dst, a, b } => {
            format!("cmpff      r{dst}, r{a} {} r{b}", cmp_text(*op))
        }
        Insn::CmpJumpFalseII { op, a, b, to } => {
            format!("cjfii      r{a} {} r{b} -> {to}", cmp_text(*op))
        }
        Insn::CmpJumpFalseFF { op, a, b, to } => {
            format!("cjfff      r{a} {} r{b} -> {to}", cmp_text(*op))
        }
        Insn::IndexF { dst, arr, idx } => format!("indexf     r{dst}, r{arr}[r{idx}]"),
        Insn::IndexI { dst, arr, idx } => format!("indexi     r{dst}, r{arr}[r{idx}]"),
        Insn::IndexSetF { arr, idx, src } => format!("indexsetf  r{arr}[r{idx}], r{src}"),
        Insn::IndexSetI { arr, idx, src } => format!("indexseti  r{arr}[r{idx}], r{src}"),
        Insn::Call { dst, func, base, n } => {
            format!("call       r{dst}, f{func}, r{base}..{n}")
        }
        Insn::CallValue {
            dst,
            callee,
            base,
            n,
        } => format!("callv      r{dst}, r{callee}, r{base}..{n}"),
        Insn::OmpCall { dst, sym, base, n } => {
            format!("ompcall    r{dst}, s{sym}, r{base}..{n}")
        }
        Insn::Builtin {
            dst,
            op,
            name_k,
            base,
            n,
        } => format!("builtin    r{dst}, {op:?}(k{name_k}), r{base}..{n}"),
        Insn::Print { base, n } => format!("print      r{base}..{n}"),
        Insn::BulkLoop { kidx } => {
            let what = f
                .kernels
                .get(*kidx as usize)
                .map(|d| d.kind.name())
                .unwrap_or("?");
            format!("bulkloop   kernel{kidx} ({what})")
        }
        Insn::TemplateLoop { tidx } => {
            let what = f
                .templates
                .get(*tidx as usize)
                .map(|d| format!("{} insns, {} variants", d.prog.ninsns, d.prog.variants.len()))
                .unwrap_or_else(|| "?".to_string());
            format!("templateloop tmpl{tidx} ({what})")
        }
        Insn::Trap { msg } => format!("trap       k{msg}"),
        Insn::Ret { src } => format!("ret        r{src}"),
        Insn::RetVoid => "retvoid".to_string(),
    }
}

/// Render the whole image, functions in declaration order.
pub fn disasm(image: &Image) -> String {
    let mut out = String::new();
    for f in &image.funcs {
        out.push_str(&disasm_fn(f));
        out.push('\n');
    }
    out
}

/// Render the whole image showing both optimization stages: for every
/// function the optimizer rewrote, the pre-optimization stream first,
/// then the optimized one (`--dump-bytecode` under `--opt>=1`).
pub fn disasm_stages(image: &Image) -> String {
    let mut out = String::new();
    for f in &image.funcs {
        if let Some(pre) = &f.pre_opt {
            out.push_str(&disasm_fn_code(f, &pre.code, pre.nconsts, " [pre-opt]"));
            out.push('\n');
            out.push_str(&disasm_fn_code(f, &f.code, f.consts.len(), " [optimized]"));
        } else {
            out.push_str(&disasm_fn(f));
        }
        out.push('\n');
    }
    out
}
